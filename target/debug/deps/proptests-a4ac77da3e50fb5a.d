/root/repo/target/debug/deps/proptests-a4ac77da3e50fb5a.d: crates/dns-core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a4ac77da3e50fb5a.rmeta: crates/dns-core/tests/proptests.rs Cargo.toml

crates/dns-core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
