/root/repo/target/debug/deps/fig5-bf5c18f1a420739f.d: crates/dns-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-bf5c18f1a420739f: crates/dns-bench/src/bin/fig5.rs

crates/dns-bench/src/bin/fig5.rs:
