/root/repo/target/debug/deps/all_experiments-b36f67d4d53dd739.d: crates/dns-bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-b36f67d4d53dd739: crates/dns-bench/src/bin/all_experiments.rs

crates/dns-bench/src/bin/all_experiments.rs:
