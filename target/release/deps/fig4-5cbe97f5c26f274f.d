/root/repo/target/release/deps/fig4-5cbe97f5c26f274f.d: crates/dns-bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-5cbe97f5c26f274f: crates/dns-bench/src/bin/fig4.rs

crates/dns-bench/src/bin/fig4.rs:
