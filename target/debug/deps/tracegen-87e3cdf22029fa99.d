/root/repo/target/debug/deps/tracegen-87e3cdf22029fa99.d: crates/dns-bench/benches/tracegen.rs Cargo.toml

/root/repo/target/debug/deps/libtracegen-87e3cdf22029fa99.rmeta: crates/dns-bench/benches/tracegen.rs Cargo.toml

crates/dns-bench/benches/tracegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
