/root/repo/target/debug/deps/dns_core-e1d2baff0b55e09d.d: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs

/root/repo/target/debug/deps/libdns_core-e1d2baff0b55e09d.rlib: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs

/root/repo/target/debug/deps/libdns_core-e1d2baff0b55e09d.rmeta: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs

crates/dns-core/src/lib.rs:
crates/dns-core/src/clock.rs:
crates/dns-core/src/error.rs:
crates/dns-core/src/message.rs:
crates/dns-core/src/name.rs:
crates/dns-core/src/rr.rs:
crates/dns-core/src/wire.rs:
crates/dns-core/src/zone.rs:
crates/dns-core/src/zonefile.rs:
