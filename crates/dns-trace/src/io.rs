//! Plain-text persistence for traces and universes.
//!
//! The formats are line-oriented, diff-friendly and easy to produce from
//! real packet captures, so users can replay their own workloads through
//! the simulator:
//!
//! ```text
//! #dns-trace v1
//! name TRC1
//! days 7
//! clients 120
//! q <at-seconds> <client> <rtype> <qname>
//! ```
//!
//! ```text
//! #dns-universe v1
//! zone <apex> parent=<apex|-> irr=<secs> mx=<0|1>
//! ns <name> <ipv4>
//! a <name> <ttl-secs>
//! cname <alias> <target> <ttl-secs>
//! end
//! ```

use crate::{QueryEvent, Trace, Universe, ZoneSpec};
use dns_core::{Name, Question, RecordType, SimTime, Ttl};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::Ipv4Addr;

/// Errors from loading a trace or universe file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, detail } => write!(f, "line {line}: {detail}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn parse_err(line: usize, detail: impl Into<String>) -> LoadError {
    LoadError::Parse {
        line,
        detail: detail.into(),
    }
}

fn rtype_code(rtype: RecordType) -> &'static str {
    match rtype {
        RecordType::A => "A",
        RecordType::Ns => "NS",
        RecordType::Cname => "CNAME",
        RecordType::Soa => "SOA",
        RecordType::Ptr => "PTR",
        RecordType::Mx => "MX",
        RecordType::Txt => "TXT",
        RecordType::Aaaa => "AAAA",
        RecordType::Ds => "DS",
        RecordType::Dnskey => "DNSKEY",
    }
}

fn parse_rtype(s: &str, line: usize) -> Result<RecordType, LoadError> {
    match s {
        "A" => Ok(RecordType::A),
        "NS" => Ok(RecordType::Ns),
        "CNAME" => Ok(RecordType::Cname),
        "SOA" => Ok(RecordType::Soa),
        "PTR" => Ok(RecordType::Ptr),
        "MX" => Ok(RecordType::Mx),
        "TXT" => Ok(RecordType::Txt),
        "AAAA" => Ok(RecordType::Aaaa),
        "DS" => Ok(RecordType::Ds),
        "DNSKEY" => Ok(RecordType::Dnskey),
        other => Err(parse_err(line, format!("unknown record type {other:?}"))),
    }
}

fn parse_name(s: &str, line: usize) -> Result<Name, LoadError> {
    s.parse()
        .map_err(|e| parse_err(line, format!("bad name {s:?}: {e}")))
}

/// Writes a trace in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    writeln!(w, "#dns-trace v1")?;
    writeln!(w, "name {}", trace.name)?;
    writeln!(w, "days {}", trace.days)?;
    writeln!(w, "clients {}", trace.clients)?;
    for q in &trace.queries {
        writeln!(
            w,
            "q {} {} {} {}",
            q.at.as_secs(),
            q.client,
            rtype_code(q.question.rtype),
            q.question.name
        )?;
    }
    Ok(())
}

/// Reads a trace from the v1 text format.
///
/// # Errors
///
/// Returns [`LoadError`] on I/O failure or malformed input (including
/// out-of-order timestamps).
pub fn load_trace<R: Read>(r: R) -> Result<Trace, LoadError> {
    let reader = BufReader::new(r);
    let mut name = String::new();
    let mut days = 0u64;
    let mut clients = 0u32;
    let mut queries: Vec<QueryEvent> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => name = parts.next().unwrap_or_default().to_string(),
            Some("days") => {
                days = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad days"))?;
            }
            Some("clients") => {
                clients = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad clients"))?;
            }
            Some("q") => {
                let at: u64 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad timestamp"))?;
                let client: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad client id"))?;
                let rtype = parse_rtype(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing type"))?,
                    lineno,
                )?;
                let qname = parse_name(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing name"))?,
                    lineno,
                )?;
                if parts.next().is_some() {
                    return Err(parse_err(lineno, "trailing tokens after query"));
                }
                let at = SimTime::from_secs(at);
                if let Some(prev) = queries.last() {
                    if at < prev.at {
                        return Err(parse_err(lineno, "timestamps out of order"));
                    }
                }
                queries.push(QueryEvent {
                    at,
                    client,
                    question: Question::new(qname, rtype),
                });
            }
            Some(other) => return Err(parse_err(lineno, format!("unknown directive {other:?}"))),
            None => {}
        }
    }
    Ok(Trace {
        name,
        days,
        clients,
        queries,
    })
}

/// Writes a universe in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_universe<W: Write>(mut w: W, universe: &Universe) -> io::Result<()> {
    writeln!(w, "#dns-universe v1")?;
    for spec in universe.zones() {
        write!(
            w,
            "zone {} parent={} irr={} mx={}",
            spec.apex,
            spec.parent
                .as_ref()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".to_string()),
            spec.infra_ttl.as_secs(),
            u8::from(spec.has_mx)
        )?;
        if let Some((tag, key)) = spec.dnskey {
            write!(w, " key={tag}:{key}")?;
        }
        writeln!(w)?;
        for (ns, addr) in &spec.ns {
            writeln!(w, "ns {ns} {addr}")?;
        }
        for (owner, ttl) in &spec.data_names {
            writeln!(w, "a {owner} {}", ttl.as_secs())?;
        }
        for (alias, target, ttl) in &spec.cnames {
            writeln!(w, "cname {alias} {target} {}", ttl.as_secs())?;
        }
        writeln!(w, "end")?;
    }
    Ok(())
}

/// Reads a universe from the v1 text format.
///
/// # Errors
///
/// Returns [`LoadError`] on I/O failure, malformed lines, or structural
/// problems (missing root, dangling parents).
pub fn load_universe<R: Read>(r: R) -> Result<Universe, LoadError> {
    let reader = BufReader::new(r);
    let mut zones: Vec<ZoneSpec> = Vec::new();
    let mut current: Option<ZoneSpec> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("zone") => {
                if current.is_some() {
                    return Err(parse_err(lineno, "zone before previous 'end'"));
                }
                let apex = parse_name(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing apex"))?,
                    lineno,
                )?;
                let mut parent = None;
                let mut infra_ttl = Ttl::from_days(1);
                let mut has_mx = false;
                let mut dnskey = None;
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| parse_err(lineno, format!("bad attribute {kv:?}")))?;
                    match k {
                        "parent" => {
                            parent = if v == "-" {
                                None
                            } else {
                                Some(parse_name(v, lineno)?)
                            };
                        }
                        "irr" => {
                            infra_ttl = Ttl::from_secs(
                                v.parse().map_err(|_| parse_err(lineno, "bad irr ttl"))?,
                            );
                        }
                        "mx" => has_mx = v == "1",
                        "key" => {
                            let (tag, key) = v
                                .split_once(':')
                                .ok_or_else(|| parse_err(lineno, "bad key attribute"))?;
                            dnskey = Some((
                                tag.parse().map_err(|_| parse_err(lineno, "bad key tag"))?,
                                key.parse()
                                    .map_err(|_| parse_err(lineno, "bad key value"))?,
                            ));
                        }
                        other => {
                            return Err(parse_err(lineno, format!("unknown attribute {other:?}")))
                        }
                    }
                }
                current = Some(ZoneSpec {
                    apex,
                    parent,
                    ns: Vec::new(),
                    infra_ttl,
                    data_names: Vec::new(),
                    cnames: Vec::new(),
                    has_mx,
                    dnskey,
                });
            }
            Some("ns") => {
                let zone = current
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "ns outside zone"))?;
                let name = parse_name(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing ns name"))?,
                    lineno,
                )?;
                let addr: Ipv4Addr = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad ns address"))?;
                zone.ns.push((name, addr));
            }
            Some("a") => {
                let zone = current
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "a outside zone"))?;
                let name = parse_name(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing owner"))?,
                    lineno,
                )?;
                let ttl = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Ttl::from_secs)
                    .ok_or_else(|| parse_err(lineno, "bad ttl"))?;
                zone.data_names.push((name, ttl));
            }
            Some("cname") => {
                let zone = current
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "cname outside zone"))?;
                let alias = parse_name(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing alias"))?,
                    lineno,
                )?;
                let target = parse_name(
                    parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing target"))?,
                    lineno,
                )?;
                let ttl = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Ttl::from_secs)
                    .ok_or_else(|| parse_err(lineno, "bad ttl"))?;
                zone.cnames.push((alias, target, ttl));
            }
            Some("end") => {
                let zone = current
                    .take()
                    .ok_or_else(|| parse_err(lineno, "end without zone"))?;
                if zone.ns.is_empty() {
                    return Err(parse_err(
                        lineno,
                        format!("zone {} has no servers", zone.apex),
                    ));
                }
                zones.push(zone);
            }
            Some(other) => return Err(parse_err(lineno, format!("unknown directive {other:?}"))),
            None => {}
        }
    }
    if current.is_some() {
        return Err(parse_err(0, "unterminated zone block"));
    }
    Universe::from_zone_specs(zones).map_err(|e| parse_err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSpec, UniverseSpec};

    #[test]
    fn trace_roundtrip() {
        let u = UniverseSpec::small().build(7);
        let t = TraceSpec::demo().scaled(0.02).generate(&u, 3);
        let mut buf = Vec::new();
        save_trace(&mut buf, &t).unwrap();
        let back = load_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn universe_roundtrip() {
        let mut spec = UniverseSpec::small();
        spec.sld_count = 150;
        spec.tld_count = 8;
        let u = spec.build(7);
        let mut buf = Vec::new();
        save_universe(&mut buf, &u).unwrap();
        let back = load_universe(buf.as_slice()).unwrap();
        assert_eq!(back.zone_count(), u.zone_count());
        assert_eq!(back.root_servers(), u.root_servers());
        for (a, b) in back.zones().iter().zip(u.zones()) {
            assert_eq!(a.apex, b.apex);
            assert_eq!(a.ns, b.ns);
            assert_eq!(a.infra_ttl, b.infra_ttl);
            assert_eq!(a.data_names, b.data_names);
            assert_eq!(a.cnames, b.cnames);
            assert_eq!(a.has_mx, b.has_mx);
            assert_eq!(a.dnskey, b.dnskey);
        }
    }

    #[test]
    fn trace_rejects_out_of_order_timestamps() {
        let text = "#dns-trace v1\nname X\ndays 1\nclients 1\nq 10 0 A a.com\nq 5 0 A b.com\n";
        let err = load_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 6, .. }), "{err}");
    }

    #[test]
    fn trace_rejects_garbage() {
        for bad in [
            "q notanumber 0 A a.com",
            "q 1 0 BOGUS a.com",
            "q 1 0 A not a name!!",
            "frobnicate 1",
        ] {
            let text = format!("name X\ndays 1\nclients 1\n{bad}\n");
            assert!(load_trace(text.as_bytes()).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn universe_rejects_structural_errors() {
        // ns outside a zone.
        assert!(load_universe("ns a.root 1.2.3.4\n".as_bytes()).is_err());
        // Zone without servers.
        assert!(load_universe("zone com parent=- irr=60 mx=0\nend\n".as_bytes()).is_err());
        // Missing root.
        let text = "zone com parent=- irr=60 mx=0\nns ns.com 1.2.3.4\nend\n";
        assert!(load_universe(text.as_bytes()).is_err());
        // Dangling parent.
        let text = "zone . parent=- irr=60 mx=0\nns a.root 1.2.3.4\nend\n\
                    zone x.com parent=com irr=60 mx=0\nns ns.x.com 1.2.3.5\nend\n";
        assert!(load_universe(text.as_bytes()).is_err());
        // Unterminated block.
        let text = "zone . parent=- irr=60 mx=0\nns a.root 1.2.3.4\n";
        assert!(load_universe(text.as_bytes()).is_err());
    }

    #[test]
    fn loaded_universe_is_servable() {
        let mut spec = UniverseSpec::small();
        spec.sld_count = 50;
        spec.tld_count = 5;
        let u = spec.build(3);
        let mut buf = Vec::new();
        save_universe(&mut buf, &u).unwrap();
        let back = load_universe(buf.as_slice()).unwrap();
        // Zones materialise and serve.
        let zones = back.build_all_zones();
        assert_eq!(zones.len(), back.zone_count());
        assert!(back.zone_of(&back.zones()[5].apex).is_some());
    }
}
