//! Adversarial query-stream generators: NXNSAttack delegation-bomb
//! floods and random-subdomain *water torture*.
//!
//! An [`AdversarySpec`] compiles against a [`Universe`] into a
//! [`CompiledAdversary`] whose event generator emits `qps` attack
//! queries per virtual second inside an attack window, each tagged with
//! the reserved client id [`ADVERSARY_CLIENT`] so the driver can account
//! attacker and legitimate traffic separately. Attack events are pure
//! functions of `(spec, universe, window)` — no RNG draws are shared
//! with the base trace stream, so the legitimate workload is
//! byte-identical with and without an adversary, and sweeps stay
//! deterministic at any thread count.
//!
//! * **NXNS delegation bombs** target zones injected by
//!   [`Universe::with_delegation_bombs`](dns_trace::Universe::with_delegation_bombs):
//!   each query asks for a fresh nonexistent name under the next bomb
//!   apex (round-robin), driving the resolver through the bomb's
//!   glueless out-of-zone NS fan-out — the amplification MaxFetch(k)
//!   clamps.
//! * **Water torture** sprays never-repeating `nxa…` labels under a
//!   small set of victim second-level zones, pressuring the negative
//!   cache and the per-zone inflight budget.

use dns_core::{Label, Name, Question, RecordType, SimDuration, SimTime};
use dns_trace::{QueryEvent, QueryStream, TraceCursor, Universe};
use std::sync::Arc;

/// Client id reserved for adversary-generated queries. The trace
/// generator draws client ids in `0..clients`, far below this, so the
/// driver can split attacker from legitimate accounting by id alone.
pub const ADVERSARY_CLIENT: u32 = u32::MAX;

/// Which attack the adversary runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// NXNSAttack: queries for nonexistent names under delegation-bomb
    /// zones (see
    /// [`Universe::with_delegation_bombs`](dns_trace::Universe::with_delegation_bombs)),
    /// round-robin over the bombs so every query hits a cold bomb while
    /// the supply lasts.
    NxnsDelegationBomb,
    /// Random-subdomain NXDOMAIN flood against `victims` legitimate
    /// second-level zones (selected deterministically from the spec
    /// seed), every query a fresh label that can only answer NXDOMAIN.
    WaterTorture {
        /// Number of victim zones the flood rotates over.
        victims: usize,
    },
}

/// A declarative adversary: attack kind, rate and selection seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarySpec {
    /// Attack kind.
    pub kind: AdversaryKind,
    /// Attack queries per virtual second.
    pub qps: u32,
    /// Seed for victim selection (water torture); recorded either way.
    pub seed: u64,
}

impl AdversarySpec {
    /// An NXNS delegation-bomb flood at `qps` queries per second.
    pub fn nxns(qps: u32) -> Self {
        AdversarySpec {
            kind: AdversaryKind::NxnsDelegationBomb,
            qps,
            seed: 0,
        }
    }

    /// A water-torture flood over `victims` zones at `qps` queries per
    /// second, victims chosen deterministically from `seed`.
    pub fn water_torture(victims: usize, qps: u32, seed: u64) -> Self {
        AdversarySpec {
            kind: AdversaryKind::WaterTorture { victims },
            qps,
            seed,
        }
    }

    /// Display label (`nxns-q50`, `torture-v8-q50`, …) — the adversary
    /// column of every adversarial CSV.
    pub fn label(&self) -> String {
        match self.kind {
            AdversaryKind::NxnsDelegationBomb => format!("nxns-q{}", self.qps),
            AdversaryKind::WaterTorture { victims } => {
                format!("torture-v{victims}-q{}", self.qps)
            }
        }
    }

    /// Resolves the spec against a universe: bomb apexes for NXNS,
    /// seed-picked victim zones for water torture.
    ///
    /// # Panics
    ///
    /// Panics when an NXNS spec is compiled against a universe with no
    /// delegation bombs (inject them with
    /// [`Universe::with_delegation_bombs`](dns_trace::Universe::with_delegation_bombs)
    /// first), or when there are fewer candidate zones than requested
    /// water-torture victims.
    pub fn compile(&self, universe: &Universe) -> CompiledAdversary {
        let targets: Vec<Name> = match self.kind {
            AdversaryKind::NxnsDelegationBomb => {
                let bombs = universe.delegation_bomb_apexes();
                assert!(
                    !bombs.is_empty(),
                    "NXNS adversary needs a universe with delegation bombs \
                     (Universe::with_delegation_bombs)"
                );
                bombs
            }
            AdversaryKind::WaterTorture { victims } => {
                let slds: Vec<Name> = universe
                    .zones()
                    .iter()
                    .filter(|z| z.apex.label_count() == 2 && !z.data_names.is_empty())
                    .map(|z| z.apex.clone())
                    .collect();
                assert!(
                    victims > 0 && victims <= slds.len(),
                    "water torture needs 1..={} victims, asked for {victims}",
                    slds.len()
                );
                // Deterministic seed-strided pick: evenly spread over the
                // zone list, offset by the seed. No RNG shared with the
                // trace stream.
                let step = (slds.len() / victims).max(1);
                let offset = splitmix64(self.seed) as usize % slds.len();
                (0..victims)
                    .map(|j| slds[(offset + j * step) % slds.len()].clone())
                    .collect()
            }
        };
        CompiledAdversary {
            spec: *self,
            targets: targets.into(),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An [`AdversarySpec`] resolved against a universe: the concrete
/// target-zone list plus the event generator.
#[derive(Debug, Clone)]
pub struct CompiledAdversary {
    spec: AdversarySpec,
    targets: Arc<[Name]>,
}

impl CompiledAdversary {
    /// The compiled spec.
    pub fn spec(&self) -> &AdversarySpec {
        &self.spec
    }

    /// The target zone apexes (bombs or victims), in rotation order.
    pub fn targets(&self) -> &[Name] {
        &self.targets
    }

    /// Total events the window `[start, end)` emits.
    pub fn total_events(&self, start: SimTime, end: SimTime) -> u64 {
        end.since(start).as_secs() * u64::from(self.spec.qps)
    }

    /// The attack-event generator for `[start, end)`: `qps` events per
    /// whole second, globally numbered so every query name is fresh.
    pub fn events(&self, start: SimTime, end: SimTime) -> AdversaryEvents {
        AdversaryEvents {
            adversary: self.clone(),
            second: start.as_secs(),
            end_second: end.as_secs().max(start.as_secs()),
            within: 0,
            counter: 0,
        }
    }

    fn event(&self, second: u64, counter: u64) -> QueryEvent {
        let target = &self.targets[(counter % self.targets.len() as u64) as usize];
        // Labels starting `nx` never exist in generated universes. The
        // base trace's NXDOMAIN mix uses `nx{0..999}`, so water torture
        // uses an `nxa` prefix to never collide with (and warm) those
        // negative entries; bombs have no legitimate traffic at all.
        let label = match self.spec.kind {
            AdversaryKind::NxnsDelegationBomb => format!("nx{counter}"),
            AdversaryKind::WaterTorture { .. } => format!("nxa{counter}"),
        };
        let name = target
            .child(Label::new(label.as_bytes()).expect("generated labels are valid"))
            .expect("attack names stay short");
        QueryEvent {
            at: SimTime::from_secs(second),
            client: ADVERSARY_CLIENT,
            question: Question::new(name, RecordType::A),
        }
    }
}

/// Iterator over one attack window's [`QueryEvent`]s (see
/// [`CompiledAdversary::events`]).
#[derive(Debug, Clone)]
pub struct AdversaryEvents {
    adversary: CompiledAdversary,
    second: u64,
    end_second: u64,
    within: u32,
    counter: u64,
}

impl Iterator for AdversaryEvents {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        if self.second >= self.end_second || self.adversary.spec.qps == 0 {
            return None;
        }
        let event = self.adversary.event(self.second, self.counter);
        self.counter += 1;
        self.within += 1;
        if self.within >= self.adversary.spec.qps {
            self.within = 0;
            self.second += 1;
        }
        Some(event)
    }
}

/// A [`QueryStream`] merging a base (legitimate) stream with an
/// adversary's attack window, ordered by timestamp with base events
/// first on ties — the streamed composition behind adversarial sweep
/// units.
///
/// The reported cursor is the *base* stream's position: adversarial
/// forks replay a bounded window and are then discarded, so only the
/// legitimate stream's position is meaningful to resume.
pub struct MergedStream {
    base: Box<dyn QueryStream>,
    base_next: Option<QueryEvent>,
    adversary: AdversaryEvents,
    adversary_next: Option<QueryEvent>,
    extra: u64,
}

impl MergedStream {
    /// Merges `base` with the adversary window `[start, end)`.
    pub fn new(
        base: Box<dyn QueryStream>,
        adversary: &CompiledAdversary,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        MergedStream {
            extra: adversary.total_events(start, end),
            base,
            base_next: None,
            adversary: adversary.events(start, end),
            adversary_next: None,
        }
    }
}

impl QueryStream for MergedStream {
    fn next_event(&mut self) -> Option<QueryEvent> {
        if self.base_next.is_none() {
            self.base_next = self.base.next_event();
        }
        if self.adversary_next.is_none() {
            self.adversary_next = self.adversary.next();
        }
        match (&self.base_next, &self.adversary_next) {
            (Some(b), Some(a)) if b.at <= a.at => self.base_next.take(),
            (_, Some(_)) => self.adversary_next.take(),
            (Some(_), None) => self.base_next.take(),
            (None, None) => None,
        }
    }

    fn cursor(&self) -> TraceCursor {
        self.base.cursor()
    }

    fn days(&self) -> u64 {
        self.base.days()
    }

    fn total_queries(&self) -> u64 {
        self.base.total_queries() + self.extra
    }

    fn trace_name(&self) -> &str {
        self.base.trace_name()
    }
}

/// Materializes the adversary window and merges it into `tail` (the
/// unreplayed remainder of a materialized trace), preserving timestamp
/// order with tail events first on ties — the materialized counterpart
/// of [`MergedStream`], byte-identical in replay order.
pub fn merge_into_tail(
    tail: &[QueryEvent],
    adversary: &CompiledAdversary,
    start: SimTime,
    end: SimTime,
) -> Vec<QueryEvent> {
    let mut merged = Vec::with_capacity(tail.len() + adversary.total_events(start, end) as usize);
    let mut attack = adversary.events(start, end).peekable();
    for event in tail {
        while attack.peek().is_some_and(|a| a.at < event.at) {
            merged.push(attack.next().expect("peeked event exists"));
        }
        merged.push(event.clone());
    }
    merged.extend(attack);
    merged
}

/// Convenience: one whole-hours attack window starting at the paper's
/// attack onset day.
pub fn window_from_day(day: u64, duration: SimDuration) -> (SimTime, SimTime) {
    let start = SimTime::from_days(day);
    (start, start + duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_trace::{NxnsBombSpec, TraceSpec, UniverseSpec, UniverseTargets};

    fn universe() -> Universe {
        UniverseSpec::small()
            .build(7)
            .with_delegation_bombs(NxnsBombSpec::new(32, 8))
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdversarySpec::nxns(50).label(), "nxns-q50");
        assert_eq!(
            AdversarySpec::water_torture(8, 25, 1).label(),
            "torture-v8-q25"
        );
    }

    #[test]
    fn nxns_events_rotate_over_bombs_with_fresh_labels() {
        let u = universe();
        let adv = AdversarySpec::nxns(2).compile(&u);
        assert_eq!(adv.targets().len(), 32);
        let start = SimTime::from_secs(100);
        let end = SimTime::from_secs(110);
        let events: Vec<QueryEvent> = adv.events(start, end).collect();
        assert_eq!(events.len(), 20);
        assert_eq!(adv.total_events(start, end), 20);
        let mut names = std::collections::HashSet::new();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.client, ADVERSARY_CLIENT);
            assert_eq!(e.at.as_secs(), 100 + i as u64 / 2);
            assert!(
                names.insert(e.question.name.clone()),
                "fresh name per query"
            );
            let bomb = &adv.targets()[i % 32];
            assert!(e.question.name.is_proper_subdomain_of(bomb));
        }
    }

    #[test]
    fn water_torture_targets_real_zones_with_nonexistent_names() {
        let u = universe();
        let adv = AdversarySpec::water_torture(4, 3, 9).compile(&u);
        assert_eq!(adv.targets().len(), 4);
        for victim in adv.targets() {
            let zone = u.get(victim).expect("victims are real zones");
            assert!(!zone.data_names.is_empty(), "victims carry real traffic");
        }
        for e in adv.events(SimTime::ZERO, SimTime::from_secs(5)) {
            let owner = u.zone_of(&e.question.name).expect("under a real zone");
            assert!(owner.query_names().all(|q| *q != e.question.name));
        }
        // Different seeds pick different victim sets.
        let other = AdversarySpec::water_torture(4, 3, 10).compile(&u);
        assert_ne!(adv.targets(), other.targets());
    }

    #[test]
    fn nxns_compile_requires_bombs() {
        let plain = UniverseSpec::small().build(7);
        let r = std::panic::catch_unwind(|| AdversarySpec::nxns(1).compile(&plain));
        assert!(r.is_err(), "compiling NXNS without bombs must panic");
    }

    #[test]
    fn merged_stream_matches_materialized_merge() {
        let u = universe();
        let spec = TraceSpec::demo().scaled(0.02);
        let trace = spec.generate(&u, 5);
        let adv = AdversarySpec::water_torture(3, 2, 7).compile(&u);
        let (start, end) = window_from_day(2, SimDuration::from_hours(1));

        let mat = merge_into_tail(&trace.queries, &adv, start, end);
        let stream = Box::new(spec.workload().stream(UniverseTargets::new(&u), 5));
        let mut merged = MergedStream::new(stream, &adv, start, end);
        let mut streamed = Vec::new();
        while let Some(e) = merged.next_event() {
            streamed.push(e);
        }
        assert_eq!(mat, streamed);
        assert_eq!(
            merged.total_queries(),
            trace.queries.len() as u64 + adv.total_events(start, end)
        );
        // Merged order is non-decreasing in time.
        assert!(streamed.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
