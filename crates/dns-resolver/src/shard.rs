//! The shared concurrent backend: lock-sharded record caches plus
//! single-flight coalescing.
//!
//! A [`ShardedCache`] is a clonable handle (`Arc` inside) that many
//! [`crate::CachingServer`]s — one per worker thread — share. Data-cache
//! state is split across N shards, each behind its own mutex, selected by
//! an FNV-1a hash of the owner name's canonical suffix bytes (the same
//! bytes [`Name`]'s `Hash` uses, so equal names always land on the same
//! shard regardless of how they were constructed). Lookups and inserts
//! for different names contend only when they collide on a shard.
//!
//! The infrastructure cache stays behind a single mutex: renewal
//! scheduling, gap sampling and the parent-recheck walk are cross-zone
//! state that sharding would tear apart, and infra traffic is orders of
//! magnitude rarer than data lookups (this mirrors unbound's separate
//! infra cache). Single-flight coalescing lives in an
//! [`InflightTable`](crate::inflight): the first thread to miss on a
//! question fetches; concurrent identical questions block and share the
//! leader's outcome.
//!
//! Each shard keeps its own [`dns_obs::Registry`] so counting a hit never
//! touches another shard's cache line; [`ShardedCache::merged_registry`]
//! folds them into one registry (histograms via
//! [`LogHistogram::merge`](dns_obs::LogHistogram::merge)) for scraping.

use crate::backend::CacheBackend;
use crate::cache::{CacheEntry, Credibility, NegativeInsertOutcome, NegativeKind, RecordCache};
use crate::inflight::{Admission, Flight, InflightTable};
use crate::infra::{GapSample, InfraCache, InfraEntry, InfraSource};
use crate::RenewalPolicy;
use dns_core::{Name, RecordType, RrSet, SimDuration, SimTime, Ttl};
use dns_obs::{CounterId, HistId, Registry};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One lock-sharded slice of the data cache with its private counters.
#[derive(Debug)]
struct Shard {
    cache: RecordCache,
    obs: Registry,
    hits: CounterId,
    misses: CounterId,
    negative_hits: CounterId,
    inserts: CounterId,
    occupancy: HistId,
}

impl Shard {
    fn new() -> Self {
        let mut obs = Registry::new();
        let hits = obs.counter("shard_record_hits", "fresh record-cache hits in this shard");
        let misses = obs.counter("shard_record_misses", "record-cache misses in this shard");
        let negative_hits = obs.counter(
            "shard_negative_hits",
            "fresh negative-cache hits in this shard",
        );
        let inserts = obs.counter("shard_record_inserts", "RRsets stored in this shard");
        let occupancy = obs.histogram(
            "shard_fresh_rrsets",
            "fresh RRsets per shard at occupancy samples",
        );
        Shard {
            cache: RecordCache::new(),
            obs,
            hits,
            misses,
            negative_hits,
            inserts,
            occupancy,
        }
    }
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Mutex<Shard>>,
    infra: Mutex<InfraCache>,
    inflight: Arc<InflightTable>,
    /// Fetches led on behalf of a flight (coalescing enabled).
    flights_led: AtomicU64,
    /// Resolutions that shared another thread's in-flight fetch.
    flights_shared: AtomicU64,
}

/// A concurrent cache backend shared by many resolver workers.
///
/// Cloning is cheap (an `Arc` bump); every clone observes and mutates the
/// same caches. See the module docs for the sharding and single-flight
/// design.
#[derive(Debug, Clone)]
pub struct ShardedCache {
    inner: Arc<Inner>,
}

impl ShardedCache {
    /// Creates a backend with `shards` data-cache shards (minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        ShardedCache {
            inner: Arc::new(Inner {
                shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
                infra: Mutex::new(InfraCache::new()),
                inflight: Arc::new(InflightTable::default()),
                flights_led: AtomicU64::new(0),
                flights_shared: AtomicU64::new(0),
            }),
        }
    }

    /// Number of data-cache shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Resolutions that joined another thread's in-flight fetch instead of
    /// going upstream themselves.
    pub fn flights_shared(&self) -> u64 {
        self.inner.flights_shared.load(Ordering::Relaxed)
    }

    /// Fetches performed as a flight's leader.
    pub fn flights_led(&self) -> u64 {
        self.inner.flights_led.load(Ordering::Relaxed)
    }

    /// Folds every shard's registry (counters summed, histograms merged)
    /// plus the coalescing counters into one registry for scraping.
    pub fn merged_registry(&self) -> Registry {
        let mut merged = Registry::new();
        let hits = merged.counter("shard_record_hits", "fresh record-cache hits across shards");
        let misses = merged.counter("shard_record_misses", "record-cache misses across shards");
        let negative_hits = merged.counter(
            "shard_negative_hits",
            "fresh negative-cache hits across shards",
        );
        let inserts = merged.counter("shard_record_inserts", "RRsets stored across shards");
        let occupancy = merged.histogram(
            "shard_fresh_rrsets",
            "fresh RRsets per shard at occupancy samples",
        );
        for shard in &self.inner.shards {
            let shard = shard.lock().unwrap();
            merged.add(hits, shard.obs.counter_value(shard.hits));
            merged.add(misses, shard.obs.counter_value(shard.misses));
            merged.add(negative_hits, shard.obs.counter_value(shard.negative_hits));
            merged.add(inserts, shard.obs.counter_value(shard.inserts));
            merged
                .hist_mut(occupancy)
                .merge(shard.obs.hist(shard.occupancy));
        }
        let led = merged.counter(
            "singleflight_leads",
            "fetches performed as a flight's leader",
        );
        let shared = merged.counter(
            "singleflight_shared",
            "resolutions that shared a leader's in-flight fetch",
        );
        merged.set(led, self.flights_led());
        merged.set(shared, self.flights_shared());
        merged
    }

    fn shard_for(&self, name: &Name) -> &Mutex<Shard> {
        let idx = fnv1a(name.as_suffix_bytes()) as usize % self.inner.shards.len();
        &self.inner.shards[idx]
    }
}

/// FNV-1a 64-bit over the name's canonical (lowercased, length-prefixed)
/// suffix bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CacheBackend for ShardedCache {
    fn with_record<R>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(Option<&CacheEntry>) -> R,
    ) -> R {
        let mut shard = self.shard_for(name).lock().unwrap();
        let shard = &mut *shard;
        let entry = shard.cache.get(name, rtype, now);
        let id = if entry.is_some() {
            shard.hits
        } else {
            shard.misses
        };
        let out = f(entry);
        shard.obs.inc(id);
        out
    }

    fn insert_record(&mut self, set: RrSet, now: SimTime, credibility: Credibility) -> bool {
        let mut shard = self.shard_for(set.name()).lock().unwrap();
        let stored = shard.cache.insert(set, now, credibility);
        if stored {
            let id = shard.inserts;
            shard.obs.inc(id);
        }
        stored
    }

    fn negative(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<NegativeKind> {
        let mut shard = self.shard_for(name).lock().unwrap();
        let kind = shard.cache.get_negative(name, rtype, now);
        if kind.is_some() {
            let id = shard.negative_hits;
            shard.obs.inc(id);
        }
        kind
    }

    fn insert_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        ttl: Ttl,
        now: SimTime,
    ) -> NegativeInsertOutcome {
        self.shard_for(&name)
            .lock()
            .unwrap()
            .cache
            .insert_negative(name, rtype, kind, ttl, now)
    }

    fn set_negative_budget(&mut self, entries: Option<usize>, bytes: Option<usize>) {
        // Divide the budget across shards (rounding up so a nonzero budget
        // never truncates to zero per shard). The shard hash spreads flood
        // names uniformly, so the global bound holds within rounding.
        let n = self.inner.shards.len();
        let split = |b: Option<usize>| b.map(|b| b.div_ceil(n));
        let (entries, bytes) = (split(entries), split(bytes));
        for shard in &self.inner.shards {
            shard
                .lock()
                .unwrap()
                .cache
                .set_negative_budget(entries, bytes);
        }
    }

    fn set_stale_retention(&mut self, retention: Option<SimDuration>) {
        for shard in &self.inner.shards {
            shard.lock().unwrap().cache.set_stale_retention(retention);
        }
    }

    fn with_stale_record<R>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(Option<&CacheEntry>) -> R,
    ) -> R {
        let shard = self.shard_for(name).lock().unwrap();
        f(shard.cache.get_stale(name, rtype, now))
    }

    fn negative_entries(&mut self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().cache.negative_len())
            .sum()
    }

    fn purge_data(&mut self, now: SimTime) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().cache.purge_expired(now))
            .sum()
    }

    fn data_fresh_rrsets(&mut self, now: SimTime) -> usize {
        let mut total = 0;
        for shard in &self.inner.shards {
            let mut shard = shard.lock().unwrap();
            let fresh = shard.cache.fresh_len(now);
            let id = shard.occupancy;
            shard.obs.observe(id, fresh as u64);
            total += fresh;
        }
        total
    }

    fn data_fresh_records(&mut self, now: SimTime) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().cache.fresh_record_count(now))
            .sum()
    }

    fn install_root_hints(&mut self, servers: &[(Name, Ipv4Addr)]) {
        self.inner.infra.lock().unwrap().install_root_hints(servers);
    }

    fn with_infra<R>(&mut self, zone: &Name, f: impl FnOnce(Option<&InfraEntry>) -> R) -> R {
        f(self.inner.infra.lock().unwrap().get(zone))
    }

    fn deepest_usable_zone(
        &mut self,
        name: &Name,
        now: SimTime,
        max_parent_age: Option<SimDuration>,
    ) -> Option<Name> {
        self.inner
            .infra
            .lock()
            .unwrap()
            .deepest_usable_ancestor(name, now, max_parent_age)
            .map(|e| e.zone.clone())
    }

    fn install_infra(
        &mut self,
        zone: Name,
        ns_names: Vec<Name>,
        addrs: Vec<(Name, Ipv4Addr)>,
        ttl: Ttl,
        now: SimTime,
        source: InfraSource,
        refresh: bool,
    ) -> bool {
        self.inner
            .infra
            .lock()
            .unwrap()
            .install(zone, ns_names, addrs, ttl, now, source, refresh)
    }

    fn record_zone_use(&mut self, zone: &Name, now: SimTime, policy: Option<&RenewalPolicy>) {
        self.inner
            .infra
            .lock()
            .unwrap()
            .record_use(zone, now, policy);
    }

    fn consume_renewal_credit(&mut self, zone: &Name) -> Option<InfraEntry> {
        self.inner
            .infra
            .lock()
            .unwrap()
            .consume_renewal_credit(zone)
    }

    fn next_renewal_due(&mut self, upto: SimTime) -> Option<(SimTime, Name)> {
        self.inner.infra.lock().unwrap().next_renewal_due(upto)
    }

    fn peek_renewal_due(&mut self) -> Option<SimTime> {
        self.inner.infra.lock().unwrap().peek_renewal_due()
    }

    fn take_gap_samples(&mut self) -> Vec<GapSample> {
        self.inner.infra.lock().unwrap().take_gap_samples()
    }

    fn set_zone_ds(&mut self, zone: &Name, ds: Vec<(u16, u32)>) {
        self.inner.infra.lock().unwrap().set_ds(zone, ds);
    }

    fn promote_zone_address(&mut self, zone: &Name, addr: Ipv4Addr) {
        self.inner.infra.lock().unwrap().promote_address(zone, addr);
    }

    fn add_zone_addresses(&mut self, zone: &Name, pairs: &[(Name, Ipv4Addr)]) {
        self.inner.infra.lock().unwrap().add_addresses(zone, pairs);
    }

    fn purge_infra_tombstones(&mut self, now: SimTime, retention: SimDuration) -> usize {
        self.inner
            .infra
            .lock()
            .unwrap()
            .purge_tombstones(now, retention)
    }

    fn infra_fresh_zones(&mut self, now: SimTime) -> usize {
        self.inner.infra.lock().unwrap().fresh_zone_count(now)
    }

    fn infra_fresh_records(&mut self, now: SimTime) -> usize {
        self.inner.infra.lock().unwrap().fresh_record_count(now)
    }

    fn begin_flight(&mut self, name: &Name, rtype: RecordType) -> Flight {
        match self.inner.inflight.join_or_lead(name, rtype) {
            Admission::Lead(token) => {
                self.inner.flights_led.fetch_add(1, Ordering::Relaxed);
                Flight::Lead(token)
            }
            Admission::Shared(outcome) => {
                self.inner.flights_shared.fetch_add(1, Ordering::Relaxed);
                Flight::Shared(outcome)
            }
            Admission::Suppressed => Flight::Suppressed,
        }
    }

    fn set_zone_inflight_cap(&mut self, cap: Option<u32>) {
        self.inner.inflight.set_zone_cap(cap);
    }

    fn obs_registry(&self) -> Option<Registry> {
        Some(self.merged_registry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{RData, Record};

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a_set(owner: &str, last: u8) -> RrSet {
        let rr = Record::new(
            name(owner),
            Ttl::from_hours(1),
            RData::A(Ipv4Addr::new(192, 0, 2, last)),
        );
        RrSet::from_records(&[rr]).unwrap()
    }

    #[test]
    fn clones_share_state() {
        let mut a = ShardedCache::new(4);
        let mut b = a.clone();
        a.insert_record(
            a_set("www.x.com", 1),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        let hit = b.with_record(
            &name("www.x.com"),
            RecordType::A,
            SimTime::from_mins(1),
            |e| e.is_some(),
        );
        assert!(hit);
    }

    #[test]
    fn shard_count_floors_at_one() {
        assert_eq!(ShardedCache::new(0).shard_count(), 1);
        assert_eq!(ShardedCache::new(8).shard_count(), 8);
    }

    #[test]
    fn occupancy_sums_across_shards() {
        let mut c = ShardedCache::new(8);
        for i in 0..20u8 {
            c.insert_record(
                a_set(&format!("h{i}.x.com"), i),
                SimTime::ZERO,
                Credibility::AuthAnswer,
            );
        }
        assert_eq!(c.data_fresh_rrsets(SimTime::from_mins(1)), 20);
        assert_eq!(c.data_fresh_records(SimTime::from_mins(1)), 20);
        // Expiry drains every shard.
        assert_eq!(c.purge_data(SimTime::from_hours(2)), 20);
        assert_eq!(c.data_fresh_rrsets(SimTime::from_hours(2)), 0);
    }

    #[test]
    fn merged_registry_folds_shard_counters() {
        let mut c = ShardedCache::new(4);
        c.insert_record(a_set("a.x.com", 1), SimTime::ZERO, Credibility::AuthAnswer);
        c.insert_record(a_set("b.y.org", 2), SimTime::ZERO, Credibility::AuthAnswer);
        c.with_record(
            &name("a.x.com"),
            RecordType::A,
            SimTime::from_mins(1),
            |_| (),
        );
        c.with_record(
            &name("nope.z"),
            RecordType::A,
            SimTime::from_mins(1),
            |_| (),
        );
        let reg = c.merged_registry();
        let text = reg.render_prometheus();
        assert!(text.contains("shard_record_inserts 2"));
        assert!(text.contains("shard_record_hits 1"));
        assert!(text.contains("shard_record_misses 1"));
        dns_obs::validate_prometheus_text(&text).expect("merged registry renders valid text");
    }

    #[test]
    fn same_name_maps_to_same_shard_any_construction() {
        let c = ShardedCache::new(8);
        let parsed = name("WWW.Example.COM");
        let lower = name("www.example.com");
        let a = std::ptr::from_ref(c.shard_for(&parsed));
        let b = std::ptr::from_ref(c.shard_for(&lower));
        assert_eq!(a, b, "case-insensitive equality must shard identically");
    }
}
