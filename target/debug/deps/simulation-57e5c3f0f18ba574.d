/root/repo/target/debug/deps/simulation-57e5c3f0f18ba574.d: crates/dns-bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-57e5c3f0f18ba574.rmeta: crates/dns-bench/benches/simulation.rs Cargo.toml

crates/dns-bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
