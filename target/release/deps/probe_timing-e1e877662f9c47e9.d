/root/repo/target/release/deps/probe_timing-e1e877662f9c47e9.d: crates/dns-bench/src/bin/probe_timing.rs

/root/repo/target/release/deps/probe_timing-e1e877662f9c47e9: crates/dns-bench/src/bin/probe_timing.rs

crates/dns-bench/src/bin/probe_timing.rs:
