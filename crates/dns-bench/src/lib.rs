//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index). They all follow the same recipe:
//!
//! 1. build the standard [`Universe`] and the trace(s) involved,
//! 2. declare the sweep as a [`dns_sim::sweep::ExperimentSpec`] (via the
//!    [`Lab`]'s memoised grid helpers) and run it on the parallel engine,
//! 3. print a paper-shaped table, write a CSV next to it, and emit the
//!    run manifest ([`Lab::emit_manifest`]).
//!
//! Set `DNS_REPRO_SCALE` (a float, default `1.0`) to shrink or grow the
//! workloads, e.g. `DNS_REPRO_SCALE=0.1 cargo run --release --bin fig4`
//! for a quick preview. `DNS_SIM_THREADS` pins the engine's worker count
//! (`1` forces sequential execution; results are identical either way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use dns_core::Ttl;
use dns_sim::experiment::{AttackOutcome, OverheadOutcome};
use dns_sim::gap::GapAnalysis;
use dns_sim::{RunManifest, ServerFarm};
use dns_stats::{manifest_table, Table};
use dns_trace::{Trace, TraceSpec, Universe, UniverseSpec};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Seed for universe generation (shared by every experiment so that all
/// figures describe the same simulated internet).
pub const UNIVERSE_SEED: u64 = 20070625;

/// Base seed for trace generation; each trace offsets by its index.
pub const TRACE_SEED: u64 = 42;

/// The scale factor from `DNS_REPRO_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("DNS_REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

/// Builds the experiment universe. At scale < 1 the universe shrinks too,
/// keeping query density roughly constant.
pub fn standard_universe() -> Universe {
    let s = scale();
    let mut spec = UniverseSpec::standard();
    if s < 1.0 {
        spec.sld_count = ((spec.sld_count as f64 * s).ceil() as usize).max(200);
        spec.tld_count = ((spec.tld_count as f64 * s.max(0.15)).ceil() as usize).max(20);
    }
    spec.build(UNIVERSE_SEED)
}

/// Generates the trace for `spec`, applying the global scale factor.
pub fn build_trace(universe: &Universe, spec: &TraceSpec, index: u64) -> Trace {
    spec.scaled(scale().min(1.0))
        .generate(universe, TRACE_SEED + index)
}

/// The output directory for experiment artifacts
/// (`EXPERIMENTS-output/`), created on demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn output_dir() -> PathBuf {
    let dir = std::env::var("DNS_REPRO_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("EXPERIMENTS-output"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    dir
}

/// Prints a table under a heading and also writes it as CSV into
/// [`output_dir`].
///
/// # Panics
///
/// Panics if the CSV cannot be written.
pub fn emit(heading: &str, file_stem: &str, table: &Table) {
    println!("== {heading} ==");
    println!("{table}");
    let path = output_dir().join(format!("{file_stem}.csv"));
    std::fs::write(&path, table.to_csv()).expect("write csv");
    println!("[csv written to {}]", display_path(&path));
}

fn display_path(path: &Path) -> String {
    path.display().to_string()
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Shared state for a sweep of experiments: the universe plus memoised
/// traces, server farms (one per long-TTL setting, shared by `Arc`
/// across every run), memoised outcomes, and the run manifests of every
/// engine sweep executed so far.
#[derive(Debug)]
pub struct Lab {
    pub(crate) universe: Universe,
    pub(crate) traces: HashMap<&'static str, Arc<Trace>>,
    pub(crate) farms: HashMap<u64, Arc<ServerFarm>>,
    pub(crate) attack_memo: HashMap<(String, &'static str, u64), AttackOutcome>,
    pub(crate) overhead_memo: HashMap<(String, &'static str), OverheadOutcome>,
    pub(crate) gap_memo: HashMap<&'static str, GapAnalysis>,
    pub(crate) manifests: Vec<RunManifest>,
}

impl Lab {
    /// Builds the lab around the standard universe.
    pub fn new() -> Self {
        Lab::with_universe(standard_universe())
    }

    /// Builds the lab around an explicit universe (tests use a small one).
    pub fn with_universe(universe: Universe) -> Self {
        Lab {
            universe,
            traces: HashMap::new(),
            farms: HashMap::new(),
            attack_memo: HashMap::new(),
            overhead_memo: HashMap::new(),
            gap_memo: HashMap::new(),
            manifests: Vec::new(),
        }
    }

    /// The universe under test.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The (memoised) trace for a preset, shared without copying.
    pub fn trace(&mut self, spec: &TraceSpec) -> Arc<Trace> {
        let index = spec.name.as_bytes().last().copied().unwrap_or(0) as u64;
        Arc::clone(
            self.traces
                .entry(spec.name)
                .or_insert_with(|| Arc::new(build_trace(&self.universe, spec, index))),
        )
    }

    /// A farm for the given long-TTL setting, built once and shared.
    pub fn farm(&mut self, long_ttl: Option<Ttl>) -> Arc<ServerFarm> {
        let key = long_ttl.map_or(u64::MAX, |t| u64::from(t.as_secs()));
        Arc::clone(
            self.farms
                .entry(key)
                .or_insert_with(|| Arc::new(ServerFarm::build(&self.universe, long_ttl))),
        )
    }

    /// Records the manifest of one engine sweep.
    pub fn record_manifest(&mut self, manifest: RunManifest) {
        self.manifests.push(manifest);
    }

    /// Prints the combined run manifest of every sweep this lab executed
    /// and writes it as `run_manifest.csv` into [`output_dir`].
    pub fn emit_manifest(&self) {
        if self.manifests.is_empty() {
            return;
        }
        let mut rows = Vec::new();
        for manifest in &self.manifests {
            let offset = rows.len();
            rows.extend(manifest.rows().into_iter().map(|mut r| {
                r.unit += offset;
                r
            }));
        }
        let table = manifest_table(&rows);
        emit("Run manifest", "run_manifest", &table);
        let threads = self.manifests.iter().map(|m| m.threads).max().unwrap_or(1);
        let wall: f64 = self
            .manifests
            .iter()
            .map(|m| m.total_wall.as_secs_f64())
            .sum();
        let unit_sum: f64 = self
            .manifests
            .iter()
            .map(|m| m.unit_wall_sum().as_secs_f64())
            .sum();
        let speedup = if wall > 0.0 { unit_sum / wall } else { 1.0 };
        println!(
            "{} sweep(s), {} units on up to {} thread(s): {:.1}s wall, \
             {:.1}s unit total, est. speedup {:.2}x",
            self.manifests.len(),
            rows.len(),
            threads,
            wall,
            unit_sum,
            speedup
        );
    }
}

impl Default for Lab {
    fn default() -> Self {
        Lab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // The test environment does not set the variable.
        if std::env::var("DNS_REPRO_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(12.345), "12.35");
        assert_eq!(ratio(2.5), "2.50x");
    }
}
