/root/repo/target/debug/deps/discussion_latency-485a5043b15cbcc3.d: crates/dns-bench/src/bin/discussion_latency.rs

/root/repo/target/debug/deps/discussion_latency-485a5043b15cbcc3: crates/dns-bench/src/bin/discussion_latency.rs

crates/dns-bench/src/bin/discussion_latency.rs:
