/root/repo/target/debug/deps/probe_timing-b3e99387b5c5dd4f.d: crates/dns-bench/src/bin/probe_timing.rs

/root/repo/target/debug/deps/probe_timing-b3e99387b5c5dd4f: crates/dns-bench/src/bin/probe_timing.rs

crates/dns-bench/src/bin/probe_timing.rs:
