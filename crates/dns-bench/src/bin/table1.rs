//! Regenerates Table 1 (trace statistics) of the DSN 2007 paper.
//! See DESIGN.md §4 for the experiment index.

use dns_bench::experiments::table1;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    table1(&mut lab, &TraceSpec::all());
    lab.emit_manifest();
}
