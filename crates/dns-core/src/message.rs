//! DNS messages: header, question and the three record sections.

use crate::{Name, Record, RecordClass, RecordType};
use std::fmt;

/// Query/response operation code (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete, kept for codec completeness).
    IQuery,
    /// Server status request.
    Status,
}

impl Opcode {
    /// 4-bit wire code.
    pub const fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
        }
    }

    /// Inverse of [`Opcode::code`].
    pub const fn from_code(code: u8) -> Option<Opcode> {
        match code {
            0 => Some(Opcode::Query),
            1 => Some(Opcode::IQuery),
            2 => Some(Opcode::Status),
            _ => None,
        }
    }
}

/// Response code (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure — also what a resolver reports upstream when it
    /// cannot reach any authoritative server during an attack.
    ServFail,
    /// Name does not exist (authoritative only).
    NxDomain,
    /// Query kind not implemented.
    NotImp,
    /// Policy refusal.
    Refused,
}

impl Rcode {
    /// 4-bit wire code.
    pub const fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// Inverse of [`Rcode::code`].
    pub const fn from_code(code: u8) -> Option<Rcode> {
        match code {
            0 => Some(Rcode::NoError),
            1 => Some(Rcode::FormErr),
            2 => Some(Rcode::ServFail),
            3 => Some(Rcode::NxDomain),
            4 => Some(Rcode::NotImp),
            5 => Some(Rcode::Refused),
            _ => None,
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
        })
    }
}

/// Message header: identifier plus the flag/opcode/rcode bits
/// (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Query identifier, echoed in the response.
    pub id: u16,
    /// `true` for responses (QR bit).
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative-answer bit.
    pub authoritative: bool,
    /// Truncation bit.
    pub truncated: bool,
    /// Recursion-desired bit.
    pub recursion_desired: bool,
    /// Recursion-available bit.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

/// The question section entry: name, type, class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub rtype: RecordType,
    /// Queried class.
    pub class: RecordClass,
}

impl Question {
    /// Creates an `IN`-class question.
    pub fn new(name: Name, rtype: RecordType) -> Self {
        Question {
            name,
            rtype,
            class: RecordClass::In,
        }
    }

    /// Creates a question in an explicit class (e.g. `CHAOS` for the
    /// `version.bind.`/`metrics.bind.` convention).
    pub fn with_class(name: Name, rtype: RecordType, class: RecordClass) -> Self {
        Question { name, rtype, class }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.class, self.rtype)
    }
}

/// A complete DNS message.
///
/// Build queries with [`Message::query`] and responses with
/// [`Message::response_to`], then push records into the three sections.
///
/// ```rust
/// # fn main() -> Result<(), dns_core::DnsError> {
/// use dns_core::{Message, Name, Question, RecordType};
///
/// let q = Message::query(7, Question::new("www.ucla.edu".parse()?, RecordType::A));
/// let resp = Message::response_to(&q);
/// assert_eq!(resp.header.id, 7);
/// assert!(resp.header.response);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Header bits.
    pub header: Header,
    /// Question section (zero or one entry in practice).
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section — carries NS RRsets in referrals and refreshed
    /// infrastructure records in authoritative answers.
    pub authorities: Vec<Record>,
    /// Additional section — carries glue address records.
    pub additionals: Vec<Record>,
}

impl Message {
    /// Creates a standard query with recursion desired.
    pub fn query(id: u16, question: Question) -> Self {
        Message {
            header: Header {
                id,
                recursion_desired: true,
                ..Header::default()
            },
            questions: vec![question],
            ..Message::default()
        }
    }

    /// Creates an empty response echoing `query`'s id and question.
    pub fn response_to(query: &Message) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                recursion_desired: query.header.recursion_desired,
                ..Header::default()
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// The first (and in practice only) question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Total records across answer, authority and additional sections.
    pub fn record_count(&self) -> usize {
        self.answers.len() + self.authorities.len() + self.additionals.len()
    }

    /// Iterates over every record in all three sections.
    pub fn all_records(&self) -> impl Iterator<Item = &Record> {
        self.answers
            .iter()
            .chain(self.authorities.iter())
            .chain(self.additionals.iter())
    }

    /// Classifies a *response* according to how a resolver must act on it.
    ///
    /// The classification follows standard iterative-resolution logic:
    /// answers beat referrals, a `NoError` response without answers or
    /// delegation is NODATA, and `NS` records in the authority section of a
    /// non-authoritative answer signal a downward referral.
    pub fn kind(&self) -> ResponseKind {
        if self.header.rcode == Rcode::NxDomain {
            return ResponseKind::NxDomain;
        }
        if self.header.rcode != Rcode::NoError {
            return ResponseKind::Error(self.header.rcode);
        }
        if !self.answers.is_empty() {
            return ResponseKind::Answer;
        }
        let has_ns = self.authorities.iter().any(|r| r.rtype() == RecordType::Ns);
        if has_ns && !self.header.authoritative {
            ResponseKind::Referral
        } else {
            ResponseKind::NoData
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "id={} {} {} q={} an={} au={} ad={}",
            self.header.id,
            if self.header.response {
                "resp"
            } else {
                "query"
            },
            self.header.rcode,
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len()
        )
    }
}

/// How a resolver must interpret a response message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// The answer section holds the queried RRset (or a CNAME chain).
    Answer,
    /// A downward delegation: authority holds child NS, additional holds
    /// glue.
    Referral,
    /// The name exists but has no records of the queried type.
    NoData,
    /// The name does not exist.
    NxDomain,
    /// Any other error rcode.
    Error(Rcode),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RData, Ttl};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn q(s: &str) -> Message {
        Message::query(1, Question::new(name(s), RecordType::A))
    }

    #[test]
    fn opcode_rcode_roundtrip() {
        for op in [Opcode::Query, Opcode::IQuery, Opcode::Status] {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
        ] {
            assert_eq!(Rcode::from_code(rc.code()), Some(rc));
        }
        assert_eq!(Opcode::from_code(9), None);
        assert_eq!(Rcode::from_code(15), None);
    }

    #[test]
    fn response_echoes_query() {
        let query = q("www.ucla.edu");
        let resp = Message::response_to(&query);
        assert_eq!(resp.header.id, query.header.id);
        assert!(resp.header.response);
        assert_eq!(resp.questions, query.questions);
    }

    #[test]
    fn classify_answer() {
        let mut resp = Message::response_to(&q("www.ucla.edu"));
        resp.header.authoritative = true;
        resp.answers.push(Record::new(
            name("www.ucla.edu"),
            Ttl::from_hours(4),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        assert_eq!(resp.kind(), ResponseKind::Answer);
    }

    #[test]
    fn classify_referral() {
        let mut resp = Message::response_to(&q("www.ucla.edu"));
        resp.authorities.push(Record::new(
            name("ucla.edu"),
            Ttl::from_days(1),
            RData::Ns(name("ns1.ucla.edu")),
        ));
        resp.additionals.push(Record::new(
            name("ns1.ucla.edu"),
            Ttl::from_days(1),
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        assert_eq!(resp.kind(), ResponseKind::Referral);
    }

    #[test]
    fn classify_authoritative_nodata_with_ns_is_not_referral() {
        // An authoritative answer that merely carries the zone's own NS in
        // the authority section is NODATA, not a referral.
        let mut resp = Message::response_to(&q("www.ucla.edu"));
        resp.header.authoritative = true;
        resp.authorities.push(Record::new(
            name("ucla.edu"),
            Ttl::from_days(1),
            RData::Ns(name("ns1.ucla.edu")),
        ));
        assert_eq!(resp.kind(), ResponseKind::NoData);
    }

    #[test]
    fn classify_nxdomain_and_error() {
        let mut resp = Message::response_to(&q("nope.ucla.edu"));
        resp.header.rcode = Rcode::NxDomain;
        assert_eq!(resp.kind(), ResponseKind::NxDomain);
        resp.header.rcode = Rcode::ServFail;
        assert_eq!(resp.kind(), ResponseKind::Error(Rcode::ServFail));
    }

    #[test]
    fn all_records_spans_sections() {
        let mut resp = Message::response_to(&q("www.ucla.edu"));
        let rr = Record::new(
            name("www.ucla.edu"),
            Ttl::from_hours(1),
            RData::A(Ipv4Addr::LOCALHOST),
        );
        resp.answers.push(rr.clone());
        resp.authorities.push(rr.clone());
        resp.additionals.push(rr);
        assert_eq!(resp.all_records().count(), 3);
        assert_eq!(resp.record_count(), 3);
    }
}
