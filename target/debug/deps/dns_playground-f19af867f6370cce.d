/root/repo/target/debug/deps/dns_playground-f19af867f6370cce.d: crates/dns-netd/src/bin/dns-playground.rs

/root/repo/target/debug/deps/dns_playground-f19af867f6370cce: crates/dns-netd/src/bin/dns-playground.rs

crates/dns-netd/src/bin/dns-playground.rs:
