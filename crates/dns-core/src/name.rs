//! Domain names and label-wise hierarchy operations.
//!
//! # Representation
//!
//! A [`Name`] stores all its labels in **one contiguous buffer** of
//! wire-style, length-prefixed, lowercase bytes (`3www4ucla3edu` for
//! `www.ucla.edu`, without the terminating zero octet), shared behind an
//! `Arc<[u8]>`, plus a start offset and label count. Consequences the
//! resolver hot path relies on:
//!
//! * `clone()` is a reference-count bump — no heap allocation,
//! * [`Name::parent`] and [`Name::ancestors`] return zero-copy suffix
//!   *views* into the same buffer (`cs.ucla.edu` is `www.cs.ucla.edu`
//!   starting four bytes in),
//! * `Eq`/`Hash` are byte-wise over the suffix (the length-prefixed
//!   encoding is unambiguous, and labels are lowercased on construction,
//!   so byte equality is exactly case-insensitive name equality).
//!
//! `Ord` deliberately remains the *label-wise* lexicographic order of the
//! previous `Vec<Label>` representation (most specific label first,
//! labels compared as byte slices): the renewal scheduler keys a
//! `BTreeSet` by `(SimTime, Name)` and the experiment transcripts are
//! byte-for-byte reproducible only if that order never changes.

use crate::DnsError;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

/// Maximum octets in a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name on the wire, including length bytes and the
/// root's zero octet (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// One label of a domain name, stored lowercase.
///
/// Labels compare case-insensitively per RFC 1035 §2.3.3; we normalise to
/// lowercase at construction so `Eq`/`Hash`/`Ord` are simply byte-wise.
///
/// `Label` is the *construction* unit ([`Name::child`],
/// [`Name::from_labels`]); assembled names store label bytes inline and
/// yield them as plain `&[u8]` slices from [`Name::labels`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Box<[u8]>);

/// Validates one label byte, returning its lowercase form.
fn label_byte(b: u8) -> Result<u8, DnsError> {
    match b {
        b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' => Ok(b),
        b'A'..=b'Z' => Ok(b.to_ascii_lowercase()),
        other => Err(DnsError::InvalidLabelByte(other)),
    }
}

impl Label {
    /// Creates a label from raw bytes, lowercasing ASCII letters.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::EmptyLabel`] for empty input,
    /// [`DnsError::LabelTooLong`] beyond 63 octets and
    /// [`DnsError::InvalidLabelByte`] for bytes outside `[A-Za-z0-9_-]`.
    pub fn new(bytes: &[u8]) -> Result<Self, DnsError> {
        if bytes.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(bytes.len()));
        }
        let mut out = Vec::with_capacity(bytes.len());
        for &b in bytes {
            out.push(label_byte(b)?);
        }
        Ok(Label(out.into_boxed_slice()))
    }

    /// The label's bytes (always lowercase).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in octets, excluding the wire length byte.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is empty. Always `false` for a constructed label;
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Labels are validated ASCII, so this cannot fail.
        f.write_str(std::str::from_utf8(&self.0).expect("labels are ASCII"))
    }
}

/// The shared empty buffer every root view points at, so [`Name::root`]
/// never allocates after first use.
fn empty_buf() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// Incrementally assembles a [`Name`]'s contiguous buffer label by label,
/// so `parse` and the wire decoder never materialise a `Vec<Label>`.
#[derive(Debug, Default)]
pub struct NameBuilder {
    buf: Vec<u8>,
    count: usize,
}

impl NameBuilder {
    /// An empty builder (finishing it immediately yields the root).
    pub fn new() -> Self {
        NameBuilder::default()
    }

    /// Appends one label, validating and lowercasing its bytes.
    ///
    /// # Errors
    ///
    /// Same per-label errors as [`Label::new`].
    pub fn push(&mut self, raw: &[u8]) -> Result<(), DnsError> {
        if raw.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        if raw.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(raw.len()));
        }
        // Validate before touching the buffer so a failed push leaves the
        // builder unchanged.
        for &b in raw {
            label_byte(b)?;
        }
        self.buf.push(raw.len() as u8);
        self.buf.extend(raw.iter().map(u8::to_ascii_lowercase));
        self.count += 1;
        Ok(())
    }

    /// Appends an already-validated lowercase label without re-checking.
    fn push_validated(&mut self, label: &[u8]) {
        debug_assert!(!label.is_empty() && label.len() <= MAX_LABEL_LEN);
        self.buf.push(label.len() as u8);
        self.buf.extend_from_slice(label);
        self.count += 1;
    }

    /// Finishes the name, enforcing the total wire-length limit.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the wire form would exceed 255
    /// octets.
    pub fn finish(self) -> Result<Name, DnsError> {
        let wire = 1 + self.buf.len();
        if wire > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(wire));
        }
        if self.count == 0 {
            return Ok(Name::root());
        }
        let len = self.buf.len() as u16;
        Ok(Name {
            buf: self.buf.into(),
            start: 0,
            len,
            count: self.count as u8,
        })
    }
}

/// A fully qualified domain name: an ordered list of labels, most specific
/// first. The root is the empty list.
///
/// `Name` is the unit the resolver reasons about when it navigates the
/// delegation hierarchy: [`Name::parent`] climbs one step toward the root
/// and [`Name::ancestors`] yields every enclosing zone cut candidate —
/// both as zero-copy views sharing this name's buffer (see the module
/// docs for the representation).
///
/// ```rust
/// # fn main() -> Result<(), dns_core::DnsError> {
/// use dns_core::Name;
/// let www: Name = "www.cs.ucla.edu".parse()?;
/// let zone: Name = "ucla.edu".parse()?;
/// assert!(www.is_subdomain_of(&zone));
/// assert_eq!(www.ancestors().count(), 5); // itself, cs.ucla.edu, ucla.edu, edu, root
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Name {
    /// Length-prefixed lowercase label bytes. For owned names this holds
    /// exactly the name; for views (parents, interned-arena names) it may
    /// be a much larger shared buffer the view points into.
    buf: Arc<[u8]>,
    /// Byte offset of this view's first label within `buf`. `u32` so a
    /// view can point anywhere inside a multi-megabyte interned arena.
    start: u32,
    /// Byte length of the view; `buf[start..start + len]` holds exactly
    /// `count` length-prefixed labels.
    len: u16,
    /// Labels in the view.
    count: u8,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name {
            buf: empty_buf(),
            start: 0,
            len: 0,
            count: 0,
        }
    }

    /// The length-prefixed label bytes of this view (lowercase, no
    /// terminating zero octet). This is the byte string `Eq`/`Hash` are
    /// defined over, and exactly what the wire encoder emits for an
    /// uncompressed name (minus the trailing zero).
    pub fn as_suffix_bytes(&self) -> &[u8] {
        &self.buf[self.start as usize..self.start as usize + self.len as usize]
    }

    /// A zero-copy view of `count` length-prefixed labels starting at
    /// byte `start` of `buf` — the constructor behind interned name
    /// arenas (`dns-trace`), where one shared buffer holds many names
    /// and each is just an `(offset, count)` pair. No bytes are copied;
    /// the view bumps `buf`'s reference count.
    ///
    /// The bytes are validated: each label must be 1–63 octets of
    /// already-lowercase `[a-z0-9_-]`, and the whole view must satisfy
    /// the wire-length limit.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameParse`] when the view runs past the end of
    /// `buf`, [`DnsError::NameTooLong`] past the wire limit, and the
    /// usual per-label errors for malformed or non-lowercase bytes.
    pub fn view(buf: &Arc<[u8]>, start: usize, count: usize) -> Result<Name, DnsError> {
        if count == 0 {
            return Ok(Name::root());
        }
        if count > MAX_NAME_LEN / 2 {
            // More labels than can fit any legal name.
            return Err(DnsError::NameTooLong(count * 2 + 1));
        }
        let mut at = start;
        for _ in 0..count {
            let oob = || DnsError::NameParse(format!("arena view at {start} out of bounds"));
            let label_len = *buf.get(at).ok_or_else(oob)? as usize;
            if label_len == 0 {
                return Err(DnsError::EmptyLabel);
            }
            if label_len > MAX_LABEL_LEN {
                return Err(DnsError::LabelTooLong(label_len));
            }
            let label = buf.get(at + 1..at + 1 + label_len).ok_or_else(oob)?;
            for &b in label {
                // Arena bytes must already be canonical (lowercase):
                // views skip normalisation, so accepting uppercase here
                // would break byte-wise `Eq`/`Hash`.
                if label_byte(b)? != b {
                    return Err(DnsError::InvalidLabelByte(b));
                }
            }
            at += 1 + label_len;
        }
        let len = at - start;
        if 1 + len > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(1 + len));
        }
        if start > u32::MAX as usize {
            return Err(DnsError::NameParse(format!(
                "arena offset {start} too large"
            )));
        }
        Ok(Name {
            buf: Arc::clone(buf),
            start: start as u32,
            len: len as u16,
            count: count as u8,
        })
    }

    /// Builds a name from labels ordered most specific first.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the wire form would exceed 255
    /// octets.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, DnsError> {
        let mut b = NameBuilder::new();
        for label in &labels {
            b.push_validated(label.as_bytes());
        }
        b.finish()
    }

    /// Parses dotted text (`"www.ucla.edu"` or `"www.ucla.edu."`; `"."` and
    /// `""` are the root).
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] if a label is invalid or the name is too long.
    pub fn parse(s: &str) -> Result<Self, DnsError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut b = NameBuilder::new();
        for part in trimmed.split('.') {
            b.push(part.as_bytes()).map_err(|e| match e {
                DnsError::EmptyLabel => DnsError::NameParse(s.to_string()),
                other => other,
            })?;
        }
        b.finish()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.count == 0
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.count as usize
    }

    /// Iterator over the labels as byte slices, most specific first.
    pub fn labels(&self) -> Labels<'_> {
        Labels {
            rest: self.as_suffix_bytes(),
            remaining: self.count as usize,
        }
    }

    /// Octets this name occupies on the wire (length bytes + label bytes +
    /// terminating zero), ignoring compression.
    pub fn wire_len(&self) -> usize {
        1 + self.as_suffix_bytes().len()
    }

    /// The name with the leftmost label removed; `None` for the root.
    ///
    /// `www.ucla.edu` → `ucla.edu` → `edu` → `.` → `None`. The parent is a
    /// view into the same buffer — no bytes are copied.
    pub fn parent(&self) -> Option<Name> {
        if self.count == 0 {
            return None;
        }
        let skip = 1 + u16::from(self.buf[self.start as usize]);
        Some(Name {
            buf: Arc::clone(&self.buf),
            start: self.start + u32::from(skip),
            len: self.len - skip,
            count: self.count - 1,
        })
    }

    /// Iterator over this name and every ancestor, ending at the root.
    /// Each item shares this name's buffer.
    pub fn ancestors(&self) -> Ancestors {
        Ancestors {
            next: Some(self.clone()),
        }
    }

    /// Whether `self` equals `other` or sits below it in the tree.
    ///
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.count > self.count {
            return false;
        }
        // Walk label boundaries rather than comparing raw byte suffixes:
        // a digit byte inside a label is indistinguishable from a length
        // prefix, so `aucla.edu` must not match a trailing-bytes probe
        // for `ucla.edu`.
        let mut rest = self.as_suffix_bytes();
        for _ in 0..self.count - other.count {
            rest = &rest[1 + rest[0] as usize..];
        }
        rest == other.as_suffix_bytes()
    }

    /// Whether `self` is strictly below `other` (subdomain but not equal).
    pub fn is_proper_subdomain_of(&self, other: &Name) -> bool {
        self.count > other.count && self.is_subdomain_of(other)
    }

    /// Creates the child name `label.self`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the result would exceed the wire
    /// limit.
    pub fn child(&self, label: Label) -> Result<Name, DnsError> {
        let suffix = self.as_suffix_bytes();
        let mut b = NameBuilder {
            buf: Vec::with_capacity(1 + label.len() + suffix.len()),
            count: 0,
        };
        b.push_validated(label.as_bytes());
        b.buf.extend_from_slice(suffix);
        b.count += self.count as usize;
        b.finish()
    }

    /// Concatenates `self` (as the more specific part) onto `suffix`.
    ///
    /// `Name::parse("www")?.append(&zone)` builds `www.<zone>`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the result would exceed the wire
    /// limit.
    pub fn append(&self, suffix: &Name) -> Result<Name, DnsError> {
        let (head, tail) = (self.as_suffix_bytes(), suffix.as_suffix_bytes());
        let mut buf = Vec::with_capacity(head.len() + tail.len());
        buf.extend_from_slice(head);
        buf.extend_from_slice(tail);
        NameBuilder {
            buf,
            count: self.count as usize + suffix.count as usize,
        }
        .finish()
    }

    /// The label `depth` steps above the most specific one (0 = leftmost).
    fn label_at(&self, depth: usize) -> &[u8] {
        let mut it = self.labels();
        it.nth(depth).expect("depth < label_count")
    }

    /// The number of labels shared with `other`, counted from the root.
    ///
    /// `www.ucla.edu` and `cs.ucla.edu` share 2 (`ucla`, `edu`).
    pub fn common_suffix_len(&self, other: &Name) -> usize {
        let max = self.label_count().min(other.label_count());
        let mut shared = 0;
        for i in 1..=max {
            if self.label_at(self.label_count() - i) == other.label_at(other.label_count() - i) {
                shared = i;
            } else {
                break;
            }
        }
        shared
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::root()
    }
}

/// Byte-wise over the unambiguous length-prefixed lowercase encoding, so
/// equality is exactly case-insensitive label-sequence equality.
impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.as_suffix_bytes() == other.as_suffix_bytes()
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must stay identical to the `RrKeyView` hash in `rr.rs`, which
        // enables borrowed-key cache lookups without building an `RrKey`.
        self.as_suffix_bytes().hash(state);
    }
}

/// Label-wise lexicographic order, most specific label first — the same
/// total order the former `Vec<Label>` representation derived. The
/// renewal scheduler's `BTreeSet<(SimTime, Name)>` pop order (and thus
/// RNG consumption and every experiment transcript) depends on it, so it
/// must never silently change to plain suffix-byte order.
impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.labels().cmp(other.labels())
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

/// Iterator returned by [`Name::labels`]: each label's bytes, most
/// specific first, read straight out of the shared buffer.
#[derive(Debug, Clone)]
pub struct Labels<'a> {
    rest: &'a [u8],
    remaining: usize,
}

impl<'a> Iterator for Labels<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let (&len, tail) = self.rest.split_first()?;
        let (label, rest) = tail.split_at(len as usize);
        self.rest = rest;
        self.remaining -= 1;
        Some(label)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Labels<'_> {}

/// Iterator returned by [`Name::ancestors`]: the name itself, then each
/// parent, ending with the root. Every item is a zero-copy view sharing
/// the original buffer.
#[derive(Debug, Clone)]
pub struct Ancestors {
    next: Option<Name>,
}

impl Iterator for Ancestors {
    type Item = Name;

    fn next(&mut self) -> Option<Name> {
        let current = self.next.take()?;
        self.next = current.parent();
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.next {
            Some(n) => n.label_count() + 1,
            None => 0,
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Ancestors {}

impl fmt::Display for Name {
    /// Canonical presentation: absolute form with trailing dot; the root is
    /// a single dot.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for label in self.labels() {
            // Labels are validated ASCII, so this cannot fail.
            f.write_str(std::str::from_utf8(label).expect("labels are ASCII"))?;
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = DnsError;
    fn from_str(s: &str) -> Result<Self, DnsError> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        assert_eq!(n("www.ucla.edu").to_string(), "www.ucla.edu.");
        assert_eq!(n("www.ucla.edu.").to_string(), "www.ucla.edu.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
    }

    #[test]
    fn case_is_normalised() {
        assert_eq!(n("WWW.UCLA.Edu"), n("www.ucla.edu"));
    }

    #[test]
    fn invalid_labels_rejected() {
        assert!(Name::parse("exa mple.com").is_err());
        assert!(Name::parse("a..b").is_err());
        let long = "a".repeat(64);
        assert_eq!(Name::parse(&long).unwrap_err(), DnsError::LabelTooLong(64));
    }

    #[test]
    fn name_length_limit_enforced() {
        // 5 labels of 63 octets = 5*64+1 = 321 wire octets > 255.
        let label = "a".repeat(63);
        let long = [label.as_str(); 5].join(".");
        assert!(matches!(
            Name::parse(&long).unwrap_err(),
            DnsError::NameTooLong(_)
        ));
        // 3 labels of 63 = 193+1 wire octets: fine.
        let ok = [label.as_str(); 3].join(".");
        assert!(Name::parse(&ok).is_ok());
    }

    #[test]
    fn parent_chain_reaches_root() {
        let name = n("www.cs.ucla.edu");
        let mut chain = Vec::new();
        let mut cur = Some(name);
        while let Some(x) = cur {
            chain.push(x.to_string());
            cur = chain.last().map(|s| n(s)).and_then(|x| x.parent());
        }
        assert_eq!(
            chain,
            vec!["www.cs.ucla.edu.", "cs.ucla.edu.", "ucla.edu.", "edu.", "."]
        );
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn parent_and_ancestors_share_the_buffer() {
        let name = n("www.cs.ucla.edu");
        let parent = name.parent().unwrap();
        assert!(Arc::ptr_eq(&name.buf, &parent.buf));
        for ancestor in name.ancestors() {
            assert!(Arc::ptr_eq(&name.buf, &ancestor.buf));
        }
        // Views from different buffers still compare equal.
        assert_eq!(parent, n("cs.ucla.edu"));
    }

    #[test]
    fn ancestors_iterate_most_specific_first() {
        let got: Vec<String> = n("a.b.c").ancestors().map(|x| x.to_string()).collect();
        assert_eq!(got, vec!["a.b.c.", "b.c.", "c.", "."]);
        let root_only: Vec<Name> = Name::root().ancestors().collect();
        assert_eq!(root_only, vec![Name::root()]);
    }

    #[test]
    fn ancestors_size_hint_is_exact() {
        let name = n("a.b.c");
        let it = name.ancestors();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn labels_iterate_with_exact_size() {
        let name = n("www.ucla.edu");
        let it = name.labels();
        assert_eq!(it.len(), 3);
        let got: Vec<&[u8]> = it.collect();
        assert_eq!(got, vec![b"www".as_slice(), b"ucla", b"edu"]);
        assert_eq!(Name::root().labels().len(), 0);
    }

    #[test]
    fn subdomain_relationships() {
        assert!(n("www.ucla.edu").is_subdomain_of(&n("ucla.edu")));
        assert!(n("www.ucla.edu").is_subdomain_of(&n("edu")));
        assert!(n("www.ucla.edu").is_subdomain_of(&Name::root()));
        assert!(n("ucla.edu").is_subdomain_of(&n("ucla.edu")));
        assert!(!n("ucla.edu").is_proper_subdomain_of(&n("ucla.edu")));
        assert!(n("www.ucla.edu").is_proper_subdomain_of(&n("ucla.edu")));
        assert!(!n("ucla.edu").is_subdomain_of(&n("www.ucla.edu")));
        // Same length, different labels.
        assert!(!n("ucla.edu").is_subdomain_of(&n("ucla.com")));
        // Suffix must fall on a label boundary.
        assert!(!n("aucla.edu").is_subdomain_of(&n("ucla.edu")));
        // Digit-led labels whose bytes mimic a length prefix must not
        // confuse the boundary walk (b'1' = 49, a plausible prefix).
        assert!(!n("x1.12345.com").is_subdomain_of(&n("2345.com")));
        assert!(n("a.12345.com").is_subdomain_of(&n("12345.com")));
    }

    #[test]
    fn child_and_append() {
        let zone = n("ucla.edu");
        let www = zone.child(Label::new(b"www").unwrap()).unwrap();
        assert_eq!(www, n("www.ucla.edu"));
        let joined = n("a.b").append(&n("c.d")).unwrap();
        assert_eq!(joined, n("a.b.c.d"));
    }

    #[test]
    fn common_suffix() {
        assert_eq!(n("www.ucla.edu").common_suffix_len(&n("cs.ucla.edu")), 2);
        assert_eq!(n("www.ucla.edu").common_suffix_len(&n("www.ucla.com")), 0);
        assert_eq!(n("a.b").common_suffix_len(&Name::root()), 0);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut names = [n("b.com"), n("a.com"), Name::root()];
        names.sort();
        // We only require a deterministic total order for use in BTreeMaps.
        assert_eq!(names.len(), 3);
        assert!(names.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ordering_matches_label_list_model() {
        // The order the scheduler depends on: compare label-by-label from
        // the most specific end, like the old Vec<Label> derive did.
        let names = [
            Name::root(),
            n("com"),
            n("a.com"),
            n("b.com"),
            n("a.b.com"),
            n("aa.com"),
            n("a.edu"),
            n("edu"),
        ];
        for a in &names {
            for b in &names {
                let model_a: Vec<&[u8]> = a.labels().collect();
                let model_b: Vec<&[u8]> = b.labels().collect();
                assert_eq!(a.cmp(b), model_a.cmp(&model_b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn arena_views_share_bytes_and_compare_equal() {
        // One arena holding two names back to back:
        // 3www4ucla3edu | 1a3com
        let arena: Arc<[u8]> = Arc::from(&b"\x03www\x04ucla\x03edu\x01a\x03com"[..]);
        let www = Name::view(&arena, 0, 3).unwrap();
        let a_com = Name::view(&arena, 13, 2).unwrap();
        assert_eq!(www, n("www.ucla.edu"));
        assert_eq!(a_com, n("a.com"));
        assert!(Arc::ptr_eq(&www.buf, &arena));
        // Mid-arena parents stop at the view's end, not the buffer's.
        assert_eq!(www.parent().unwrap(), n("ucla.edu"));
        assert_eq!(www.parent().unwrap().as_suffix_bytes(), b"\x04ucla\x03edu");
        // Interior offsets give suffix views for free.
        assert_eq!(Name::view(&arena, 4, 2).unwrap(), n("ucla.edu"));
        // Zero labels is the root.
        assert_eq!(Name::view(&arena, 0, 0).unwrap(), Name::root());
    }

    #[test]
    fn arena_views_hash_like_owned_names() {
        use std::collections::hash_map::DefaultHasher;
        fn h(name: &Name) -> u64 {
            let mut s = DefaultHasher::new();
            name.hash(&mut s);
            s.finish()
        }
        let arena: Arc<[u8]> = Arc::from(&b"\x02xx\x03www\x04ucla\x03edu"[..]);
        let view = Name::view(&arena, 3, 3).unwrap();
        assert_eq!(h(&view), h(&n("www.ucla.edu")));
    }

    #[test]
    fn malformed_arena_views_rejected() {
        let arena: Arc<[u8]> = Arc::from(&b"\x03www\x04ucla\x03edu"[..]);
        // Runs past the end of the buffer.
        assert!(Name::view(&arena, 0, 4).is_err());
        assert!(Name::view(&arena, 10, 2).is_err());
        // Offset lands mid-label: b'w' = 119 reads far out of bounds.
        assert!(Name::view(&arena, 1, 1).is_err());
        // Zero-length label.
        let zeros: Arc<[u8]> = Arc::from(&b"\x00\x01a"[..]);
        assert!(Name::view(&zeros, 0, 2).is_err());
        // Uppercase bytes are not canonical arena content.
        let upper: Arc<[u8]> = Arc::from(&b"\x03WWW"[..]);
        assert!(Name::view(&upper, 0, 1).is_err());
        // Too many labels for any legal name.
        assert!(Name::view(&arena, 0, 200).is_err());
    }

    #[test]
    fn views_hash_like_owned_names() {
        use std::collections::hash_map::DefaultHasher;
        fn h(name: &Name) -> u64 {
            let mut s = DefaultHasher::new();
            name.hash(&mut s);
            s.finish()
        }
        let deep = n("www.cs.ucla.edu");
        let view = deep.parent().unwrap().parent().unwrap();
        assert_eq!(view, n("ucla.edu"));
        assert_eq!(h(&view), h(&n("ucla.edu")));
    }
}
