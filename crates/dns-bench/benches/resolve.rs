//! Benchmarks for the resolution pipeline: cache hits, warm-zone queries
//! and full cold walks through the hierarchy.

use criterion::{criterion_group, criterion_main, Criterion};
use dns_core::{Name, SimTime};
use dns_resolver::{CachingServer, ResolverConfig, RootHints};
use dns_sim::{ServerFarm, SimNet};
use dns_trace::{Universe, UniverseSpec};
use std::hint::black_box;

fn setup() -> (Universe, SimNet, RootHints) {
    let universe = UniverseSpec::small().build(7);
    let farm = ServerFarm::build(&universe, None);
    let hints = RootHints::new(universe.root_servers().to_vec());
    (universe, SimNet::new(farm), hints)
}

fn first_data_name(universe: &Universe) -> Name {
    universe
        .zones()
        .iter()
        .find(|z| !z.data_names.is_empty())
        .expect("universe has data")
        .data_names[0]
        .0
        .clone()
}

fn bench_resolve(c: &mut Criterion) {
    let (universe, mut net, hints) = setup();
    let target = first_data_name(&universe);

    c.bench_function("resolve/cold_walk", |b| {
        // Fresh resolver every iteration: full root → TLD → zone walk.
        b.iter_with_setup(
            || CachingServer::new(ResolverConfig::vanilla(), hints.clone()),
            |mut cs| cs.resolve_a(black_box(&target), SimTime::ZERO, &mut net),
        )
    });

    c.bench_function("resolve/cache_hit", |b| {
        let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints.clone());
        cs.resolve_a(&target, SimTime::ZERO, &mut net);
        b.iter(|| cs.resolve_a(black_box(&target), SimTime::from_mins(1), &mut net))
    });

    c.bench_function("resolve/warm_zone_expired_data", |b| {
        // Infrastructure cached, data record expired: one direct query.
        let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints.clone());
        cs.resolve_a(&target, SimTime::ZERO, &mut net);
        let mut t = 6 * 3_600u64; // past the 4h-ish data TTLs
        b.iter(|| {
            t += 3_600;
            cs.resolve_a(black_box(&target), SimTime::from_secs(t), &mut net)
        })
    });

    c.bench_function("resolve/nxdomain_negative_cached", |b| {
        let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints.clone());
        let missing: Name = format!("nx1.{}", target.parent().unwrap()).parse().unwrap();
        cs.resolve_a(&missing, SimTime::ZERO, &mut net);
        b.iter(|| cs.resolve_a(black_box(&missing), SimTime::from_secs(30), &mut net))
    });
}

criterion_group!(benches, bench_resolve);
criterion_main!(benches);
