//! DNSSEC *structure* (paper §6): DS records are parent-side
//! infrastructure records, DNSKEYs live at the child, and a delegation is
//! secure when they match.
//!
//! This workspace simulates the structural part of DNSSEC that interacts
//! with the paper's schemes — where the records live, who serves them and
//! how long they stay cached — using a synthetic digest
//! ([`dns_core::synthetic_key_digest`]) in place of real cryptography.

use crate::{CachingServer, Outcome, Upstream};
use dns_core::{synthetic_key_digest, Name, Question, RData, RecordType, SimTime};
use std::fmt;

/// Result of validating one zone's delegation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecureStatus {
    /// A cached DS matches a DNSKEY served by the zone.
    Secure,
    /// No DS material is cached for the zone (unsigned delegation, or the
    /// referral that carried it has expired from the cache).
    Insecure,
    /// DS material exists but no served DNSKEY matches it — a broken or
    /// hijacked delegation.
    Bogus,
    /// The DNSKEY could not be fetched (e.g. the zone is under attack).
    Indeterminate,
}

impl fmt::Display for SecureStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SecureStatus::Secure => "secure",
            SecureStatus::Insecure => "insecure",
            SecureStatus::Bogus => "bogus",
            SecureStatus::Indeterminate => "indeterminate",
        })
    }
}

/// Whether `ds` commits to `key` under the synthetic digest.
pub fn ds_matches(ds: (u16, u32), key: (u16, u32)) -> bool {
    ds.0 == key.0 && ds.1 == synthetic_key_digest(key.1)
}

impl CachingServer {
    /// Validates `zone`'s delegation: compares the cached DS material
    /// (learned from the parent's referral and kept alive by the
    /// refresh/renewal/long-TTL schemes) against the DNSKEY the zone
    /// serves.
    ///
    /// Fetching the DNSKEY uses the normal resolution path (and therefore
    /// the cache), so validation keeps working through an attack on the
    /// ancestors for as long as the infrastructure records survive.
    pub fn validate_zone<U: Upstream>(
        &mut self,
        zone: &Name,
        now: SimTime,
        up: &mut U,
    ) -> SecureStatus {
        let ds: Vec<(u16, u32)> = match self.infra().get(zone) {
            Some(entry) if entry.is_fresh(now) && !entry.ds.is_empty() => entry.ds.clone(),
            _ => return SecureStatus::Insecure,
        };
        let question = Question::new(zone.clone(), RecordType::Dnskey);
        match self.resolve(&question, now, up) {
            Outcome::Answer { records, .. } => {
                let keys = records.iter().filter_map(|r| match r.rdata() {
                    RData::Dnskey {
                        key_tag,
                        public_key,
                    } => Some((*key_tag, *public_key)),
                    _ => None,
                });
                for key in keys {
                    if ds.iter().any(|&d| ds_matches(d, key)) {
                        return SecureStatus::Secure;
                    }
                }
                SecureStatus::Bogus
            }
            Outcome::NxDomain { .. } | Outcome::NoData { .. } => SecureStatus::Bogus,
            Outcome::Fail => SecureStatus::Indeterminate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_requires_tag_and_digest() {
        let key = (257u16, 0xFEED_F00Du32);
        let good = (257u16, synthetic_key_digest(0xFEED_F00D));
        assert!(ds_matches(good, key));
        // Wrong tag.
        assert!(!ds_matches((1, good.1), key));
        // Wrong digest.
        assert!(!ds_matches((257, good.1 ^ 1), key));
    }

    #[test]
    fn digest_is_deterministic_and_spreading() {
        assert_eq!(synthetic_key_digest(42), synthetic_key_digest(42));
        assert_ne!(synthetic_key_digest(1), synthetic_key_digest(2));
    }

    #[test]
    fn status_display() {
        assert_eq!(SecureStatus::Secure.to_string(), "secure");
        assert_eq!(SecureStatus::Bogus.to_string(), "bogus");
    }
}
