/root/repo/target/debug/deps/dns_dig-31a625b30657a32f.d: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

/root/repo/target/debug/deps/libdns_dig-31a625b30657a32f.rmeta: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

crates/dns-netd/src/bin/dns-dig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
