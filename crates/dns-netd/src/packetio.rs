//! Batched datagram I/O behind a trait: the daemon's recv/send loop is
//! written against [`PacketIo`] (`recvmmsg`/`sendmmsg`-shaped — arrays of
//! packets per call) so the same worker code runs over a real UDP socket
//! ([`UdpPacketIo`]) or an in-process loopback queue ([`ChannelPacketIo`])
//! that fault suites and benches can drive without sockets.
//!
//! Batching matters because the wire fast lane answers hot queries
//! without message assembly: once serving a packet is cheap, the
//! per-datagram syscall and loop overhead dominates, and draining a burst
//! into one batch amortizes it. The crate forbids `unsafe`, so
//! [`UdpPacketIo`] emulates the `recvmmsg` shape portably: one blocking
//! receive (bounded by the socket's read timeout) followed by a
//! non-blocking drain of whatever else is queued.

use dns_core::wire;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Largest number of datagrams moved per [`PacketIo`] call — the
/// `mmsghdr` vector length, in kernel terms.
pub const MAX_BATCH: usize = 16;

/// Placeholder peer for unused packet slots.
const NO_PEER: SocketAddr = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0));

/// One datagram: a fixed maximum-size buffer, the used length and the
/// peer it came from (or goes to).
#[derive(Debug, Clone)]
pub struct Packet {
    buf: Box<[u8; wire::MAX_MESSAGE_LEN]>,
    len: usize,
    peer: SocketAddr,
}

impl Packet {
    fn empty() -> Packet {
        Packet {
            buf: Box::new([0u8; wire::MAX_MESSAGE_LEN]),
            len: 0,
            peer: NO_PEER,
        }
    }

    /// The datagram payload.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// The peer address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }
}

/// A reusable array of up to [`MAX_BATCH`] packets. Buffers are allocated
/// once and recycled across calls, so a steady-state recv → serve → send
/// cycle allocates nothing.
#[derive(Debug)]
pub struct PacketBatch {
    packets: Vec<Packet>,
    len: usize,
}

impl Default for PacketBatch {
    fn default() -> Self {
        PacketBatch::new()
    }
}

impl PacketBatch {
    /// A batch with all [`MAX_BATCH`] buffers pre-allocated.
    pub fn new() -> PacketBatch {
        PacketBatch {
            packets: (0..MAX_BATCH).map(|_| Packet::empty()).collect(),
            len: 0,
        }
    }

    /// Packets currently in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the batch is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == MAX_BATCH
    }

    /// Empties the batch (buffers are retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The `i`-th packet.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &Packet {
        assert!(i < self.len);
        &self.packets[i]
    }

    /// Iterator over the packets in the batch.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.packets[..self.len].iter()
    }

    /// Appends a packet by copying `bytes`. Returns `false` when the
    /// batch is full or `bytes` exceeds a datagram.
    pub fn push_copy(&mut self, bytes: &[u8], peer: SocketAddr) -> bool {
        if self.is_full() || bytes.len() > wire::MAX_MESSAGE_LEN {
            return false;
        }
        let slot = &mut self.packets[self.len];
        slot.buf[..bytes.len()].copy_from_slice(bytes);
        slot.len = bytes.len();
        slot.peer = peer;
        self.len += 1;
        true
    }

    /// Appends a packet written in place: `write` fills the slot's buffer
    /// and returns `Some(len)` to commit it, `None` to leave the batch
    /// unchanged. This is the zero-copy path the wire fast lane uses —
    /// a cache hit is patched directly into the send buffer.
    pub fn push_with(
        &mut self,
        peer: SocketAddr,
        write: impl FnOnce(&mut [u8]) -> Option<usize>,
    ) -> bool {
        if self.is_full() {
            return false;
        }
        let slot = &mut self.packets[self.len];
        match write(&mut slot.buf[..]) {
            Some(len) if len <= wire::MAX_MESSAGE_LEN => {
                slot.len = len;
                slot.peer = peer;
                self.len += 1;
                true
            }
            _ => false,
        }
    }

    /// The next free slot's buffer, for receive paths that fill in place.
    fn recv_slot(&mut self) -> &mut [u8] {
        &mut self.packets[self.len].buf[..]
    }

    /// Commits the slot filled by [`PacketBatch::recv_slot`].
    fn commit_recv(&mut self, len: usize, peer: SocketAddr) {
        self.packets[self.len].len = len;
        self.packets[self.len].peer = peer;
        self.len += 1;
    }
}

/// Batched datagram transport: `recvmmsg`/`sendmmsg` semantics over
/// whatever carries the packets.
pub trait PacketIo: Send {
    /// Clears `batch`, then moves up to [`MAX_BATCH`] waiting datagrams
    /// into it. Blocks for at most the transport's poll interval for the
    /// *first* datagram; `Ok(0)` is a timeout tick (callers use it to
    /// check their stop flag).
    ///
    /// # Errors
    ///
    /// Fatal transport errors only; timeouts are `Ok(0)`.
    fn recv_batch(&mut self, batch: &mut PacketBatch) -> io::Result<usize>;

    /// Sends every packet in `batch`, returning how many were accepted.
    /// Per-packet send failures skip that packet rather than aborting the
    /// batch (`sendmmsg` semantics).
    ///
    /// # Errors
    ///
    /// Fatal transport errors only.
    fn send_batch(&mut self, batch: &PacketBatch) -> io::Result<usize>;
}

/// [`PacketIo`] over a real UDP socket.
///
/// The first receive blocks under the socket's configured read timeout;
/// the rest of the batch is drained non-blocking. Worker pools clone one
/// socket, so the non-blocking toggle is shared across clones: another
/// worker's blocking receive may wake early with `WouldBlock` during the
/// drain window, which it already treats as a timeout tick — a benign
/// race that costs one loop iteration.
#[derive(Debug)]
pub struct UdpPacketIo {
    socket: UdpSocket,
}

impl UdpPacketIo {
    /// Wraps `socket` (read timeout should already be configured).
    pub fn new(socket: UdpSocket) -> UdpPacketIo {
        UdpPacketIo { socket }
    }

    /// The socket's local address.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl PacketIo for UdpPacketIo {
    fn recv_batch(&mut self, batch: &mut PacketBatch) -> io::Result<usize> {
        batch.clear();
        match self.socket.recv_from(batch.recv_slot()) {
            Ok((len, peer)) => batch.commit_recv(len, peer),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(0)
            }
            Err(e) => return Err(e),
        }
        // Greedily drain whatever else the kernel has queued.
        self.socket.set_nonblocking(true)?;
        let drained = loop {
            if batch.is_full() {
                break Ok(());
            }
            match self.socket.recv_from(batch.recv_slot()) {
                Ok((len, peer)) => batch.commit_recv(len, peer),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        self.socket.set_nonblocking(false)?;
        drained?;
        Ok(batch.len())
    }

    fn send_batch(&mut self, batch: &PacketBatch) -> io::Result<usize> {
        let mut sent = 0;
        for p in batch.iter() {
            if self.socket.send_to(p.bytes(), p.peer()).is_ok() {
                sent += 1;
            }
        }
        Ok(sent)
    }
}

/// Shared state behind a [`LoopbackHub`]/[`ChannelPacketIo`] pair.
#[derive(Debug, Default)]
struct HubInner {
    /// Datagrams injected toward the daemon (client → server).
    inbound: Mutex<std::collections::VecDeque<(Vec<u8>, SocketAddr)>>,
    /// Datagrams the daemon sent (server → client).
    outbound: Mutex<Vec<(Vec<u8>, SocketAddr)>>,
    /// Signals inbound arrivals to blocked receivers.
    arrived: Condvar,
}

/// The test/bench side of an in-process packet transport: inject queries,
/// collect responses. Clone of the state shared with [`ChannelPacketIo`].
///
/// This is the sim/loopback implementation of the batched wire path: the
/// fault suites drive the exact worker loop the UDP daemon runs — batched
/// receive, fast-lane/slow-path serving, batched send — without sockets.
#[derive(Debug, Clone, Default)]
pub struct LoopbackHub {
    inner: Arc<HubInner>,
}

impl LoopbackHub {
    /// A hub with empty queues.
    pub fn new() -> LoopbackHub {
        LoopbackHub::default()
    }

    /// A [`PacketIo`] endpoint over this hub, for a daemon worker.
    pub fn io(&self) -> ChannelPacketIo {
        ChannelPacketIo {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Queues a datagram for the daemon, attributed to `peer`.
    pub fn inject(&self, bytes: &[u8], peer: SocketAddr) {
        self.inner
            .inbound
            .lock()
            .unwrap()
            .push_back((bytes.to_vec(), peer));
        self.inner.arrived.notify_one();
    }

    /// Takes every response the daemon has sent so far.
    pub fn drain_sent(&self) -> Vec<(Vec<u8>, SocketAddr)> {
        std::mem::take(&mut self.inner.outbound.lock().unwrap())
    }
}

/// [`PacketIo`] over in-process queues (see [`LoopbackHub`]).
#[derive(Debug)]
pub struct ChannelPacketIo {
    inner: Arc<HubInner>,
}

impl PacketIo for ChannelPacketIo {
    fn recv_batch(&mut self, batch: &mut PacketBatch) -> io::Result<usize> {
        batch.clear();
        let mut inbound = self.inner.inbound.lock().unwrap();
        if inbound.is_empty() {
            // Same poll cadence as the UDP socket's read timeout, so the
            // worker's stop flag stays responsive.
            let (guard, _timeout) = self
                .inner
                .arrived
                .wait_timeout(inbound, Duration::from_millis(50))
                .unwrap();
            inbound = guard;
        }
        while !batch.is_full() {
            let Some((bytes, peer)) = inbound.pop_front() else {
                break;
            };
            if bytes.len() <= wire::MAX_MESSAGE_LEN {
                batch.push_copy(&bytes, peer);
            }
        }
        Ok(batch.len())
    }

    fn send_batch(&mut self, batch: &PacketBatch) -> io::Result<usize> {
        let mut outbound = self.inner.outbound.lock().unwrap();
        for p in batch.iter() {
            outbound.push((p.bytes().to_vec(), p.peer()));
        }
        Ok(batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(port: u16) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }

    #[test]
    fn batch_push_and_iterate() {
        let mut b = PacketBatch::new();
        assert!(b.is_empty());
        assert!(b.push_copy(b"abc", peer(1)));
        assert!(b.push_with(peer(2), |buf| {
            buf[..2].copy_from_slice(b"xy");
            Some(2)
        }));
        // A declined in-place write leaves the batch unchanged.
        assert!(!b.push_with(peer(3), |_| None));
        assert_eq!(b.len(), 2);
        let got: Vec<(&[u8], SocketAddr)> = b.iter().map(|p| (p.bytes(), p.peer())).collect();
        assert_eq!(
            got,
            vec![(b"abc".as_slice(), peer(1)), (b"xy".as_slice(), peer(2))]
        );
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn batch_capacity_is_enforced() {
        let mut b = PacketBatch::new();
        for i in 0..MAX_BATCH {
            assert!(b.push_copy(&[i as u8], peer(9)));
        }
        assert!(b.is_full());
        assert!(!b.push_copy(b"overflow", peer(9)));
        assert!(!b.push_with(peer(9), |_| Some(1)));
    }

    #[test]
    fn udp_io_drains_a_burst_into_one_batch() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let addr = server.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..5u8 {
            client.send_to(&[i], addr).unwrap();
        }
        let mut io = UdpPacketIo::new(server);
        let mut batch = PacketBatch::new();
        let mut total = 0;
        // The burst may straddle scheduler ticks; a handful of calls must
        // recover all five datagrams, and at least one call must batch.
        let mut best = 0;
        for _ in 0..10 {
            let n = io.recv_batch(&mut batch).unwrap();
            best = best.max(n);
            total += n;
            if total == 5 {
                break;
            }
        }
        assert_eq!(total, 5, "all datagrams received");
        assert!(best >= 1);
    }

    #[test]
    fn udp_io_timeout_is_a_zero_tick() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut io = UdpPacketIo::new(server);
        let mut batch = PacketBatch::new();
        assert_eq!(io.recv_batch(&mut batch).unwrap(), 0);
    }

    #[test]
    fn loopback_hub_roundtrip() {
        let hub = LoopbackHub::new();
        let mut io = hub.io();
        hub.inject(b"q1", peer(1000));
        hub.inject(b"q2", peer(1001));
        let mut batch = PacketBatch::new();
        assert_eq!(io.recv_batch(&mut batch).unwrap(), 2);
        assert_eq!(batch.get(0).bytes(), b"q1");
        assert_eq!(batch.get(1).peer(), peer(1001));
        assert_eq!(io.send_batch(&batch).unwrap(), 2);
        let sent = hub.drain_sent();
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0], (b"q1".to_vec(), peer(1000)));
        // An empty hub times out into a zero tick, like the socket.
        assert_eq!(io.recv_batch(&mut batch).unwrap(), 0);
    }
}
