/root/repo/target/debug/deps/fig4-f423646b505a20ed.d: crates/dns-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-f423646b505a20ed: crates/dns-bench/src/bin/fig4.rs

crates/dns-bench/src/bin/fig4.rs:
