//! Facade crate for the DSN 2007 DNS-resilience reproduction.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the `examples/`) can depend on a single crate:
//!
//! * [`core`] — names, records, messages, zones, wire format.
//! * [`auth`] — authoritative name-server engine.
//! * [`resolver`] — caching resolver with the paper's resilience policies.
//! * [`sim`] — discrete-event simulator and DDoS attack scenarios.
//! * [`trace`] — synthetic namespace and query-trace generation.
//! * [`stats`] — CDFs, histograms and table emitters.
//! * [`netd`] — live UDP daemons (authoritative + recursive) and a
//!   dig-like client, binding the same engines to real sockets.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a namespace,
//! generate a workload, attack the root + TLDs and compare the vanilla
//! resolver against the paper's combined scheme.

pub use dns_auth as auth;
pub use dns_netd as netd;
pub use dns_core as core;
pub use dns_resolver as resolver;
pub use dns_sim as sim;
pub use dns_stats as stats;
pub use dns_trace as trace;
