//! The simulation driver: trace replay with interleaved renewal events,
//! occupancy sampling and cache maintenance.

use crate::{CompiledAttack, ServerFarm, SimNet};
use dns_core::{SimDuration, SimTime, Ttl};
use dns_resolver::{
    CacheBackend, CachingServer, GapSample, LocalBackend, OccupancySample, ResolverConfig,
    ResolverMetrics, RootHints,
};
use dns_trace::{Trace, Universe};
use std::fmt;
use std::sync::Arc;

/// The single source of scheme display labels, shared by
/// [`SimConfig::label`] and [`Scheme::label`](crate::experiment::Scheme):
/// the resolver label plus a `+longttl{ttl}` suffix when the
/// operator-side long-TTL scheme is active
/// (`refresh+A-LFU_3+longttl3d`, …). Memoisation keys in `dns-bench` and
/// every CSV's scheme column go through this one function, so the format
/// must stay stable.
pub fn scheme_label(resolver: &ResolverConfig, long_ttl: Option<Ttl>) -> String {
    match long_ttl {
        Some(ttl) => format!("{}+longttl{}", resolver.label(), ttl),
        None => resolver.label(),
    }
}

/// Configuration of one simulation run: the resolver scheme plus the
/// zone-operator-side long-TTL override and sampling cadence.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Caching-server configuration (refresh / renewal schemes).
    pub resolver: ResolverConfig,
    /// Long-TTL override applied to every zone's infrastructure records.
    pub long_ttl: Option<Ttl>,
    /// Occupancy sampling interval (`None` disables sampling).
    pub occupancy_interval: Option<SimDuration>,
    /// How often expired cache entries are purged.
    pub purge_interval: SimDuration,
}

impl SimConfig {
    /// A run with the given resolver scheme and default cadences.
    pub fn new(resolver: ResolverConfig) -> Self {
        SimConfig {
            resolver,
            long_ttl: None,
            occupancy_interval: None,
            purge_interval: SimDuration::from_hours(6),
        }
    }

    /// Applies the operator-side long-TTL scheme.
    pub fn long_ttl(mut self, ttl: Ttl) -> Self {
        self.long_ttl = Some(ttl);
        self
    }

    /// Enables occupancy sampling every `interval`.
    pub fn occupancy_every(mut self, interval: SimDuration) -> Self {
        self.occupancy_interval = Some(interval);
        self
    }

    /// Human-readable scheme label (`refresh+A-LFU_3+longttl3d`, …); see
    /// [`scheme_label`].
    pub fn label(&self) -> String {
        scheme_label(&self.resolver, self.long_ttl)
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Summary of one finished run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme label.
    pub scheme: String,
    /// Trace label.
    pub trace: String,
    /// Final counters.
    pub metrics: ResolverMetrics,
    /// Occupancy series (empty unless sampling was enabled).
    pub occupancy: Vec<OccupancySample>,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: {}", self.scheme, self.trace, self.metrics)
    }
}

/// A deterministic trace replay: one caching server resolving a trace's
/// queries against the universe's server farm, with renewal timers firing
/// between queries.
///
/// Replay can be paused at any virtual time ([`Simulation::run_until`])
/// and forked ([`Simulation::fork`]); the attack-duration sweeps share a
/// single warmed-up simulation this way.
#[derive(Debug, Clone)]
pub struct Simulation<B: CacheBackend = LocalBackend> {
    config: SimConfig,
    cs: CachingServer<B>,
    net: SimNet,
    trace: Arc<Trace>,
    pos: usize,
    now: SimTime,
    occupancy: Vec<OccupancySample>,
    next_occupancy: Option<SimTime>,
    next_purge: SimTime,
}

impl Simulation {
    /// Builds a simulation: materialises the farm (applying any long-TTL
    /// override) and seeds the resolver with the universe's root hints.
    pub fn new(universe: &Universe, trace: Trace, config: SimConfig) -> Self {
        let farm = ServerFarm::build(universe, config.long_ttl);
        Simulation::with_farm(farm, universe, trace, config)
    }

    /// Like [`Simulation::new`] but reuses an already-built farm — farm
    /// construction dominates setup cost, so sweeps that run many schemes
    /// over the same universe build each farm once and clone it here.
    ///
    /// The caller is responsible for passing a farm built with the same
    /// `long_ttl` as `config` (see [`ServerFarm::build`]); the label and
    /// behaviour diverge otherwise.
    pub fn with_farm(
        farm: ServerFarm,
        universe: &Universe,
        trace: Trace,
        config: SimConfig,
    ) -> Self {
        Simulation::shared(Arc::new(farm), universe, Arc::new(trace), config)
    }

    /// The zero-copy constructor behind the sweep engine: both the farm
    /// and the trace are immutable during replay, so concurrent runs over
    /// the same universe share one allocation of each instead of cloning.
    ///
    /// As with [`Simulation::with_farm`], the farm must have been built
    /// with the same `long_ttl` as `config`.
    pub fn shared(
        farm: Arc<ServerFarm>,
        universe: &Universe,
        trace: Arc<Trace>,
        config: SimConfig,
    ) -> Self {
        Simulation::shared_with_backend(farm, universe, trace, config, LocalBackend::new())
    }
}

impl<B: CacheBackend> Simulation<B> {
    /// Like [`Simulation::shared`], over an explicit cache backend — the
    /// entry point for replaying a trace against a shared
    /// [`ShardedCache`](dns_resolver::ShardedCache), e.g. from several
    /// threads replaying disjoint trace slices against one cache.
    pub fn shared_with_backend(
        farm: Arc<ServerFarm>,
        universe: &Universe,
        trace: Arc<Trace>,
        config: SimConfig,
        backend: B,
    ) -> Self {
        let hints = RootHints::new(universe.root_servers().to_vec());
        let cs = CachingServer::with_backend(config.resolver, hints, backend);
        let next_occupancy = config.occupancy_interval.map(|_| SimTime::ZERO);
        let next_purge = SimTime::ZERO + config.purge_interval;
        Simulation {
            config,
            cs,
            net: SimNet::with_shared(farm),
            trace,
            pos: 0,
            now: SimTime::ZERO,
            occupancy: Vec::new(),
            next_occupancy,
            next_purge,
        }
    }

    /// Installs the attack schedule (replacing any previous one).
    pub fn set_attack(&mut self, attack: CompiledAttack) {
        self.net.set_attack(attack);
    }

    /// Enables deterministic random packet loss on the simulated network
    /// (see [`SimNet::set_loss`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn set_loss(&mut self, rate: f64, seed: u64) {
        self.net.set_loss(rate, seed);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Resolver counters so far.
    pub fn metrics(&self) -> ResolverMetrics {
        *self.cs.metrics()
    }

    /// The caching server under test.
    pub fn cs(&self) -> &CachingServer<B> {
        &self.cs
    }

    /// Mutable access to the caching server (occupancy sampling advances
    /// cache expiry heaps, so it needs `&mut`).
    pub fn cs_mut(&mut self) -> &mut CachingServer<B> {
        &mut self.cs
    }

    /// The simulated network.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Queries processed so far.
    pub fn processed(&self) -> usize {
        self.pos
    }

    /// Occupancy samples collected so far.
    pub fn occupancy(&self) -> &[OccupancySample] {
        &self.occupancy
    }

    /// Drains the Figure-3 gap samples collected so far.
    pub fn take_gap_samples(&mut self) -> Vec<GapSample> {
        self.cs.take_gap_samples()
    }

    /// An independent copy sharing the (immutable) trace — used to sweep
    /// attack durations from one warmed-up state.
    pub fn fork(&self) -> Simulation<B>
    where
        B: Clone,
    {
        self.clone()
    }

    /// Replays all queries with `at < until`, firing due renewal timers,
    /// occupancy samples and purges in timestamp order, then advances the
    /// clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while self.pos < self.trace.queries.len() {
            let at = self.trace.queries[self.pos].at;
            if at >= until {
                break;
            }
            self.advance_background(at);
            let question = self.trace.queries[self.pos].question.clone();
            self.cs.resolve(&question, at, &mut self.net);
            self.now = at;
            self.pos += 1;
        }
        self.advance_background(until);
        self.now = until;
    }

    /// Replays the remainder of the trace.
    pub fn run_to_end(&mut self) {
        let horizon = SimTime::from_days(self.trace.days);
        let last = self.trace.queries.last().map(|q| q.at).unwrap_or(horizon);
        self.run_until(last.max(horizon) + SimDuration::from_secs(1));
    }

    /// Produces the run summary.
    pub fn report(&self) -> SimReport {
        SimReport {
            scheme: self.config.label(),
            trace: self.trace.name.clone(),
            metrics: self.metrics(),
            occupancy: self.occupancy.clone(),
        }
    }

    /// Fires every background event (renewal, occupancy sample, purge) due
    /// at or before `t`, each at its own virtual time.
    fn advance_background(&mut self, t: SimTime) {
        loop {
            let next_marker = [Some(self.next_purge), self.next_occupancy]
                .into_iter()
                .flatten()
                .filter(|&m| m <= t)
                .min();
            let Some(marker) = next_marker else {
                self.cs.run_renewals_until(t, &mut self.net);
                return;
            };
            self.cs.run_renewals_until(marker, &mut self.net);
            if self.next_occupancy == Some(marker) {
                self.occupancy.push(self.cs.occupancy(marker));
                let interval = self
                    .config
                    .occupancy_interval
                    .expect("sampling enabled if scheduled");
                self.next_occupancy = Some(marker + interval);
            }
            if self.next_purge == marker {
                self.cs.purge(marker);
                self.next_purge = marker + self.config.purge_interval;
            }
        }
    }
}

impl<B: CacheBackend> fmt::Display for Simulation<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation {} on {} at {} ({}/{} queries)",
            self.config.label(),
            self.trace.name,
            self.now,
            self.pos,
            self.trace.queries.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackScenario;
    use dns_resolver::RenewalPolicy;
    use dns_trace::{TraceSpec, UniverseSpec};

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    fn small_trace(u: &Universe) -> Trace {
        TraceSpec::demo().scaled(0.1).generate(u, 5)
    }

    #[test]
    fn replay_processes_every_query() {
        let u = universe();
        let t = small_trace(&u);
        let n = t.queries.len();
        let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        sim.run_to_end();
        assert_eq!(sim.processed(), n);
        assert_eq!(sim.metrics().queries_in, n as u64);
        // Without an attack nothing fails.
        assert_eq!(sim.metrics().failed_in, 0);
    }

    #[test]
    fn run_until_is_incremental() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        sim.run_until(SimTime::from_days(3));
        let mid = sim.processed();
        assert!(mid > 0);
        sim.run_to_end();
        assert!(sim.processed() > mid);
    }

    #[test]
    fn deterministic_replay() {
        let u = universe();
        let t = small_trace(&u);
        let run = || {
            let mut sim = Simulation::new(&u, t.clone(), SimConfig::new(ResolverConfig::vanilla()));
            sim.run_to_end();
            sim.metrics()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fork_diverges_independently() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        sim.run_until(SimTime::from_days(6));
        let mut attacked = sim.fork();
        attacked.set_attack(
            AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(24))
                .compile(&u),
        );
        sim.run_to_end();
        attacked.run_to_end();
        assert_eq!(sim.metrics().failed_in, 0);
        assert!(attacked.metrics().failed_in > 0);
        assert!(attacked.metrics().failed_in < attacked.metrics().queries_in);
    }

    #[test]
    fn attack_increases_failures_and_schemes_reduce_them() {
        let u = universe();
        let t = small_trace(&u);
        let attack =
            AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(12));
        let run = |config: SimConfig| {
            let mut sim = Simulation::new(&u, t.clone(), config);
            sim.set_attack(attack.compile(&u));
            sim.run_until(SimTime::from_days(6));
            let before = sim.metrics();
            sim.run_until(SimTime::from_days(6) + SimDuration::from_hours(12));
            let window = sim.metrics() - before;
            window.failed_in_ratio()
        };
        let vanilla = run(SimConfig::new(ResolverConfig::vanilla()));
        let refresh = run(SimConfig::new(ResolverConfig::with_refresh()));
        let combined = run(SimConfig::new(ResolverConfig::with_renewal(
            RenewalPolicy::adaptive_lfu(3),
        ))
        .long_ttl(Ttl::from_days(3)));
        assert!(vanilla > 0.0, "vanilla must fail under attack");
        assert!(refresh <= vanilla, "refresh {refresh} vs vanilla {vanilla}");
        assert!(
            combined < vanilla,
            "combined {combined} vs vanilla {vanilla}"
        );
    }

    #[test]
    fn occupancy_sampling_produces_series() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(
            &u,
            t,
            SimConfig::new(ResolverConfig::vanilla()).occupancy_every(SimDuration::from_days(1)),
        );
        sim.run_to_end();
        // Sampled at 0,1,…,7 days.
        assert_eq!(sim.occupancy().len(), 8);
        assert!(sim.occupancy().windows(2).all(|w| w[0].at < w[1].at));
        // Caches fill up over the warm-up.
        assert!(sim.occupancy().last().unwrap().zones > sim.occupancy()[0].zones);
    }

    #[test]
    fn report_carries_labels() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(
            &u,
            t,
            SimConfig::new(ResolverConfig::with_refresh()).long_ttl(Ttl::from_days(3)),
        );
        sim.run_until(SimTime::from_days(1));
        let report = sim.report();
        assert_eq!(report.scheme, "refresh+longttl3d");
        assert_eq!(report.trace, "DEMO");
    }
}
