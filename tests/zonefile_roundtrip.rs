//! Master-file round trips over generated zones: every zone the universe
//! generator produces must export to text and re-import as a zone that
//! answers queries identically.

use dns_resilience::auth::AuthServer;
use dns_resilience::core::zonefile::parse_zone;
use dns_resilience::core::{Message, Question, RecordType, Zone};
use dns_resilience::trace::UniverseSpec;
use std::net::Ipv4Addr;

fn answers_match(a: &Zone, b: &Zone, qname: &dns_resilience::core::Name, rtype: RecordType) {
    let mut sa = AuthServer::new("t.test".parse().unwrap(), Ipv4Addr::LOCALHOST);
    sa.add_zone(a.clone());
    let mut sb = AuthServer::new("t.test".parse().unwrap(), Ipv4Addr::LOCALHOST);
    sb.add_zone(b.clone());
    let q = Message::query(1, Question::new(qname.clone(), rtype));
    let ra = sa.handle_query(&q);
    let rb = sb.handle_query(&q);
    assert_eq!(ra.header.rcode, rb.header.rcode, "{qname} {rtype}");
    assert_eq!(ra.kind(), rb.kind(), "{qname} {rtype}");
    // Compare answer/authority/additional as unordered sets.
    for (sec_a, sec_b) in [
        (&ra.answers, &rb.answers),
        (&ra.authorities, &rb.authorities),
        (&ra.additionals, &rb.additionals),
    ] {
        let mut xa: Vec<String> = sec_a.iter().map(|r| r.to_string()).collect();
        let mut xb: Vec<String> = sec_b.iter().map(|r| r.to_string()).collect();
        xa.sort();
        xb.sort();
        assert_eq!(xa, xb, "{qname} {rtype}");
    }
}

#[test]
fn generated_zones_roundtrip_through_master_files() {
    let mut spec = UniverseSpec::small_signed();
    spec.sld_count = 200;
    spec.tld_count = 10;
    let u = spec.build(13);

    let mut tested = 0;
    for zone_spec in u.zones().iter().step_by(17) {
        let zone = u.build_zone(zone_spec);
        let text = zone.to_zone_file();
        let back = parse_zone(&text)
            .unwrap_or_else(|e| panic!("zone {} failed to re-parse: {e}", zone_spec.apex));

        // The re-parsed zone must answer every interesting query the
        // same way: data names, aliases, apex NS/MX/DNSKEY, a missing
        // name, and a delegated name.
        for (name, _) in &zone_spec.data_names {
            answers_match(&zone, &back, name, RecordType::A);
        }
        for (alias, _, _) in &zone_spec.cnames {
            answers_match(&zone, &back, alias, RecordType::A);
        }
        answers_match(&zone, &back, &zone_spec.apex, RecordType::Ns);
        answers_match(&zone, &back, &zone_spec.apex, RecordType::Mx);
        answers_match(&zone, &back, &zone_spec.apex, RecordType::Dnskey);
        let nx_label = dns_resilience::core::Label::new(b"nx0").unwrap();
        let missing = zone_spec.apex.child(nx_label).unwrap();
        answers_match(&zone, &back, &missing, RecordType::A);
        for child in u.children_of(&zone_spec.apex) {
            let www = dns_resilience::core::Label::new(b"www").unwrap();
            let deep = child.apex.child(www).unwrap();
            answers_match(&zone, &back, &deep, RecordType::A);
            answers_match(&zone, &back, &child.apex, RecordType::Ds);
        }
        tested += 1;
    }
    assert!(tested >= 10, "tested only {tested} zones");
}
