/root/repo/target/debug/deps/proptest-7088a38a6a91b70d.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7088a38a6a91b70d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7088a38a6a91b70d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
