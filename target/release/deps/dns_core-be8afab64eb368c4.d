/root/repo/target/release/deps/dns_core-be8afab64eb368c4.d: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs

/root/repo/target/release/deps/libdns_core-be8afab64eb368c4.rlib: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs

/root/repo/target/release/deps/libdns_core-be8afab64eb368c4.rmeta: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs

crates/dns-core/src/lib.rs:
crates/dns-core/src/clock.rs:
crates/dns-core/src/error.rs:
crates/dns-core/src/message.rs:
crates/dns-core/src/name.rs:
crates/dns-core/src/rr.rs:
crates/dns-core/src/wire.rs:
crates/dns-core/src/zone.rs:
crates/dns-core/src/zonefile.rs:
