//! Tabular rendering of experiment-engine run manifests.
//!
//! The sweep engine in `dns-sim` records one row per run unit (wall
//! clock, queries replayed, events processed, cache-occupancy peak,
//! worker id, seed). This module turns those rows into a [`Table`] so
//! every bench binary prints and exports the same manifest format.

use crate::table::Table;

/// One run unit of a sweep, in the engine's stable spec order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRow {
    /// Position in spec order (0-based).
    pub unit: usize,
    /// Unit kind (`attack` or `overhead`).
    pub kind: String,
    /// Trace label.
    pub trace: String,
    /// Scheme label.
    pub scheme: String,
    /// Simulation runs inside the unit (one per attack duration).
    pub runs: usize,
    /// Wall-clock time spent on the unit, in milliseconds.
    pub wall_ms: u64,
    /// Trace queries replayed.
    pub queries: u64,
    /// Simulator events processed (queries in + out, refreshes,
    /// renewals).
    pub events: u64,
    /// Peak cached-record count observed.
    pub peak_records: u64,
    /// Process peak resident set (KiB) when the unit finished.
    pub peak_rss_kb: u64,
    /// Id of the worker thread that executed the unit.
    pub worker: usize,
    /// RNG seed the unit ran with.
    pub seed: u64,
    /// Median modelled resolution latency over the unit's measured
    /// windows, in virtual milliseconds.
    pub lat_p50_ms: u64,
    /// 90th-percentile modelled resolution latency, virtual ms.
    pub lat_p90_ms: u64,
    /// 99th-percentile modelled resolution latency, virtual ms.
    pub lat_p99_ms: u64,
    /// NS-address fetches clamped by the MaxFetch(k) defense.
    pub fetches_clamped: u64,
    /// Queries refused by flood damping (inflight caps / refused
    /// negative-cache storage).
    pub flood_suppressed: u64,
    /// Negative-cache evictions forced by budget pressure.
    pub neg_evictions_pressure: u64,
    /// Expired answers served inside the stale window (RFC 8767).
    pub stale_served: u64,
    /// Failed lookups whose stale candidate had aged past the window.
    pub stale_expired_unserved: u64,
    /// Proactive refreshes issued ahead of expiry.
    pub refresh_ahead: u64,
    /// Predictive prefetches issued by the inter-arrival learner.
    pub prefetch_issued: u64,
    /// Prefetched names whose next query hit fresh cache.
    pub prefetch_hits: u64,
    /// Prefetched names whose next query still missed.
    pub prefetch_wasted: u64,
}

/// Column headers of the manifest table, shared with its CSV form.
pub const MANIFEST_HEADERS: [&str; 24] = [
    "unit",
    "kind",
    "trace",
    "scheme",
    "runs",
    "wall_ms",
    "queries",
    "events",
    "peak_records",
    "peak_rss_kb",
    "worker",
    "seed",
    "lat_p50_ms",
    "lat_p90_ms",
    "lat_p99_ms",
    "fetches_clamped",
    "flood_suppressed",
    "neg_evict",
    "stale_served",
    "stale_unserved",
    "refresh_ahead",
    "prefetch_issued",
    "prefetch_hits",
    "prefetch_wasted",
];

/// Builds the manifest summary table (also used for `run_manifest.csv`).
pub fn manifest_table(rows: &[ManifestRow]) -> Table {
    let mut table = Table::new(MANIFEST_HEADERS.to_vec());
    table.numeric();
    for r in rows {
        table.row(vec![
            r.unit.to_string(),
            r.kind.clone(),
            r.trace.clone(),
            r.scheme.clone(),
            r.runs.to_string(),
            r.wall_ms.to_string(),
            r.queries.to_string(),
            r.events.to_string(),
            r.peak_records.to_string(),
            r.peak_rss_kb.to_string(),
            r.worker.to_string(),
            r.seed.to_string(),
            r.lat_p50_ms.to_string(),
            r.lat_p90_ms.to_string(),
            r.lat_p99_ms.to_string(),
            r.fetches_clamped.to_string(),
            r.flood_suppressed.to_string(),
            r.neg_evictions_pressure.to_string(),
            r.stale_served.to_string(),
            r.stale_expired_unserved.to_string(),
            r.refresh_ahead.to_string(),
            r.prefetch_issued.to_string(),
            r.prefetch_hits.to_string(),
            r.prefetch_wasted.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(unit: usize) -> ManifestRow {
        ManifestRow {
            unit,
            kind: "attack".into(),
            trace: "UCLA".into(),
            scheme: "vanilla".into(),
            runs: 4,
            wall_ms: 1200,
            queries: 50_000,
            events: 180_000,
            peak_records: 900,
            peak_rss_kb: 45_000,
            worker: 0,
            seed: 42,
            lat_p50_ms: 40,
            lat_p90_ms: 1_087,
            lat_p99_ms: 2_047,
            fetches_clamped: 12,
            flood_suppressed: 3,
            neg_evictions_pressure: 7,
            stale_served: 5,
            stale_expired_unserved: 2,
            refresh_ahead: 9,
            prefetch_issued: 4,
            prefetch_hits: 3,
            prefetch_wasted: 1,
        }
    }

    #[test]
    fn table_has_one_row_per_unit_plus_headers() {
        let t = manifest_table(&[row(0), row(1)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.headers().len(), MANIFEST_HEADERS.len());
        let csv = t.to_csv();
        assert!(csv.starts_with("unit,kind,trace,scheme"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn renders_without_panicking() {
        let rendered = manifest_table(&[row(0)]).render();
        assert!(rendered.contains("vanilla"));
        assert!(rendered.contains("1200"));
    }
}
