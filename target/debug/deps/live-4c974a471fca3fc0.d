/root/repo/target/debug/deps/live-4c974a471fca3fc0.d: crates/dns-netd/tests/live.rs Cargo.toml

/root/repo/target/debug/deps/liblive-4c974a471fca3fc0.rmeta: crates/dns-netd/tests/live.rs Cargo.toml

crates/dns-netd/tests/live.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
