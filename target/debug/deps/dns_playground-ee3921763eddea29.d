/root/repo/target/debug/deps/dns_playground-ee3921763eddea29.d: crates/dns-netd/src/bin/dns-playground.rs

/root/repo/target/debug/deps/dns_playground-ee3921763eddea29: crates/dns-netd/src/bin/dns-playground.rs

crates/dns-netd/src/bin/dns-playground.rs:
