/root/repo/target/debug/deps/dns_resolver-98694fd2d61fb89d.d: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/debug/deps/libdns_resolver-98694fd2d61fb89d.rlib: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/debug/deps/libdns_resolver-98694fd2d61fb89d.rmeta: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/upstream.rs

crates/dns-resolver/src/lib.rs:
crates/dns-resolver/src/cache.rs:
crates/dns-resolver/src/config.rs:
crates/dns-resolver/src/dnssec.rs:
crates/dns-resolver/src/infra.rs:
crates/dns-resolver/src/metrics.rs:
crates/dns-resolver/src/policy.rs:
crates/dns-resolver/src/resolve.rs:
crates/dns-resolver/src/upstream.rs:
