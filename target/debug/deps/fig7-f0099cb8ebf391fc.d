/root/repo/target/debug/deps/fig7-f0099cb8ebf391fc.d: crates/dns-bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-f0099cb8ebf391fc.rmeta: crates/dns-bench/src/bin/fig7.rs Cargo.toml

crates/dns-bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
