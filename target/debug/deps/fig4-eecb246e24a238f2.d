/root/repo/target/debug/deps/fig4-eecb246e24a238f2.d: crates/dns-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-eecb246e24a238f2: crates/dns-bench/src/bin/fig4.rs

crates/dns-bench/src/bin/fig4.rs:
