//! The recursive resolver daemon: a [`CachingServer`] behind a UDP
//! socket, resolving through real upstream sockets in wall-clock time.

use crate::wall_clock;
use dns_core::{wire, Message, RData, Rcode, Record, RecordClass, RecordType, Ttl};
use dns_obs::{HistId, LogHistogram, Registry};
use dns_resolver::{
    CacheBackend, CachingServer, LocalBackend, Outcome, ResolverConfig, ResolverMetrics, RootHints,
    ShardedCache, Upstream,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Owner name answered with a metrics snapshot for `CHAOS TXT` queries
/// (the `version.bind.` convention, for metrics).
pub const CHAOS_METRICS_NAME: &str = "metrics.bind";

/// Daemon-side counters: what happened between the socket and the
/// resolver (the resolver's own counters live in
/// [`dns_resolver::ResolverMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Responses successfully sent back to clients.
    pub served: u64,
    /// Responses that could not be sent (socket-level send errors).
    pub send_errors: u64,
    /// Responses too large for the wire that were downgraded to a
    /// TC-bit truncated reply instead of being silently dropped.
    pub truncated_responses: u64,
}

impl fmt::Display for DaemonStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} served, {} send errors, {} truncated",
            self.served, self.send_errors, self.truncated_responses
        )
    }
}

/// Health state shared by the worker pool: the first non-timeout socket
/// error flips the flag and is retained for inspection, instead of a
/// worker dying silently.
#[derive(Debug, Default)]
struct Health {
    failed: AtomicBool,
    last_error: Mutex<Option<String>>,
}

impl Health {
    fn record(&self, context: &str, e: &io::Error) {
        self.failed.store(true, Ordering::Relaxed);
        *self.last_error.lock().unwrap() = Some(format!("{context}: {e}"));
    }
}

/// Daemon-side observability shared by the worker pool: wall-clock
/// latency per resolution (the resolver's own histogram models
/// *virtual* latency; this one measures real elapsed time including
/// cache-lock contention).
#[derive(Debug)]
struct DaemonObs {
    registry: Registry,
    wall_latency: HistId,
}

impl DaemonObs {
    fn new() -> Self {
        let mut registry = Registry::new();
        let wall_latency = registry.histogram(
            "wall_latency_ms",
            "Wall-clock resolution latency per client query in milliseconds",
        );
        DaemonObs {
            registry,
            wall_latency,
        }
    }

    fn observe_wall(&mut self, ms: u64) {
        self.registry.observe(self.wall_latency, ms);
    }

    fn wall_histogram(&self) -> &dns_obs::LogHistogram {
        self.registry.hist(self.wall_latency)
    }
}

/// A running recursive resolver daemon.
///
/// Clients send standard DNS queries; the daemon resolves them through
/// its [`CachingServer`] (all resilience schemes apply — the cache is the
/// same code the simulator evaluates) and answers with the outcome:
/// answers as-is, NXDOMAIN/NODATA as negative responses, and resolution
/// failure as SERVFAIL.
///
/// The daemon runs a small worker pool ([`Resolved::spawn_pool`]): every
/// worker blocks on a clone of the same UDP socket (the kernel delivers
/// each datagram to exactly one) and owns its own upstream transport, so
/// decoding, encoding and socket I/O overlap across workers. In the
/// default mode one [`CachingServer`] sits behind one mutex and workers
/// serialize whole resolutions through it; in sharded mode
/// ([`Resolved::spawn_sharded`]) every worker owns its *own* resolver
/// over one shared [`ShardedCache`], so resolutions proceed concurrently
/// and contend only per cache shard, with single-flight coalescing
/// deduplicating identical in-flight fetches across the pool. A worker
/// that hits a fatal socket error records it ([`Resolved::last_error`])
/// and drops out, flipping [`Resolved::healthy`] — the daemon degrades
/// visibly instead of dying silently.
#[derive(Debug)]
pub struct Resolved<B: CacheBackend = LocalBackend> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    send_errors: Arc<AtomicU64>,
    truncated: Arc<AtomicU64>,
    health: Arc<Health>,
    /// The pool's resolvers: a single shared entry in default mode, one
    /// per worker in sharded mode (worker `i` resolves through
    /// `servers[i % len]`).
    servers: Arc<Vec<Arc<Mutex<CachingServer<B>>>>>,
    obs: Arc<Mutex<DaemonObs>>,
}

impl Resolved {
    /// Binds `bind` and starts resolving through `upstream` with a single
    /// worker.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn spawn<U>(
        cs: CachingServer,
        upstream: U,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved>
    where
        U: Upstream + Send + 'static,
    {
        Resolved::spawn_pool(cs, vec![upstream], bind)
    }

    /// Binds `bind` and starts one worker per upstream in `upstreams`
    /// (each worker owns its transport; the caller decides the pool
    /// size). All workers share `cs` behind one lock.
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding/cloning, and
    /// `InvalidInput` when `upstreams` is empty.
    pub fn spawn_pool<U>(
        cs: CachingServer,
        upstreams: Vec<U>,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved>
    where
        U: Upstream + Send + 'static,
    {
        Resolved::spawn_servers(vec![cs], upstreams, bind)
    }
}

impl Resolved<ShardedCache> {
    /// Binds `bind` and starts one worker per upstream, every worker
    /// owning its own [`CachingServer`] over one shared [`ShardedCache`]
    /// built from `config` (`config.shards` shards, coalescing per
    /// `config.coalesce`). Worker seeds are derived from `config.seed`
    /// (`seed + worker index`) so query-ID streams stay per-worker
    /// deterministic yet distinct.
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding/cloning, and
    /// `InvalidInput` when `upstreams` is empty.
    pub fn spawn_sharded<U>(
        config: ResolverConfig,
        hints: RootHints,
        upstreams: Vec<U>,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved<ShardedCache>>
    where
        U: Upstream + Send + 'static,
    {
        let backend = ShardedCache::new(config.shards);
        let servers = (0..upstreams.len().max(1))
            .map(|i| {
                let config = config.to_builder().seed(config.seed + i as u64).build();
                CachingServer::with_backend(config, hints.clone(), backend.clone())
            })
            .collect();
        Resolved::spawn_servers(servers, upstreams, bind)
    }

    /// The shared sharded backend (coalescing counters, shard registry).
    pub fn sharded_backend(&self) -> ShardedCache {
        self.servers[0].lock().unwrap().backend().clone()
    }
}

impl<B: CacheBackend + Send + 'static> Resolved<B> {
    /// The common pool bring-up: `servers` is either a single resolver
    /// shared by every worker (default mode) or one per upstream
    /// (sharded mode).
    fn spawn_servers<U>(
        servers: Vec<CachingServer<B>>,
        upstreams: Vec<U>,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved<B>>
    where
        U: Upstream + Send + 'static,
    {
        if upstreams.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "worker pool needs at least one upstream",
            ));
        }
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let send_errors = Arc::new(AtomicU64::new(0));
        let truncated = Arc::new(AtomicU64::new(0));
        let health = Arc::new(Health::default());
        let servers: Arc<Vec<Arc<Mutex<CachingServer<B>>>>> = Arc::new(
            servers
                .into_iter()
                .map(|cs| Arc::new(Mutex::new(cs)))
                .collect(),
        );
        let obs = Arc::new(Mutex::new(DaemonObs::new()));

        let mut workers = Vec::with_capacity(upstreams.len());
        for (i, upstream) in upstreams.into_iter().enumerate() {
            let socket = socket.try_clone()?;
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let send_errors = Arc::clone(&send_errors);
            let truncated = Arc::clone(&truncated);
            let health = Arc::clone(&health);
            let servers = Arc::clone(&servers);
            let obs = Arc::clone(&obs);
            let handle = std::thread::Builder::new()
                .name(format!("resolved-{addr}-w{i}"))
                .spawn(move || {
                    Self::worker_loop(
                        socket,
                        upstream,
                        &stop,
                        &served,
                        &send_errors,
                        &truncated,
                        &health,
                        &servers,
                        i,
                        &obs,
                    )
                })
                .expect("spawn resolved worker");
            workers.push(handle);
        }
        Ok(Resolved {
            addr,
            stop,
            workers,
            served,
            send_errors,
            truncated,
            health,
            servers,
            obs,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop<U: Upstream>(
        socket: UdpSocket,
        mut upstream: U,
        stop: &AtomicBool,
        served: &AtomicU64,
        send_errors: &AtomicU64,
        truncated: &AtomicU64,
        health: &Health,
        servers: &[Arc<Mutex<CachingServer<B>>>],
        index: usize,
        obs: &Mutex<DaemonObs>,
    ) {
        let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
        while !stop.load(Ordering::Relaxed) {
            let (len, peer) = match socket.recv_from(&mut buf) {
                Ok(x) => x,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => {
                    // Fatal receive error: surface it and retire this
                    // worker instead of dying without a trace.
                    health.record("recv", &e);
                    break;
                }
            };
            let Ok(query) = wire::decode(&buf[..len]) else {
                continue;
            };
            let stats = DaemonStats {
                served: served.load(Ordering::Relaxed),
                send_errors: send_errors.load(Ordering::Relaxed),
                truncated_responses: truncated.load(Ordering::Relaxed),
            };
            let response = Self::answer(servers, index, &mut upstream, obs, stats, &query);
            let Some(bytes) = encode_or_truncate(&query, &response, truncated) else {
                continue; // not even the header+question fits — drop
            };
            // Count `served` only when the reply actually left the socket.
            match socket.send_to(&bytes, peer) {
                Ok(_) => {
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    send_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn answer<U: Upstream>(
        servers: &[Arc<Mutex<CachingServer<B>>>],
        index: usize,
        upstream: &mut U,
        obs: &Mutex<DaemonObs>,
        stats: DaemonStats,
        query: &Message,
    ) -> Message {
        let mut resp = Message::response_to(query);
        resp.header.recursion_available = true;
        let Some(question) = query.question().cloned() else {
            resp.header.rcode = Rcode::FormErr;
            return resp;
        };
        if question.class == RecordClass::Ch {
            return Self::answer_chaos(servers, obs, stats, resp, &question);
        }
        let start = Instant::now();
        let now = wall_clock();
        let cs = &servers[index % servers.len()];
        let outcome = cs.lock().unwrap().resolve(&question, now, upstream);
        let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        obs.lock().unwrap().observe_wall(wall_ms);
        match outcome {
            Outcome::Answer { records, .. } => {
                resp.answers = records;
            }
            Outcome::NxDomain { .. } => resp.header.rcode = Rcode::NxDomain,
            Outcome::NoData { .. } => {}
            Outcome::Fail => resp.header.rcode = Rcode::ServFail,
        }
        resp
    }

    /// Answers `CHAOS`-class queries: `TXT metrics.bind.` dumps the
    /// daemon's metrics snapshot (one TXT string per metric line, the
    /// `version.bind.` convention); everything else is REFUSED. With
    /// multiple resolvers (sharded mode) counters are summed and
    /// latency histograms merged across the pool, and the shared
    /// backend's own registry (shard counters, coalescing totals) is
    /// appended.
    fn answer_chaos(
        servers: &[Arc<Mutex<CachingServer<B>>>],
        obs: &Mutex<DaemonObs>,
        stats: DaemonStats,
        mut resp: Message,
        question: &dns_core::Question,
    ) -> Message {
        let metrics_name: dns_core::Name = CHAOS_METRICS_NAME.parse().expect("static name");
        if question.rtype != RecordType::Txt || question.name != metrics_name {
            resp.header.rcode = Rcode::Refused;
            return resp;
        }
        let (metrics, latency, backend_reg) = pool_snapshot(servers);
        let snapshot = {
            let obs = obs.lock().unwrap();
            metrics_registry(stats, &metrics, &latency, &obs)
        };
        let mut push_txt = |line: String| {
            resp.answers.push(Record::with_class(
                question.name.clone(),
                RecordClass::Ch,
                Ttl::ZERO,
                RData::Txt(line),
            ));
        };
        for line in snapshot.render_compact() {
            push_txt(line);
        }
        if let Some(reg) = backend_reg {
            for line in reg.render_compact() {
                push_txt(line);
            }
        }
        resp
    }
}

impl<B: CacheBackend> Resolved<B> {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client queries served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Number of workers the pool started with.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// `false` once any worker has hit a fatal socket error.
    pub fn healthy(&self) -> bool {
        !self.health.failed.load(Ordering::Relaxed)
    }

    /// The first fatal error a worker recorded, if any.
    pub fn last_error(&self) -> Option<String> {
        self.health.last_error.lock().unwrap().clone()
    }

    /// Daemon-side counters (socket-level; resolver counters are in
    /// [`Resolved::metrics`]).
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            served: self.served.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            truncated_responses: self.truncated.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the resolver's counters, summed over every resolver
    /// in the pool (a single resolver in default mode).
    pub fn metrics(&self) -> dns_resolver::ResolverMetrics {
        self.servers
            .iter()
            .map(|s| *s.lock().unwrap().metrics())
            .fold(ResolverMetrics::default(), |acc, m| acc + m)
    }

    /// Prometheus-text snapshot of every daemon and resolver metric —
    /// the same registry the `CHAOS TXT metrics.bind.` answer renders in
    /// compact form. In sharded mode the pool's counters are summed,
    /// latency histograms merged, and the shared backend's registry
    /// (shard counters, coalescing totals) appended.
    pub fn prometheus(&self) -> String {
        let stats = self.stats();
        let (metrics, latency, backend_reg) = pool_snapshot(&self.servers);
        let obs = self.obs.lock().unwrap();
        let mut out = metrics_registry(stats, &metrics, &latency, &obs).render_prometheus();
        drop(obs);
        if let Some(reg) = backend_reg {
            out.push_str(&reg.render_prometheus());
        }
        out
    }

    /// Turns on per-query tracing in every resolver of the pool; the
    /// most recent query's trace is readable via
    /// [`Resolved::explain_last`].
    pub fn enable_trace(&self) {
        for s in self.servers.iter() {
            s.lock().unwrap().obs_mut().enable_trace();
        }
    }

    /// Renders the most recent resolution's trace, when tracing is on
    /// and at least one query has been resolved. With a worker pool the
    /// first worker holding a non-empty trace wins.
    pub fn explain_last(&self) -> Option<String> {
        for s in self.servers.iter() {
            let cs = s.lock().unwrap();
            if let Some(trace) = cs.obs().trace() {
                if !trace.is_empty() {
                    return Some(trace.explain());
                }
            }
        }
        None
    }

    /// Stops the daemon and joins every worker thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<B: CacheBackend> Drop for Resolved<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<B: CacheBackend> fmt::Display for Resolved<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resolved on {} ({} workers, {} served{})",
            self.addr,
            self.worker_count(),
            self.served(),
            if self.healthy() { "" } else { ", UNHEALTHY" }
        )
    }
}

/// Aggregates a worker pool's resolver state: summed counters, merged
/// modelled-latency histogram, and (when the backend exposes one, i.e.
/// sharded mode) the shared backend's own registry.
fn pool_snapshot<B: CacheBackend>(
    servers: &[Arc<Mutex<CachingServer<B>>>],
) -> (ResolverMetrics, LogHistogram, Option<Registry>) {
    let mut metrics = ResolverMetrics::default();
    let mut latency = LogHistogram::default();
    let mut backend_reg = None;
    for (i, s) in servers.iter().enumerate() {
        let cs = s.lock().unwrap();
        metrics = metrics + *cs.metrics();
        latency.merge(cs.latency_histogram());
        if i == 0 {
            backend_reg = cs.backend().obs_registry();
        }
    }
    (metrics, latency, backend_reg)
}

/// Builds a one-shot [`Registry`] holding the daemon's full metric
/// surface: socket-level counters, every resolver counter, the modelled
/// (virtual-ms) resolve-latency histogram and the measured wall-clock
/// latency histogram. Rendered compact for `CHAOS TXT` answers and as
/// Prometheus text for [`Resolved::prometheus`].
fn metrics_registry(
    stats: DaemonStats,
    metrics: &ResolverMetrics,
    resolve_latency: &dns_obs::LogHistogram,
    obs: &DaemonObs,
) -> Registry {
    let mut reg = Registry::new();
    let mut set = |name: &'static str, help: &'static str, value: u64| {
        let id = reg.counter(name, help);
        reg.set(id, value);
    };
    set(
        "daemon_served",
        "Responses sent back to clients",
        stats.served,
    );
    set(
        "daemon_send_errors",
        "Responses lost to socket send errors",
        stats.send_errors,
    );
    set(
        "daemon_truncated_responses",
        "Oversized responses downgraded to TC-bit replies",
        stats.truncated_responses,
    );
    set(
        "resolver_queries_in",
        "Client queries resolved",
        metrics.queries_in,
    );
    set(
        "resolver_failed_in",
        "Client queries that ended in failure",
        metrics.failed_in,
    );
    set(
        "resolver_cache_hits",
        "Queries answered from cache",
        metrics.cache_hits,
    );
    set(
        "resolver_queries_out",
        "Upstream queries sent",
        metrics.queries_out,
    );
    set(
        "resolver_failed_out",
        "Upstream queries that got no usable response",
        metrics.failed_out,
    );
    set("resolver_referrals", "Referrals chased", metrics.referrals);
    set(
        "resolver_refreshes",
        "Proactive cache refreshes",
        metrics.refreshes,
    );
    set(
        "resolver_renewals_sent",
        "Renewal probes sent",
        metrics.renewals_sent,
    );
    set(
        "resolver_renewals_ok",
        "Renewal probes that succeeded",
        metrics.renewals_ok,
    );
    set(
        "resolver_negative_answers",
        "NXDOMAIN/NODATA answers",
        metrics.negative_answers,
    );
    set(
        "resolver_retries",
        "Upstream retransmissions",
        metrics.retries,
    );
    set(
        "resolver_backoff_wait_ms",
        "Total virtual milliseconds spent in retry backoff",
        metrics.backoff_wait_ms,
    );
    set(
        "resolver_deadline_exhausted",
        "Exchanges abandoned after the retry deadline",
        metrics.deadline_exhausted,
    );
    set(
        "resolver_mismatched_responses",
        "Responses dropped for ID/question mismatch",
        metrics.mismatched_responses,
    );
    let resolve_id = reg.histogram(
        "resolve_latency_ms",
        "Modelled resolution latency per query in virtual milliseconds",
    );
    reg.hist_mut(resolve_id).merge(resolve_latency);
    let wall_id = reg.histogram(
        "wall_latency_ms",
        "Wall-clock resolution latency per client query in milliseconds",
    );
    reg.hist_mut(wall_id).merge(obs.wall_histogram());
    reg
}

/// Encodes `response`; when it exceeds the wire limit (oversized answer
/// sets), falls back to a TC-bit truncated reply carrying just the header
/// and question, so the client learns to retry instead of timing out
/// against silence. Returns `None` only when even the fallback cannot be
/// encoded.
fn encode_or_truncate(
    query: &Message,
    response: &Message,
    truncated: &AtomicU64,
) -> Option<Vec<u8>> {
    if let Ok(bytes) = wire::encode(response) {
        return Some(bytes);
    }
    truncated.fetch_add(1, Ordering::Relaxed);
    let mut tc = Message::response_to(query);
    tc.header.recursion_available = true;
    tc.header.rcode = response.header.rcode;
    tc.header.truncated = true;
    wire::encode(&tc).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Question, RData, Record, RecordType, Ttl};
    use std::net::Ipv4Addr;

    #[test]
    fn oversized_response_degrades_to_truncated_reply() {
        let query = Message::query(9, Question::new("big.test".parse().unwrap(), RecordType::A));
        let mut response = Message::response_to(&query);
        // Far beyond MAX_MESSAGE_LEN once encoded.
        for i in 0..2_000u32 {
            response.answers.push(Record::new(
                "big.test".parse().unwrap(),
                Ttl::from_hours(1),
                RData::A(Ipv4Addr::from(i)),
            ));
        }
        assert!(wire::encode(&response).is_err(), "fixture must overflow");

        let counter = AtomicU64::new(0);
        let bytes = encode_or_truncate(&query, &response, &counter).expect("fallback encodes");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        let decoded = wire::decode(&bytes).unwrap();
        assert!(decoded.header.truncated);
        assert_eq!(decoded.header.id, 9);
        assert!(decoded.answers.is_empty());

        // A well-sized response passes through untouched.
        let small = Message::response_to(&query);
        let bytes = encode_or_truncate(&query, &small, &counter).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert!(!wire::decode(&bytes).unwrap().header.truncated);
    }

    #[test]
    fn health_records_first_error() {
        let health = Health::default();
        assert!(!health.failed.load(Ordering::Relaxed));
        health.record("recv", &io::Error::other("boom"));
        assert!(health.failed.load(Ordering::Relaxed));
        assert!(health
            .last_error
            .lock()
            .unwrap()
            .as_deref()
            .unwrap()
            .contains("boom"));
    }

    #[test]
    fn empty_pool_is_rejected() {
        struct Dead;
        impl Upstream for Dead {
            fn query(
                &mut self,
                _server: Ipv4Addr,
                _query: &Message,
                _now: dns_core::SimTime,
            ) -> Option<Message> {
                None
            }
        }
        let cs = CachingServer::new(
            dns_resolver::ResolverConfig::vanilla(),
            dns_resolver::RootHints::new(vec![(
                "a.root-servers.net".parse().unwrap(),
                Ipv4Addr::new(198, 41, 0, 4),
            )]),
        );
        let err = Resolved::spawn_pool(cs, Vec::<Dead>::new(), "127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
