/root/repo/target/release/deps/dns_trace-7a0d78a7fb1d3de3.d: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

/root/repo/target/release/deps/libdns_trace-7a0d78a7fb1d3de3.rlib: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

/root/repo/target/release/deps/libdns_trace-7a0d78a7fb1d3de3.rmeta: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

crates/dns-trace/src/lib.rs:
crates/dns-trace/src/io.rs:
crates/dns-trace/src/namespace.rs:
crates/dns-trace/src/spec.rs:
crates/dns-trace/src/trace.rs:
crates/dns-trace/src/ttl_model.rs:
crates/dns-trace/src/workload.rs:
crates/dns-trace/src/zipf.rs:
