//! A self-contained miniature internet on loopback: root, TLD and leaf
//! authoritative daemons plus the routing table that maps the synthetic
//! server addresses onto their local ports.

use crate::Authd;
use dns_auth::AuthServer;
use dns_core::{Delegation, Name, RData, Record, Ttl, ZoneBuilder};
use dns_resolver::RootHints;
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr};

/// The running playground: every daemon plus the route map.
pub struct Playground {
    /// The live daemons (dropping them stops the internet).
    pub daemons: Vec<Authd>,
    /// Synthetic server address → actual loopback socket.
    pub routes: HashMap<Ipv4Addr, SocketAddr>,
    /// Root hints for a resolver joining this internet.
    pub hints: RootHints,
}

impl Playground {
    /// The route function for [`crate::UdpUpstream::with_route`].
    pub fn route_fn(&self) -> impl Fn(Ipv4Addr) -> SocketAddr + Send + 'static {
        let routes = self.routes.clone();
        move |ip| {
            routes
                .get(&ip)
                .copied()
                // Unknown addresses route to a black hole (port 9, the
                // discard service — nothing listens there on loopback).
                .unwrap_or_else(|| SocketAddr::from(([127, 0, 0, 1], 9)))
        }
    }

    /// Synthetic addresses of the root and TLD daemons — the paper's
    /// attack surface, handy for blackout experiments
    /// ([`crate::FaultHandle::blackout`]).
    pub fn top_level_ips(&self) -> Vec<Ipv4Addr> {
        let mut ips: Vec<Ipv4Addr> = self
            .routes
            .keys()
            .filter(|ip| ip.octets()[2] <= 2)
            .copied()
            .collect();
        ips.sort();
        ips
    }

    /// Stops every daemon.
    pub fn stop(self) {
        for d in self.daemons {
            d.stop();
        }
    }
}

fn name(s: &str) -> Name {
    s.parse().expect("static names are valid")
}

/// Boots the playground: a root, the `edu` and `com` TLDs, `ucla.edu`
/// (with `www`/`web` data and a signed `cs.ucla.edu` child) and
/// `example.com`. Nine zones, six daemons, all on ephemeral loopback
/// ports.
///
/// # Errors
///
/// Returns socket-level errors from binding the daemons.
pub fn boot() -> io::Result<Playground> {
    let ip_root = Ipv4Addr::new(10, 99, 0, 1);
    let ip_edu = Ipv4Addr::new(10, 99, 1, 1);
    let ip_com = Ipv4Addr::new(10, 99, 2, 1);
    let ip_ucla = Ipv4Addr::new(10, 99, 3, 1);
    let ip_cs = Ipv4Addr::new(10, 99, 4, 1);
    let ip_example = Ipv4Addr::new(10, 99, 5, 1);

    let root_zone = ZoneBuilder::new(Name::root())
        .ns(name("a.root-servers.net"), ip_root, Ttl::from_days(7))
        .delegate(Delegation::unsigned(
            name("edu"),
            vec![name("ns.edu")],
            Ttl::from_days(2),
            vec![Record::new(
                name("ns.edu"),
                Ttl::from_days(2),
                RData::A(ip_edu),
            )],
        ))
        .delegate(Delegation::unsigned(
            name("com"),
            vec![name("ns.com")],
            Ttl::from_days(2),
            vec![Record::new(
                name("ns.com"),
                Ttl::from_days(2),
                RData::A(ip_com),
            )],
        ))
        .build()
        .expect("static zone");

    let edu_zone = ZoneBuilder::new(name("edu"))
        .ns(name("ns.edu"), ip_edu, Ttl::from_days(2))
        .delegate(Delegation::unsigned(
            name("ucla.edu"),
            vec![name("ns1.ucla.edu")],
            Ttl::from_hours(12),
            vec![Record::new(
                name("ns1.ucla.edu"),
                Ttl::from_hours(12),
                RData::A(ip_ucla),
            )],
        ))
        .build()
        .expect("static zone");

    let com_zone = ZoneBuilder::new(name("com"))
        .ns(name("ns.com"), ip_com, Ttl::from_days(2))
        .delegate(Delegation::unsigned(
            name("example.com"),
            vec![name("ns1.example.com")],
            Ttl::from_days(1),
            vec![Record::new(
                name("ns1.example.com"),
                Ttl::from_days(1),
                RData::A(ip_example),
            )],
        ))
        .build()
        .expect("static zone");

    let cs_key: (u16, u32) = (257, 0xC0FF_EE00);
    let ucla_zone = ZoneBuilder::new(name("ucla.edu"))
        .ns(name("ns1.ucla.edu"), ip_ucla, Ttl::from_hours(12))
        .a(
            name("www.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 80),
            Ttl::from_hours(4),
        )
        .record(Record::new(
            name("web.ucla.edu"),
            Ttl::from_hours(4),
            RData::Cname(name("www.ucla.edu")),
        ))
        .delegate(Delegation {
            child: name("cs.ucla.edu"),
            ns_names: vec![name("ns.cs.ucla.edu")],
            ns_ttl: Ttl::from_hours(6),
            glue: vec![Record::new(
                name("ns.cs.ucla.edu"),
                Ttl::from_hours(6),
                RData::A(ip_cs),
            )],
            ds: vec![Record::new(
                name("cs.ucla.edu"),
                Ttl::from_hours(6),
                RData::Ds {
                    key_tag: cs_key.0,
                    digest: dns_core::synthetic_key_digest(cs_key.1),
                },
            )],
        })
        .build()
        .expect("static zone");

    let cs_zone = ZoneBuilder::new(name("cs.ucla.edu"))
        .ns(name("ns.cs.ucla.edu"), ip_cs, Ttl::from_hours(6))
        .dnskey(cs_key.0, cs_key.1)
        .a(
            name("host.cs.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 90),
            Ttl::from_mins(30),
        )
        .build()
        .expect("static zone");

    let example_zone = ZoneBuilder::new(name("example.com"))
        .ns(name("ns1.example.com"), ip_example, Ttl::from_days(1))
        .a(
            name("www.example.com"),
            Ipv4Addr::new(192, 0, 2, 70),
            Ttl::from_hours(1),
        )
        .build()
        .expect("static zone");

    let mut daemons = Vec::new();
    let mut routes = HashMap::new();
    for (ip, server_name, zones) in [
        (ip_root, "a.root-servers.net", vec![root_zone]),
        (ip_edu, "ns.edu", vec![edu_zone]),
        (ip_com, "ns.com", vec![com_zone]),
        (ip_ucla, "ns1.ucla.edu", vec![ucla_zone]),
        (ip_cs, "ns.cs.ucla.edu", vec![cs_zone]),
        (ip_example, "ns1.example.com", vec![example_zone]),
    ] {
        let mut server = AuthServer::new(name(server_name), ip);
        for z in zones {
            server.add_zone(z);
        }
        let daemon = Authd::spawn(server, "127.0.0.1:0")?;
        routes.insert(ip, daemon.addr());
        daemons.push(daemon);
    }

    Ok(Playground {
        daemons,
        routes,
        hints: RootHints::new(vec![(name("a.root-servers.net"), ip_root)]),
    })
}
