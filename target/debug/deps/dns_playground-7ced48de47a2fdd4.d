/root/repo/target/debug/deps/dns_playground-7ced48de47a2fdd4.d: crates/dns-netd/src/bin/dns-playground.rs

/root/repo/target/debug/deps/dns_playground-7ced48de47a2fdd4: crates/dns-netd/src/bin/dns-playground.rs

crates/dns-netd/src/bin/dns-playground.rs:
