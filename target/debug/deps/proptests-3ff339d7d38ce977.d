/root/repo/target/debug/deps/proptests-3ff339d7d38ce977.d: crates/dns-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3ff339d7d38ce977: crates/dns-core/tests/proptests.rs

crates/dns-core/tests/proptests.rs:
