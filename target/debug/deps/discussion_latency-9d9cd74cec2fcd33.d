/root/repo/target/debug/deps/discussion_latency-9d9cd74cec2fcd33.d: crates/dns-bench/src/bin/discussion_latency.rs Cargo.toml

/root/repo/target/debug/deps/libdiscussion_latency-9d9cd74cec2fcd33.rmeta: crates/dns-bench/src/bin/discussion_latency.rs Cargo.toml

crates/dns-bench/src/bin/discussion_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
