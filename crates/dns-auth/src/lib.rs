//! Authoritative DNS name-server engine.
//!
//! An [`AuthServer`] owns a set of [`Zone`]s and answers queries the way a
//! production authoritative server does:
//!
//! * **authoritative answers** for names inside a served zone, with the
//!   zone's own NS set and glue attached in the authority/additional
//!   sections — the copies that the paper's *TTL refresh* scheme feeds on,
//! * **downward referrals** at delegation cuts, carrying the child's
//!   infrastructure records,
//! * **NXDOMAIN / NODATA** with the apex SOA for negative caching,
//! * in-zone **CNAME chasing**.
//!
//! # Example
//!
//! ```rust
//! use dns_auth::AuthServer;
//! use dns_core::{Message, Name, Question, RecordType, ResponseKind, Ttl, ZoneBuilder};
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), dns_core::DnsError> {
//! let zone = ZoneBuilder::new("ucla.edu".parse()?)
//!     .ns("ns1.ucla.edu".parse()?, Ipv4Addr::new(192, 0, 2, 1), Ttl::from_days(1))
//!     .a("www.ucla.edu".parse()?, Ipv4Addr::new(192, 0, 2, 80), Ttl::from_hours(4))
//!     .build()?;
//! let mut server = AuthServer::new("ns1.ucla.edu".parse()?, Ipv4Addr::new(192, 0, 2, 1));
//! server.add_zone(zone);
//!
//! let q = Message::query(1, Question::new("www.ucla.edu".parse()?, RecordType::A));
//! let resp = server.handle_query(&q);
//! assert_eq!(resp.kind(), ResponseKind::Answer);
//! assert!(resp.header.authoritative);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;
mod store;

pub use server::AuthServer;
pub use store::ZoneStore;

pub use dns_core::Zone;
