//! Live-path robustness tests: the retry policy recovering through
//! injected packet loss and blackouts on real loopback sockets, the
//! deterministic replay guarantee, and worker-pool lifecycle.

use dns_core::{Rcode, RecordType, ResponseKind, SimTime};
use dns_netd::{client, playground, FaultInjector, Resolved, UdpUpstream};
use dns_resolver::{CachingServer, ResolverConfig, ResolverMetrics, RetryPolicy};
use std::time::{Duration, Instant};

fn client_timeout() -> Duration {
    Duration::from_secs(5)
}

/// A retry policy tuned for loopback tests: more rounds than production
/// would use, tiny backoffs so the suite stays fast.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        initial_backoff_ms: 10,
        backoff_multiplier: 2,
        max_backoff_ms: 80,
        jitter_pct: 50,
        deadline_ms: 1_000,
    }
}

#[test]
fn retry_policy_recovers_through_injected_loss() {
    let net = playground::boot().unwrap();
    let udp = UdpUpstream::with_route(Duration::from_millis(500), net.route_fn()).unwrap();
    let (upstream, faults) = FaultInjector::new(udp, 42);
    faults.set_loss(0.25);
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .seed(1)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0").unwrap();

    for qname in ["www.ucla.edu", "host.cs.ucla.edu", "www.example.com"] {
        let resp = client::query(
            resolver.addr(),
            &qname.parse().unwrap(),
            RecordType::A,
            client_timeout(),
        )
        .unwrap();
        assert_eq!(
            resp.kind(),
            ResponseKind::Answer,
            "{qname} must resolve through 25% loss"
        );
    }

    let metrics = resolver.metrics();
    let stats = faults.stats();
    assert!(
        stats.dropped_by_loss >= 1,
        "injector dropped nothing: {stats}"
    );
    assert!(
        metrics.retries >= 1,
        "loss was injected but no retry happened: {metrics}"
    );
    assert!(resolver.healthy());
    resolver.stop();
    net.stop();
}

#[test]
fn blackout_of_root_and_tlds_still_answers_cached_zones() {
    let net = playground::boot().unwrap();
    let udp = UdpUpstream::with_route(Duration::from_millis(250), net.route_fn()).unwrap();
    let (upstream, faults) = FaultInjector::new(udp, 7);
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .seed(2)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0").unwrap();

    // Prime the caches through the full hierarchy.
    let resp = client::query(
        resolver.addr(),
        &"www.ucla.edu".parse().unwrap(),
        RecordType::A,
        client_timeout(),
    )
    .unwrap();
    assert_eq!(resp.kind(), ResponseKind::Answer);

    // 100%-loss blackout window over every root/TLD daemon — the paper's
    // headline attack, but on live sockets via the injector (daemons stay
    // up; their packets just never arrive).
    faults.blackout(&net.top_level_ips(), Duration::from_secs(3600));

    // A *different* name in the cached zone forces an upstream query to
    // the (alive) leaf daemon via cached infrastructure.
    let resp = client::query(
        resolver.addr(),
        &"web.ucla.edu".parse().unwrap(),
        RecordType::A,
        client_timeout(),
    )
    .unwrap();
    assert_eq!(
        resp.kind(),
        ResponseKind::Answer,
        "cached IRRs must carry resolution through the blackout"
    );

    // A branch never visited needs the blacked-out root → SERVFAIL, after
    // the retry policy exhausts its rounds.
    let resp = client::query(
        resolver.addr(),
        &"www.never-seen.com".parse().unwrap(),
        RecordType::A,
        client_timeout(),
    )
    .unwrap();
    assert_eq!(resp.header.rcode, Rcode::ServFail);

    let stats = faults.stats();
    assert!(
        stats.dropped_by_blackout >= test_retry().attempts as u64,
        "every retry round must have hit the blackout: {stats}"
    );
    resolver.stop();
    net.stop();
}

/// Same seed → same drop schedule → same retry counts, even though the
/// traffic crosses real sockets. This is the acceptance bar for the
/// deterministic fault-injection path.
#[test]
fn fault_injection_replays_deterministically_per_seed() {
    fn run(seed: u64) -> (ResolverMetrics, u64) {
        let net = playground::boot().unwrap();
        // Generous socket timeout: on loopback with live daemons the only
        // query failures are the injector's, which are seed-deterministic.
        let udp = UdpUpstream::with_route(Duration::from_secs(2), net.route_fn()).unwrap();
        let (mut upstream, faults) = FaultInjector::new(udp, seed);
        faults.set_loss(0.3);
        let config = ResolverConfig::with_refresh()
            .to_builder()
            .retry(test_retry())
            .seed(seed)
            .build();
        let mut cs = CachingServer::new(config, net.hints.clone());
        for qname in [
            "www.ucla.edu",
            "web.ucla.edu",
            "host.cs.ucla.edu",
            "www.example.com",
            "nowhere.ucla.edu",
        ] {
            let _ = cs.resolve_a(&qname.parse().unwrap(), SimTime::ZERO, &mut upstream);
        }
        let dropped = faults.stats().dropped_by_loss;
        net.stop();
        (*cs.metrics(), dropped)
    }

    let (m1, d1) = run(11);
    let (m2, d2) = run(11);
    assert_eq!(d1, d2, "drop schedule must replay exactly");
    assert_eq!(m1.retries, m2.retries);
    assert_eq!(m1.queries_out, m2.queries_out);
    assert_eq!(m1.failed_out, m2.failed_out);
    assert_eq!(m1.backoff_wait_ms, m2.backoff_wait_ms);

    // A different seed takes a different path (loss draws differ).
    let (m3, d3) = run(12);
    assert!(
        d3 != d1 || m3.queries_out != m1.queries_out || m3.backoff_wait_ms != m1.backoff_wait_ms,
        "different seeds should not replay the same schedule"
    );
}

#[test]
fn worker_pool_serves_and_shuts_down_without_leaking() {
    let net = playground::boot().unwrap();
    let upstreams: Vec<_> = (0..3)
        .map(|_| {
            let udp = UdpUpstream::with_route(Duration::from_millis(500), net.route_fn()).unwrap();
            FaultInjector::new(udp, 5).0
        })
        .collect();
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let resolver = Resolved::spawn_pool(cs, upstreams, "127.0.0.1:0").unwrap();
    assert_eq!(resolver.worker_count(), 3);
    assert!(resolver.healthy());
    assert!(resolver.last_error().is_none());

    for qname in ["www.ucla.edu", "www.example.com"] {
        let resp = client::query(
            resolver.addr(),
            &qname.parse().unwrap(),
            RecordType::A,
            client_timeout(),
        )
        .unwrap();
        assert_eq!(resp.kind(), ResponseKind::Answer);
    }
    // `served` now ticks *after* the reply leaves the socket (the counter
    // bugfix), so give the worker a moment to pass the increment.
    let deadline = Instant::now() + Duration::from_secs(1);
    while resolver.served() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(resolver.served() >= 2);
    assert_eq!(resolver.stats().send_errors, 0);

    // stop() joins every worker; it must return promptly (the 50 ms read
    // timeout bounds how long a quiescent worker can block) and the port
    // must go silent afterwards.
    let addr = resolver.addr();
    let start = Instant::now();
    resolver.stop();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "shutdown must join all workers promptly"
    );
    let err = client::query(
        addr,
        &"www.ucla.edu".parse().unwrap(),
        RecordType::A,
        Duration::from_millis(200),
    );
    assert!(err.is_err(), "stopped daemon must not answer");
    net.stop();
}
