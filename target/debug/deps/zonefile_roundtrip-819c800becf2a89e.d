/root/repo/target/debug/deps/zonefile_roundtrip-819c800becf2a89e.d: tests/zonefile_roundtrip.rs

/root/repo/target/debug/deps/zonefile_roundtrip-819c800becf2a89e: tests/zonefile_roundtrip.rs

tests/zonefile_roundtrip.rs:
