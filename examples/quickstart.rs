//! Quickstart: build a synthetic internet, attack its root and TLDs, and
//! compare the current DNS against the paper's combined resilience scheme.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dns_resilience::prelude::*;

fn main() {
    // 1. A synthetic DNS tree: root → TLDs → thousands of zones, with
    //    realistic infrastructure-record TTLs (minutes → days).
    let universe = UniverseSpec::small().build(7);
    println!("built {}", universe);

    // 2. A week of query traffic from a campus-sized client population.
    let trace = TraceSpec::demo().generate(&universe, 42);
    println!("generated {}", trace);

    // 3. Black out the root and every TLD for 6 hours at the start of
    //    day 7, and measure how many queries fail.
    let start = SimTime::from_days(6);
    let duration = [SimDuration::from_hours(6)];

    // One engine run fans the four schemes over the available cores and
    // returns the outcomes in the order the schemes were declared.
    let outcome = ExperimentSpec::new(&universe)
        .trace(trace)
        .schemes([
            Scheme::vanilla(),
            Scheme::refresh(),
            Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
            Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
        ])
        .attack(start, &duration)
        .run();
    for o in &outcome.attacks {
        println!(
            "{:<28} SR failures: {:>6.2}%   CS failures: {:>6.2}%",
            o.scheme, o.sr_failed_pct, o.cs_failed_pct
        );
    }

    println!();
    println!("The combined scheme needs no protocol changes: caching servers");
    println!("refresh + renew infrastructure records, zone operators publish");
    println!("them with multi-day TTLs. See DESIGN.md for the full story.");
}
