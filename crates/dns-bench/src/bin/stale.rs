//! Regenerates the serve-stale head-to-head: RFC 8767 serve-stale,
//! proactive refresh and learned prefetch against the paper's
//! mitigation schemes under the 6h root+TLD blackout, a no-attack
//! overhead replay, and a water-torture flood. Writes the three CSV
//! grids plus `BENCH_stale.json` — the tracked trajectory ci.sh gates
//! on (`DNS_BENCH_OUT` overrides the JSON path).

use dns_bench::experiments::stale;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let out_path = std::env::var("DNS_BENCH_OUT").unwrap_or_else(|_| "BENCH_stale.json".into());
    let mut lab = Lab::new();
    let s = stale(&mut lab, &TraceSpec::TRC1);
    lab.emit_manifest();

    let json = format!(
        "{{\n  \"bench\": \"stale\",\n  \"schema_version\": 1,\n  \
         \"scale\": {},\n  \
         \"vanilla_sr_failed_pct\": {:.4},\n  \
         \"stale_sr_failed_pct\": {:.4},\n  \
         \"vanilla_stale_served\": {},\n  \
         \"stale_served\": {},\n  \
         \"stale_expired_unserved\": {},\n  \
         \"refresh_ahead\": {},\n  \
         \"prefetch_issued\": {},\n  \
         \"prefetch_hits\": {},\n  \
         \"prefetch_wasted\": {},\n  \
         \"stale_msg_overhead_pct\": {:.4},\n  \
         \"torture_legit_failed_pct_vanilla\": {:.4},\n  \
         \"torture_legit_failed_pct_stale\": {:.4}\n}}\n",
        dns_bench::scale(),
        s.vanilla_sr_failed_pct,
        s.stale_sr_failed_pct,
        s.vanilla_stale_served,
        s.stale_served,
        s.stale_expired_unserved,
        s.refresh_ahead,
        s.prefetch_issued,
        s.prefetch_hits,
        s.prefetch_wasted,
        s.stale_msg_overhead_pct,
        s.torture_legit_failed_pct_vanilla,
        s.torture_legit_failed_pct_stale,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    println!("[benchmark written to {out_path}]");
}
