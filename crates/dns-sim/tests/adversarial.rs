//! End-to-end adversarial sweeps: NXNSAttack delegation bombs and
//! water-torture floods against defended and undefended resolvers.
//!
//! These are the PR's acceptance gates: the undefended resolver shows
//! measurable NXNS amplification, MaxFetch(k) cuts it by at least 5x
//! while legitimate failures stay within one percentage point of the
//! no-attack baseline, and the negative-cache budget holds under a
//! water-torture flood without evicting positive state.

use dns_core::{SimDuration, SimTime};
use dns_resolver::DefensePolicy;
use dns_sim::experiment::{AdversarialOutcome, Scheme};
use dns_sim::sweep::ExperimentSpec;
use dns_sim::{adversary::merge_into_tail, AdversarySpec, Simulation};
use dns_trace::{NxnsBombSpec, Trace, TraceSpec, Universe, UniverseSpec};

const TRACE_SEED: u64 = 42;
const ATTACK_QPS: u32 = 2;
const WINDOW: SimDuration = SimDuration::from_mins(10);

fn universe() -> Universe {
    // 1200 bombs × fanout 24: enough bombs that every attack query in the
    // 10-minute window (2 qps × 600 s = 1200 queries) hits a cold bomb.
    UniverseSpec::small()
        .build(7)
        .with_delegation_bombs(NxnsBombSpec::new(1200, 24))
}

fn defense() -> DefensePolicy {
    DefensePolicy {
        max_ns_fetch: Some(2),
        neg_cache_max_entries: Some(512),
        ..DefensePolicy::off()
    }
}

fn attack_start() -> SimTime {
    SimTime::from_days(2)
}

/// Runs the head-to-head sweep: (vanilla, vanilla+defense) × (nxns,
/// water torture) over a streamed trace. Outcomes arrive in spec order:
/// per scheme, nxns first, then torture.
fn run_sweep(u: &Universe, threads: usize) -> Vec<AdversarialOutcome> {
    ExperimentSpec::new(u)
        .stream_trace(TraceSpec::demo().scaled(0.1), TRACE_SEED)
        .schemes([Scheme::vanilla(), Scheme::vanilla().with_defense(defense())])
        .adversarial(AdversarySpec::nxns(ATTACK_QPS), attack_start(), WINDOW)
        .adversarial(
            AdversarySpec::water_torture(6, ATTACK_QPS, 9),
            attack_start(),
            WINDOW,
        )
        .threads(threads)
        .run()
        .adversarial
}

#[test]
fn maxfetch_cuts_nxns_amplification_without_collateral_damage() {
    let u = universe();
    let outcomes = run_sweep(&u, 2);
    assert_eq!(outcomes.len(), 4);
    for o in &outcomes {
        eprintln!(
            "{o}  [attack_q={} base_up={} atk_up={} clamped={} suppressed={} neg_evict={}]",
            o.attack_queries,
            o.base_upstream,
            o.attacked_upstream,
            o.fetches_clamped,
            o.flood_suppressed,
            o.neg_evictions_pressure
        );
    }
    let nxns_open = &outcomes[0];
    let torture_open = &outcomes[1];
    let nxns_def = &outcomes[2];
    let torture_def = &outcomes[3];
    assert_eq!(nxns_open.scheme, "vanilla");
    assert_eq!(nxns_open.adversary, format!("nxns-q{ATTACK_QPS}"));
    assert_eq!(nxns_def.scheme, "vanilla+maxfetch2+negcap512e");

    // Every window replayed the full flood.
    let expected = u64::from(ATTACK_QPS) * WINDOW.as_secs();
    for o in &outcomes {
        assert_eq!(o.attack_queries, expected);
    }

    // The undefended resolver amplifies each NXNS query into many
    // upstream fetches (glue chase over the bomb's NS fan-out).
    assert!(
        nxns_open.amplification() > 5.0,
        "undefended NXNS amplification too low: {:.2}",
        nxns_open.amplification()
    );

    // MaxFetch(2) cuts amplification at least 5x and actually clamps.
    assert!(
        nxns_def.amplification() * 5.0 <= nxns_open.amplification(),
        "defense only cut amplification {:.2} -> {:.2}",
        nxns_open.amplification(),
        nxns_def.amplification()
    );
    assert!(nxns_def.fetches_clamped > 0, "MaxFetch never clamped");
    assert_eq!(nxns_open.fetches_clamped, 0, "no clamping without defense");

    // Collateral damage: legitimate failures stay within 1pp of the
    // attack-free baseline fork, with or without the defense.
    for o in &outcomes {
        assert!(
            o.legit_failed_delta_pct().abs() <= 1.0,
            "legitimate failure moved {:+.2}pp under {} / {}",
            o.legit_failed_delta_pct(),
            o.scheme,
            o.adversary
        );
    }

    // Water torture pressures the bounded negative cache; the budget
    // forces pressure evictions only when the defense is on.
    assert!(torture_def.neg_evictions_pressure > 0);
    assert_eq!(torture_open.neg_evictions_pressure, 0);
    // Torture amplification is ~1 (one NXDOMAIN walk per query) in both
    // schemes: the neg-cache budget defends memory, not upstream volume.
    assert!(torture_open.amplification() < 5.0);
    assert!(torture_def.amplification() < 5.0);
}

#[test]
fn adversarial_sweeps_are_thread_count_independent() {
    let u = universe();
    let seq = run_sweep(&u, 1);
    let par = run_sweep(&u, 8);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.adversary, b.adversary);
        assert_eq!(a.attack_queries, b.attack_queries);
        assert_eq!(a.base_upstream, b.base_upstream);
        assert_eq!(a.attacked_upstream, b.attacked_upstream);
        assert_eq!(a.window, b.window, "{} / {}", a.scheme, a.adversary);
    }
}

#[test]
fn materialized_and_streamed_adversarial_units_agree() {
    let u = universe();
    let preset = TraceSpec::demo().scaled(0.1);
    let run = |spec: ExperimentSpec<'_>| {
        spec.scheme(Scheme::vanilla().with_defense(defense()))
            .adversarial(AdversarySpec::nxns(ATTACK_QPS), attack_start(), WINDOW)
            .adversarial(
                AdversarySpec::water_torture(6, ATTACK_QPS, 9),
                attack_start(),
                WINDOW,
            )
            .threads(2)
            .run()
            .adversarial
    };
    let mat = run(ExperimentSpec::new(&u).trace(preset.generate(&u, TRACE_SEED)));
    let streamed = run(ExperimentSpec::new(&u).stream_trace(preset, TRACE_SEED));
    assert_eq!(mat.len(), streamed.len());
    for (a, b) in mat.iter().zip(&streamed) {
        assert_eq!(a.adversary, b.adversary);
        assert_eq!(a.attack_queries, b.attack_queries);
        assert_eq!(a.base_upstream, b.base_upstream);
        assert_eq!(a.attacked_upstream, b.attacked_upstream);
        assert_eq!(a.window, b.window, "{}", a.adversary);
    }
}

#[test]
fn negative_cache_budget_holds_under_water_torture() {
    let u = universe();
    let trace = TraceSpec::demo().scaled(0.1).generate(&u, TRACE_SEED);
    let adv = AdversarySpec::water_torture(6, ATTACK_QPS, 9).compile(&u);
    let start = attack_start();
    let end = start + WINDOW;
    let run = |scheme: Scheme| {
        let mut warm = Simulation::new(&u, trace.clone(), scheme.sim_config());
        warm.run_until(start);
        let tail = merge_into_tail(&trace.queries[warm.processed()..], &adv, start, end);
        let mut sim = warm.fork_with_trace(std::sync::Arc::new(Trace {
            name: trace.name.clone(),
            days: trace.days,
            clients: trace.clients,
            queries: tail,
        }));
        sim.run_until(end);
        sim
    };

    let mut open = run(Scheme::vanilla());
    let mut defended = run(Scheme::vanilla().with_defense(defense()));
    let open_entries = open.cs_mut().negative_entries();
    let defended_entries = defended.cs_mut().negative_entries();
    eprintln!("negative entries: open={open_entries} defended={defended_entries}");

    // The flood pushes the unbounded cache well past the budget; the
    // bounded cache never exceeds it and counted pressure evictions.
    assert!(open_entries > 512, "flood too small: {open_entries}");
    assert!(defended_entries <= 512);
    assert!(defended.metrics().neg_evictions_pressure > 0);
    assert_eq!(open.metrics().neg_evictions_pressure, 0);

    // The budget defends memory without breaking resolution: both runs
    // answered the same legitimate queries with the same failure count.
    let legit = |sim: &Simulation| {
        let m = sim.metrics();
        let adv = sim.adversary_stats();
        (
            m.queries_in - adv.sent,
            m.failed_in.saturating_sub(adv.failed),
        )
    };
    assert_eq!(legit(&open), legit(&defended));
}
