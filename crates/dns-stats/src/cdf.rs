//! Empirical cumulative distribution functions.

use std::fmt;

/// An empirical CDF over `f64` samples.
///
/// Non-finite samples are dropped at construction. Quantiles use the
/// nearest-rank definition, so [`Cdf::quantile`] always returns an actual
/// sample value.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF, sorting the samples and discarding NaN/∞.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Cdf { sorted: samples }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 when empty.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Nearest-rank quantile: the smallest sample `v` such that at least
    /// `q` of the distribution is `<= v`. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evenly spaced `(value, cumulative_fraction)` points suitable for
    /// plotting, at most `points` of them.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(points) / points).max(1);
        let mut out = Vec::new();
        let mut i = step - 1;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(_, f)| f) != Some(1.0) {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cdf(n={}, p50={:?}, p90={:?}, p99={:?})",
            self.len(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_counts_inclusively() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let cdf = Cdf::from_samples(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.0), Some(10.0));
        assert_eq!(cdf.quantile(0.25), Some(10.0));
        assert_eq!(cdf.quantile(0.26), Some(20.0));
        assert_eq!(cdf.quantile(0.5), Some(20.0));
        assert_eq!(cdf.quantile(1.0), Some(40.0));
    }

    #[test]
    fn empty_cdf_behaves() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.curve(10).is_empty());
    }

    #[test]
    fn non_finite_samples_dropped() {
        let cdf = Cdf::from_samples(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.max(), Some(2.0));
    }

    #[test]
    fn curve_ends_at_one() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        let curve = cdf.curve(10);
        assert!(curve.len() >= 10);
        assert_eq!(curve.last().unwrap().1, 1.0);
        // Curve fractions are non-decreasing.
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        Cdf::from_samples(vec![1.0]).quantile(1.5);
    }
}
