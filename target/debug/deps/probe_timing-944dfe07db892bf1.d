/root/repo/target/debug/deps/probe_timing-944dfe07db892bf1.d: crates/dns-bench/src/bin/probe_timing.rs Cargo.toml

/root/repo/target/debug/deps/libprobe_timing-944dfe07db892bf1.rmeta: crates/dns-bench/src/bin/probe_timing.rs Cargo.toml

crates/dns-bench/src/bin/probe_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
