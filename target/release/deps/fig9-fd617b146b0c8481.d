/root/repo/target/release/deps/fig9-fd617b146b0c8481.d: crates/dns-bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-fd617b146b0c8481: crates/dns-bench/src/bin/fig9.rs

crates/dns-bench/src/bin/fig9.rs:
