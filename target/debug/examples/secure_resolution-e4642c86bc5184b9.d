/root/repo/target/debug/examples/secure_resolution-e4642c86bc5184b9.d: examples/secure_resolution.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_resolution-e4642c86bc5184b9.rmeta: examples/secure_resolution.rs Cargo.toml

examples/secure_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
