/root/repo/target/debug/deps/fig6-d7035e88917809d9.d: crates/dns-bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-d7035e88917809d9.rmeta: crates/dns-bench/src/bin/fig6.rs Cargo.toml

crates/dns-bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
