/root/repo/target/release/deps/dns_netd-543076c5ef34e5aa.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/release/deps/libdns_netd-543076c5ef34e5aa.rlib: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/release/deps/libdns_netd-543076c5ef34e5aa.rmeta: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/fault.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
