//! Boots a miniature internet on loopback — six authoritative daemons and
//! one recursive resolver — then resolves names through it over real UDP,
//! and demonstrates the live robustness layer: the retry policy resolving
//! through injected packet loss, the batched wire fast lane answering a
//! repeated hot query from pre-serialized bytes, and the TTL-refresh
//! scheme surviving a 100%-loss blackout window over every root and TLD
//! daemon (the paper's headline attack, on real sockets).
//!
//! ```sh
//! cargo run --release -p dns-netd --bin dns-playground
//! # with injected loss (used by ci.sh as the netd smoke test):
//! DNS_PLAYGROUND_LOSS=0.1 DNS_PLAYGROUND_SEED=7 \
//!     cargo run --release -p dns-netd --bin dns-playground
//! # sharded worker pool: 4 workers over one 4-shard cache with
//! # single-flight coalescing (the concurrent resolver core, live):
//! cargo run --release -p dns-netd --bin dns-playground -- --shards 4
//! ```
//!
//! Exits non-zero when any of the scripted resolutions deviates from its
//! expected outcome, so CI can gate on it.

use dns_core::{Question, Rcode, RecordClass, RecordType};
use dns_netd::playground;
use dns_netd::{client, FaultHandle, FaultInjector, Resolved, UdpUpstream, CHAOS_METRICS_NAME};
use dns_resolver::{CacheBackend, CachingServer, ResolverConfig, RetryPolicy};
use std::time::Duration;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--shards N` from argv (0 = classic single-resolver mode).
fn arg_shards() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--shards" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--shards takes a positive integer");
        }
    }
    0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let loss = env_f64("DNS_PLAYGROUND_LOSS", 0.0);
    let seed = env_u64("DNS_PLAYGROUND_SEED", 7);
    let trace = std::env::args().any(|a| a == "--trace");
    let shards = arg_shards();

    println!("booting the playground internet…");
    let net = playground::boot()?;
    for d in &net.daemons {
        println!("  {d}");
    }

    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(RetryPolicy::standard())
        .seed(seed)
        .shards(shards.max(1))
        .coalesce(shards > 0)
        .build();

    if shards > 0 {
        // Sharded mode: one worker per shard, each with its own upstream
        // transport and fault injector, all over one shared cache.
        let mut upstreams = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for w in 0..shards {
            let udp = UdpUpstream::with_route(Duration::from_millis(300), net.route_fn())?;
            let (upstream, faults) = FaultInjector::new(udp, seed + w as u64);
            upstreams.push(upstream);
            handles.push(faults);
        }
        if loss > 0.0 {
            for h in &handles {
                h.set_loss(loss);
            }
            println!("  injecting {:.0}% packet loss (seed {seed})", loss * 100.0);
        }
        let resolver =
            Resolved::spawn_sharded(config, net.hints.clone(), upstreams, "127.0.0.1:0")?;
        println!(
            "  resolver on {} ({}; {} workers over {} cache shards, coalescing on)",
            resolver.addr(),
            config.retry,
            resolver.worker_count(),
            shards
        );
        let backend = resolver.sharded_backend();
        let outcome = run_script(&net, &resolver, &handles, trace);
        println!(
            "singleflight: {} flights led, {} coalesced",
            backend.flights_led(),
            backend.flights_shared()
        );
        resolver.stop();
        net.stop();
        outcome
    } else {
        let udp = UdpUpstream::with_route(Duration::from_millis(300), net.route_fn())?;
        let (upstream, faults) = FaultInjector::new(udp, seed);
        if loss > 0.0 {
            faults.set_loss(loss);
            println!("  injecting {:.0}% packet loss (seed {seed})", loss * 100.0);
        }
        let cs = CachingServer::new(config, net.hints.clone());
        let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0")?;
        println!("  resolver on {} ({})", resolver.addr(), config.retry);
        let outcome = run_script(&net, &resolver, &[faults], trace);
        resolver.stop();
        net.stop();
        outcome
    }
}

/// The scripted resolution tour, generic over the resolver's cache
/// backend: the same dig script runs against the classic single-server
/// daemon and the sharded pool.
fn run_script<B: CacheBackend + Send + 'static>(
    net: &playground::Playground,
    resolver: &Resolved<B>,
    faults: &[FaultHandle],
    trace: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    if trace {
        resolver.enable_trace();
        println!("  per-query tracing ON (--trace)");
    }
    println!();

    let mut failures = 0u32;
    let mut dig = |qname: &str, rtype, expect: Rcode| {
        let name = qname.parse().expect("valid name");
        match client::query(resolver.addr(), &name, rtype, Duration::from_secs(5)) {
            Ok(resp) => {
                println!("$ dig @{} {qname}", resolver.addr());
                print!("{}", client::render(&resp));
                if resp.header.rcode != expect {
                    println!(";; UNEXPECTED: wanted {expect}");
                    failures += 1;
                }
                if trace {
                    if let Some(explain) = resolver.explain_last() {
                        print!("{explain}");
                    }
                }
            }
            Err(e) => {
                println!("$ dig {qname} → error: {e}");
                failures += 1;
            }
        }
        println!();
    };

    dig("www.ucla.edu", RecordType::A, Rcode::NoError);
    dig("web.ucla.edu", RecordType::A, Rcode::NoError); // CNAME chain
    dig("host.cs.ucla.edu", RecordType::A, Rcode::NoError); // deep, signed zone
    dig("www.example.com", RecordType::A, Rcode::NoError); // other branch
    dig("nowhere.ucla.edu", RecordType::A, Rcode::NxDomain); // NXDOMAIN

    // Repeat the hot query: the first dig compiled its response into the
    // pre-serialized wire cache, so this one must be served by the
    // batched fast lane without touching the resolver.
    println!("--- repeating the hot query (wire fast lane) ---");
    let hits_before = resolver.stats().wire_hits;
    dig("www.ucla.edu", RecordType::A, Rcode::NoError);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while resolver.stats().wire_hits <= hits_before && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = resolver.stats();
    let wire_lane_missed = stats.wire_hits <= hits_before;
    if wire_lane_missed {
        println!(";; UNEXPECTED: repeat query missed the wire cache ({stats})\n");
    } else {
        println!(
            "wire fast lane HIT ({} cached response(s); {})\n",
            resolver.wire_cache_len(),
            stats
        );
    }

    println!("--- blacking out the root and TLD daemons (live DDoS, 100% loss) ---");
    let targets = net.top_level_ips();
    for h in faults {
        h.blackout(&targets, Duration::from_secs(3600));
    }
    println!(
        "injected blackout over {} top-level servers; daemons stay up, their packets vanish.\n",
        targets.len()
    );

    // Still resolvable: the resolver holds ucla.edu's (refreshed) IRRs.
    dig("www.ucla.edu", RecordType::A, Rcode::NoError);
    // A name in a never-visited branch now fails (SERVFAIL) — after the
    // retry policy exhausts its budget against the blackout.
    dig("www.never-seen.com", RecordType::A, Rcode::ServFail);

    // The daemon's self-reported metrics, over the wire: the CHAOS-class
    // `TXT metrics.bind.` convention (as `dig CH TXT metrics.bind` would).
    let chaos = Question::with_class(
        CHAOS_METRICS_NAME.parse().expect("valid name"),
        RecordType::Txt,
        RecordClass::Ch,
    );
    match client::query_question(resolver.addr(), chaos, Duration::from_secs(5)) {
        Ok(resp) => {
            println!("$ dig @{} CH TXT {CHAOS_METRICS_NAME}", resolver.addr());
            print!("{}", client::render(&resp));
            if resp.answers.is_empty() {
                println!(";; UNEXPECTED: empty metrics snapshot");
                failures += 1;
            }
        }
        Err(e) => {
            println!("$ dig CH TXT {CHAOS_METRICS_NAME} → error: {e}");
            failures += 1;
        }
    }
    println!();

    println!("resolver metrics: {}", resolver.metrics());
    println!("daemon stats: {}", resolver.stats());
    for (i, h) in faults.iter().enumerate() {
        if faults.len() == 1 {
            println!("fault stats: {}", h.stats());
        } else {
            println!("fault stats[w{i}]: {}", h.stats());
        }
    }

    if wire_lane_missed {
        failures += 1;
    }
    if failures > 0 {
        return Err(format!("{failures} resolution(s) deviated from the script").into());
    }
    println!("playground script OK");
    Ok(())
}
