/root/repo/target/debug/deps/dns_trace-8e1fb27dbaeef4b3.d: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

/root/repo/target/debug/deps/libdns_trace-8e1fb27dbaeef4b3.rlib: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

/root/repo/target/debug/deps/libdns_trace-8e1fb27dbaeef4b3.rmeta: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

crates/dns-trace/src/lib.rs:
crates/dns-trace/src/io.rs:
crates/dns-trace/src/namespace.rs:
crates/dns-trace/src/spec.rs:
crates/dns-trace/src/trace.rs:
crates/dns-trace/src/ttl_model.rs:
crates/dns-trace/src/workload.rs:
crates/dns-trace/src/zipf.rs:
