/root/repo/target/debug/examples/attack_drill-908a117053c30389.d: examples/attack_drill.rs Cargo.toml

/root/repo/target/debug/examples/libattack_drill-908a117053c30389.rmeta: examples/attack_drill.rs Cargo.toml

examples/attack_drill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
