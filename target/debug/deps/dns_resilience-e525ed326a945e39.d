/root/repo/target/debug/deps/dns_resilience-e525ed326a945e39.d: src/lib.rs

/root/repo/target/debug/deps/libdns_resilience-e525ed326a945e39.rlib: src/lib.rs

/root/repo/target/debug/deps/libdns_resilience-e525ed326a945e39.rmeta: src/lib.rs

src/lib.rs:
