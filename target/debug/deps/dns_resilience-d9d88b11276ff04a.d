/root/repo/target/debug/deps/dns_resilience-d9d88b11276ff04a.d: src/lib.rs

/root/repo/target/debug/deps/libdns_resilience-d9d88b11276ff04a.rlib: src/lib.rs

/root/repo/target/debug/deps/libdns_resilience-d9d88b11276ff04a.rmeta: src/lib.rs

src/lib.rs:
