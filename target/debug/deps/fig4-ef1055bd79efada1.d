/root/repo/target/debug/deps/fig4-ef1055bd79efada1.d: crates/dns-bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-ef1055bd79efada1.rmeta: crates/dns-bench/src/bin/fig4.rs Cargo.toml

crates/dns-bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
