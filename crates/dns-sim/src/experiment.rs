//! Schemes, outcome types and the paper's experiment constants.
//!
//! Sweeps themselves run through the [`crate::sweep::ExperimentSpec`]
//! engine: warm a simulation over the first six days of a trace, fork it
//! per attack duration, and measure failure ratios inside the attack
//! window — exactly the paper's §5.1 methodology.

use crate::SimConfig;
use dns_core::{SimDuration, Ttl};
use dns_obs::LogHistogram;
use dns_resolver::{
    DefensePolicy, OccupancySample, RenewalPolicy, ResolverConfig, ResolverMetrics, StalePolicy,
};
use std::fmt;

/// A complete scheme under evaluation: the caching-server configuration
/// plus the operator-side long-TTL override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme {
    /// Resolver-side configuration.
    pub resolver: ResolverConfig,
    /// Zone-side long TTL, if any.
    pub long_ttl: Option<Ttl>,
}

impl Scheme {
    /// The current DNS (Figure 4 baseline).
    pub fn vanilla() -> Self {
        Scheme {
            resolver: ResolverConfig::vanilla(),
            long_ttl: None,
        }
    }

    /// TTL refresh only (Figure 5).
    pub fn refresh() -> Self {
        Scheme {
            resolver: ResolverConfig::with_refresh(),
            long_ttl: None,
        }
    }

    /// TTL refresh + a renewal policy (Figures 6–9).
    pub fn renewal(policy: RenewalPolicy) -> Self {
        Scheme {
            resolver: ResolverConfig::with_renewal(policy),
            long_ttl: None,
        }
    }

    /// TTL refresh + long TTL (Figure 10).
    pub fn refresh_long_ttl(ttl: Ttl) -> Self {
        Scheme {
            resolver: ResolverConfig::with_refresh(),
            long_ttl: Some(ttl),
        }
    }

    /// All three combined (Figure 11).
    pub fn combined(policy: RenewalPolicy, ttl: Ttl) -> Self {
        Scheme {
            resolver: ResolverConfig::with_renewal(policy),
            long_ttl: Some(ttl),
        }
    }

    /// The same scheme with a resolver-side [`DefensePolicy`] applied —
    /// the head-to-head axis of the adversarial sweeps. The defense
    /// knobs show up in the label (`vanilla+maxfetch4`, …).
    pub fn with_defense(mut self, defense: DefensePolicy) -> Self {
        self.resolver.defense = defense;
        self
    }

    /// The same scheme with a resolver-side [`StalePolicy`] applied —
    /// the serve-stale / proactive-refresh / prefetch axis of the stale
    /// sweeps. The stale knobs show up in the label
    /// (`vanilla+stale3600s`, `refresh+proactive80`, …).
    pub fn with_stale(mut self, stale: StalePolicy) -> Self {
        self.resolver.stale = stale;
        self
    }

    /// The scheme's display label.
    pub fn label(&self) -> String {
        self.sim_config().label()
    }

    /// The corresponding simulation configuration.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig::new(self.resolver);
        if let Some(ttl) = self.long_ttl {
            config = config.long_ttl(ttl);
        }
        config
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Failure measurement for one (scheme, trace, attack duration) cell.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Trace label.
    pub trace: String,
    /// Attack duration.
    pub duration: SimDuration,
    /// % of stub-resolver queries failing during the attack window
    /// (the paper's "queries from SRs" series).
    pub sr_failed_pct: f64,
    /// % of caching-server → authoritative queries failing during the
    /// window (the paper's "queries from CSs" series).
    pub cs_failed_pct: f64,
    /// Raw counters accumulated inside the window.
    pub window: ResolverMetrics,
    /// Modelled resolution-latency distribution inside the window
    /// (virtual ms; the Fig. 12-style CDF input).
    pub latency: LogHistogram,
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {}h: SR {:.2}% CS {:.2}%",
            self.scheme,
            self.trace,
            self.duration.as_secs() / 3600,
            self.sr_failed_pct,
            self.cs_failed_pct
        )
    }
}

/// Measurement for one (scheme, trace, adversary) cell: a baseline fork
/// (legitimate traffic only) and an attacked fork (the same traffic with
/// the adversary's flood merged in) replayed over the same window from
/// one warmed-up state.
#[derive(Debug, Clone)]
pub struct AdversarialOutcome {
    /// Scheme label (defense knobs included, e.g. `vanilla+maxfetch4`).
    pub scheme: String,
    /// Trace label.
    pub trace: String,
    /// Adversary label (`nxns-q50`, `torture-v8-q25`, …).
    pub adversary: String,
    /// Attack-window length.
    pub duration: SimDuration,
    /// Adversary queries replayed inside the window.
    pub attack_queries: u64,
    /// Upstream queries the baseline fork sent inside the window.
    pub base_upstream: u64,
    /// Upstream queries the attacked fork sent inside the window.
    pub attacked_upstream: u64,
    /// % of *legitimate* queries failing in the baseline window.
    pub base_legit_failed_pct: f64,
    /// % of *legitimate* queries failing in the attacked window
    /// (adversary queries and their failures subtracted out).
    pub legit_failed_pct: f64,
    /// NS-address fetches clamped by MaxFetch(k) inside the window.
    pub fetches_clamped: u64,
    /// Queries refused by flood damping (inflight caps / refused
    /// negative-cache storage) inside the window.
    pub flood_suppressed: u64,
    /// Negative-cache entries evicted under budget pressure inside the
    /// window.
    pub neg_evictions_pressure: u64,
    /// Raw resolver counters accumulated inside the attacked window.
    pub window: ResolverMetrics,
}

impl AdversarialOutcome {
    /// Extra upstream queries the attack induced, per attack query —
    /// the amplification factor the defenses are judged on.
    pub fn amplification(&self) -> f64 {
        if self.attack_queries == 0 {
            return 0.0;
        }
        self.attacked_upstream.saturating_sub(self.base_upstream) as f64
            / self.attack_queries as f64
    }

    /// Percentage-point increase in legitimate failures versus the
    /// baseline fork — the collateral-damage cost of attack + defense.
    pub fn legit_failed_delta_pct(&self) -> f64 {
        self.legit_failed_pct - self.base_legit_failed_pct
    }
}

impl fmt::Display for AdversarialOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {}: x{:.1} amplification, legit fail {:.2}% ({:+.2}pp)",
            self.scheme,
            self.trace,
            self.adversary,
            self.amplification(),
            self.legit_failed_pct,
            self.legit_failed_delta_pct()
        )
    }
}

/// The attack durations evaluated in Figures 4–5 (3, 6, 12, 24 hours).
pub fn paper_durations() -> [SimDuration; 4] {
    [
        SimDuration::from_hours(3),
        SimDuration::from_hours(6),
        SimDuration::from_hours(12),
        SimDuration::from_hours(24),
    ]
}

/// The 6-hour window used by the policy-comparison figures (6–11).
pub const POLICY_FIGURE_DURATION: SimDuration = SimDuration::from_hours(6);

/// The attack onset: the start of day 7, after six days of warm-up.
pub const ATTACK_START_DAY: u64 = 6;

/// Outcome of a full no-attack run, used for Table 2 (message overhead)
/// and Figure 12 (memory overhead).
#[derive(Debug, Clone)]
pub struct OverheadOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Trace label.
    pub trace: String,
    /// Final counters for the whole run.
    pub metrics: ResolverMetrics,
    /// Occupancy series (hourly unless overridden).
    pub occupancy: Vec<OccupancySample>,
    /// Modelled resolution-latency distribution over the whole run
    /// (virtual ms).
    pub latency: LogHistogram,
}

impl OverheadOutcome {
    /// % change in outgoing messages relative to `baseline` (negative
    /// means fewer messages — the hoped-for result for refresh and
    /// long-TTL).
    pub fn message_overhead_pct(&self, baseline: &OverheadOutcome) -> f64 {
        let base = baseline.metrics.queries_out;
        if base == 0 {
            return 0.0;
        }
        (self.metrics.queries_out as f64 - base as f64) / base as f64 * 100.0
    }

    /// Mean fresh-zone count over the occupancy series.
    pub fn mean_zones(&self) -> f64 {
        mean(self.occupancy.iter().map(|o| o.zones as f64))
    }

    /// Mean cached-record count over the occupancy series.
    pub fn mean_records(&self) -> f64 {
        mean(self.occupancy.iter().map(|o| o.total_records() as f64))
    }

    /// Ratio of mean cached zones vs a baseline run.
    pub fn zone_ratio(&self, baseline: &OverheadOutcome) -> f64 {
        safe_ratio(self.mean_zones(), baseline.mean_zones())
    }

    /// Ratio of mean cached records vs a baseline run.
    pub fn record_ratio(&self, baseline: &OverheadOutcome) -> f64 {
        safe_ratio(self.mean_records(), baseline.mean_records())
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ExperimentSpec;
    use dns_core::SimTime;
    use dns_trace::{Trace, TraceSpec, Universe, UniverseSpec};

    fn setup() -> (Universe, Trace) {
        let u = UniverseSpec::small().build(7);
        let t = TraceSpec::demo().scaled(0.15).generate(&u, 5);
        (u, t)
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::vanilla().label(), "vanilla");
        assert_eq!(Scheme::refresh().label(), "refresh");
        assert_eq!(
            Scheme::renewal(RenewalPolicy::lru(3)).label(),
            "refresh+LRU_3"
        );
        assert_eq!(
            Scheme::refresh_long_ttl(Ttl::from_days(5)).label(),
            "refresh+longttl5d"
        );
        assert_eq!(
            Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)).label(),
            "refresh+A-LFU_3+longttl3d"
        );
    }

    #[test]
    fn sweep_longer_attacks_fail_more_for_vanilla() {
        let (u, t) = setup();
        let outcomes = ExperimentSpec::new(&u)
            .trace(t)
            .scheme(Scheme::vanilla())
            .attack(SimTime::from_days(ATTACK_START_DAY), &paper_durations())
            .run()
            .attacks;
        assert_eq!(outcomes.len(), 4);
        // Failures are roughly monotone in attack duration. The demo
        // trace is sparse (little cache reuse), so failure saturates near
        // its ceiling and we only require monotonicity up to small noise.
        for pair in outcomes.windows(2) {
            assert!(
                pair[1].sr_failed_pct >= pair[0].sr_failed_pct - 5.0,
                "{} then {}",
                pair[0],
                pair[1]
            );
        }
        // The 24h attack must hurt a vanilla resolver badly.
        assert!(outcomes[3].sr_failed_pct > 10.0);
        // CS-side failures exceed SR-side ones (cache shields clients,
        // not the caching server itself) — the paper's Fig. 4 asymmetry.
        assert!(outcomes[3].cs_failed_pct > outcomes[3].sr_failed_pct);
    }

    #[test]
    fn schemes_order_as_in_the_paper() {
        let (u, t) = setup();
        let start = SimTime::from_days(ATTACK_START_DAY);
        let durations = [SimDuration::from_hours(6)];
        let fail = |s: Scheme| {
            ExperimentSpec::new(&u)
                .trace(t.clone())
                .scheme(s)
                .attack(start, &durations)
                .run()
                .attacks[0]
                .sr_failed_pct
        };
        let vanilla = fail(Scheme::vanilla());
        let refresh = fail(Scheme::refresh());
        let combined = fail(Scheme::combined(
            RenewalPolicy::adaptive_lfu(3),
            Ttl::from_days(3),
        ));
        assert!(vanilla > 0.0);
        assert!(refresh <= vanilla);
        assert!(combined <= refresh);
        // The headline claim: combined is roughly an order of magnitude
        // better than vanilla (allow generous slack on the small trace).
        assert!(
            combined < vanilla / 2.0,
            "combined {combined} vanilla {vanilla}"
        );
    }

    #[test]
    fn overhead_run_collects_metrics_and_occupancy() {
        let (u, t) = setup();
        let run = |s: Scheme| {
            ExperimentSpec::new(&u)
                .trace(t.clone())
                .scheme(s)
                .overhead(SimDuration::from_hours(12))
                .run()
                .overheads
                .remove(0)
        };
        let vanilla = run(Scheme::vanilla());
        assert!(vanilla.metrics.queries_out > 0);
        assert!(!vanilla.occupancy.is_empty());
        assert_eq!(vanilla.message_overhead_pct(&vanilla), 0.0);

        // Refresh reduces message volume (fewer referral walks).
        let refresh = run(Scheme::refresh());
        assert!(
            refresh.message_overhead_pct(&vanilla) < 5.0,
            "refresh should not add much traffic: {:+.1}%",
            refresh.message_overhead_pct(&vanilla)
        );

        // Renewal adds traffic but also adds cached zones.
        let renew = run(Scheme::renewal(RenewalPolicy::adaptive_lru(3)));
        assert!(renew.metrics.renewals_sent > 0);
        assert!(renew.zone_ratio(&vanilla) > 1.0);
    }
}
