//! Running summary statistics.

use std::fmt;

/// Accumulates samples and reports count/mean/min/max; percentiles are
/// computed on demand from the retained samples.
///
/// The experiments are modest in size (≤ tens of millions of samples), so
/// `Summary` simply retains everything — exactness matters more than memory
/// here, and the callers that only need a mean use the `mean` field of the
/// simulator's counters instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    samples: Vec<f64>,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records a sample; non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.samples.push(x);
        self.sum += x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted[rank - 1])
    }

    /// Converts into a [`crate::Cdf`] over the recorded samples.
    pub fn into_cdf(self) -> crate::Cdf {
        crate::Cdf::from_samples(self.samples)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.4} min={:.4} max={:.4}",
                self.count(),
                mean,
                self.min.unwrap(),
                self.max.unwrap()
            ),
            None => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s: Summary = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(99.0), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn non_finite_ignored() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::NEG_INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn into_cdf_preserves_samples() {
        let s: Summary = [3.0, 1.0, 2.0].into_iter().collect();
        let cdf = s.into_cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.quantile(1.0), Some(3.0));
    }
}
