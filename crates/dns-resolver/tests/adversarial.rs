//! Adversarial upstream tests: the resolver must not be poisoned,
//! confused or crashed by hostile or broken authoritative servers.

use dns_core::{Message, Name, RData, Rcode, Record, RecordType, SimTime, Ttl};
use dns_resolver::{CachingServer, Outcome, ResolverConfig, RootHints, Upstream};
use std::net::Ipv4Addr;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn hints() -> RootHints {
    RootHints::new(vec![(name("a.root"), Ipv4Addr::new(198, 41, 0, 4))])
}

/// An upstream that always replies with a fixed transformation of the
/// query.
struct Scripted<F>(F);

impl<F: FnMut(Ipv4Addr, &Message) -> Option<Message>> Upstream for Scripted<F> {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        (self.0)(server, query)
    }
}

#[test]
fn out_of_bailiwick_records_are_not_cached() {
    // The root server tries to inject an A record for a name it has no
    // authority over, attached to an otherwise valid referral.
    let mut evil = Scripted(|_addr, q: &Message| {
        let mut resp = Message::response_to(q);
        resp.authorities.push(Record::new(
            name("com"),
            Ttl::from_days(2),
            RData::Ns(name("ns.com")),
        ));
        resp.additionals.push(Record::new(
            name("ns.com"),
            Ttl::from_days(2),
            RData::A(Ipv4Addr::new(10, 0, 0, 1)),
        ));
        // Poison attempt: bank.example is not under the queried zone
        // hierarchy for this referral's bailiwick rules? It *is* under
        // the root, so instead poison with a record that a *com* server
        // could never own — we test the deeper case below. Here: the
        // root cannot make us cache an answer-section record because the
        // response is not authoritative.
        resp.answers.push(Record::new(
            name("victim.com"),
            Ttl::from_days(7),
            RData::A(Ipv4Addr::new(66, 66, 66, 66)),
        ));
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let _ = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut evil);
    // The forged answer must not be served to clients.
    assert!(cs
        .cache()
        .get(&name("victim.com"), RecordType::A, SimTime::from_secs(1))
        .is_none());
}

#[test]
fn sideways_referral_is_rejected() {
    // A referral pointing *up* or *sideways* (not deeper toward the
    // query name) must terminate resolution rather than loop.
    let mut evil = Scripted(|_addr, q: &Message| {
        let mut resp = Message::response_to(q);
        resp.authorities.push(Record::new(
            name("elsewhere.org"),
            Ttl::from_days(1),
            RData::Ns(name("ns.elsewhere.org")),
        ));
        resp.additionals.push(Record::new(
            name("ns.elsewhere.org"),
            Ttl::from_days(1),
            RData::A(Ipv4Addr::new(10, 9, 9, 9)),
        ));
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut evil);
    assert!(out.is_failure());
    // Bounded work: one query to the root, then rejection.
    assert!(cs.metrics().queries_out <= 2);
}

#[test]
fn self_referral_loop_terminates() {
    // A server that keeps referring to the same zone cut forever.
    let mut evil = Scripted(|_addr, q: &Message| {
        let mut resp = Message::response_to(q);
        resp.authorities.push(Record::new(
            name("com"),
            Ttl::from_hours(1),
            RData::Ns(name("ns.com")),
        ));
        resp.additionals.push(Record::new(
            name("ns.com"),
            Ttl::from_hours(1),
            RData::A(Ipv4Addr::new(10, 0, 0, 1)),
        ));
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut evil);
    // First referral root→com is legitimate; com referring to itself is
    // not "strictly deeper" and must stop the walk.
    assert!(out.is_failure());
    assert!(
        cs.metrics().queries_out <= 4,
        "looping referrals must be bounded, sent {}",
        cs.metrics().queries_out
    );
}

#[test]
fn mismatched_transaction_id_is_ignored() {
    // An off-path attacker's forged response with the wrong ID.
    let mut forger = Scripted(|_addr, q: &Message| {
        let mut resp = Message::response_to(q);
        resp.header.id = q.header.id.wrapping_add(1);
        resp.answers.push(Record::new(
            q.question().unwrap().name.clone(),
            Ttl::from_days(7),
            RData::A(Ipv4Addr::new(66, 66, 66, 66)),
        ));
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut forger);
    assert!(out.is_failure());
    assert!(cs
        .cache()
        .get(
            &name("www.victim.com"),
            RecordType::A,
            SimTime::from_secs(1)
        )
        .is_none());
    // The bogus response counts as a failed exchange.
    assert!(cs.metrics().failed_out >= 1);
}

#[test]
fn infinite_cname_chain_terminates() {
    // An authoritative server serving a CNAME loop a -> b -> a.
    let mut evil = Scripted(|_addr, q: &Message| {
        let qname = q.question().unwrap().name.clone();
        let mut resp = Message::response_to(q);
        resp.header.authoritative = true;
        let target = if qname == name("a.loop.test") {
            name("b.loop.test")
        } else {
            name("a.loop.test")
        };
        resp.answers
            .push(Record::new(qname, Ttl::from_hours(1), RData::Cname(target)));
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let out = cs.resolve_a(&name("a.loop.test"), SimTime::ZERO, &mut evil);
    // Must terminate (either failure or a partial chain), never hang.
    assert!(out.is_failure() || !out.from_cache());
    assert!(
        cs.metrics().queries_out < 64,
        "CNAME loops must be depth-bounded"
    );
}

#[test]
fn refused_and_servfail_responses_fail_cleanly() {
    for rcode in [Rcode::Refused, Rcode::ServFail, Rcode::NotImp] {
        let mut upstream = Scripted(move |_addr, q: &Message| {
            let mut resp = Message::response_to(q);
            resp.header.rcode = rcode;
            Some(resp)
        });
        let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
        let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut upstream);
        assert!(out.is_failure(), "{rcode} should fail resolution");
    }
}

#[test]
fn empty_answer_with_no_authority_fails_cleanly() {
    let mut upstream = Scripted(|_addr, q: &Message| Some(Message::response_to(q)));
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut upstream);
    // A bare NoData from the *root* for a deeper name: accepted as a
    // negative answer (NoData) — the root answered, the name has no
    // records — or failure; either way no panic and no cache poison.
    assert!(matches!(out, Outcome::NoData { .. } | Outcome::Fail));
}

#[test]
fn forged_infrastructure_above_bailiwick_rejected() {
    // `com`'s servers try to replace the root's NS set.
    let com_addr = Ipv4Addr::new(10, 0, 0, 1);
    let mut evil = Scripted(move |addr, q: &Message| {
        let mut resp = Message::response_to(q);
        if addr == Ipv4Addr::new(198, 41, 0, 4) {
            // Legitimate root referral to com.
            resp.authorities.push(Record::new(
                name("com"),
                Ttl::from_days(2),
                RData::Ns(name("ns.com")),
            ));
            resp.additionals.push(Record::new(
                name("ns.com"),
                Ttl::from_days(2),
                RData::A(com_addr),
            ));
        } else {
            // com answers, but tries to hijack the root NS set.
            resp.header.authoritative = true;
            resp.answers.push(Record::new(
                q.question().unwrap().name.clone(),
                Ttl::from_hours(1),
                RData::A(Ipv4Addr::new(192, 0, 2, 80)),
            ));
            resp.authorities.push(Record::new(
                Name::root(),
                Ttl::from_days(7),
                RData::Ns(name("evil-root.com")),
            ));
            resp.additionals.push(Record::new(
                name("evil-root.com"),
                Ttl::from_days(7),
                RData::A(Ipv4Addr::new(66, 66, 66, 66)),
            ));
        }
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints());
    let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut evil);
    assert!(out.is_success());
    // Root hints are untouched: the hijacked NS set was above com's
    // bailiwick (and root hints are never replaced anyway).
    let root_entry = cs.infra().get(&Name::root()).unwrap();
    assert_eq!(root_entry.addrs[0].1, Ipv4Addr::new(198, 41, 0, 4));
}

#[test]
fn answers_for_a_different_question_are_not_used() {
    // Server answers with records for a completely different owner name.
    let mut evil = Scripted(|_addr, q: &Message| {
        let mut resp = Message::response_to(q);
        resp.header.authoritative = true;
        resp.answers.push(Record::new(
            name("unrelated.test"),
            Ttl::from_hours(1),
            RData::A(Ipv4Addr::new(66, 66, 66, 66)),
        ));
        Some(resp)
    });
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
    let out = cs.resolve_a(&name("www.victim.com"), SimTime::ZERO, &mut evil);
    assert!(
        out.is_failure(),
        "unrelated answers must not satisfy the query"
    );
}
