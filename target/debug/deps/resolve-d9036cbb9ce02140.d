/root/repo/target/debug/deps/resolve-d9036cbb9ce02140.d: crates/dns-bench/benches/resolve.rs Cargo.toml

/root/repo/target/debug/deps/libresolve-d9036cbb9ce02140.rmeta: crates/dns-bench/benches/resolve.rs Cargo.toml

crates/dns-bench/benches/resolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
