//! Compact interned name storage for internet-scale namespaces.
//!
//! A [`NameTable`] holds many domain names in **one contiguous arena** of
//! length-prefixed lowercase label bytes — the exact representation
//! `dns-core`'s [`Name`] uses — plus a `(u32 offset, u16 len, u8 count)`
//! record per name. [`NameTable::get`] therefore builds a `Name` as a
//! **zero-copy arena view** ([`Name::view`]): one `Arc` refcount bump, no
//! per-name heap allocation, no matter how many million names the table
//! holds.
//!
//! [`InternedNamespace`] is the large-scale sibling of
//! [`Universe`](crate::Universe): the same generator, the same RNG
//! stream, but each [`ZoneSpec`](crate::ZoneSpec) is compressed into a
//! 24-byte record (apex id, primary-server id + address, TTL, target
//! range) the moment it is produced and then dropped — so a million-zone
//! namespace costs tens of megabytes instead of the gigabyte of owned
//! `Name`s a full `Universe` would need. It implements
//! [`TargetSource`](crate::TargetSource), so
//! [`TraceStream`](crate::TraceStream) replays over it directly.

use crate::namespace::ZoneSink;
use crate::stream::TargetSource;
use crate::ZoneSpec;
use dns_core::{Name, Ttl};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Handle to a name stored in a [`NameTable`] (or its builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The id as a dense index (`0..table.len()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where one name lives inside the arena.
#[derive(Debug, Clone, Copy)]
struct NameRef {
    offset: u32,
    len: u16,
    count: u8,
}

/// Accumulates names into a contiguous arena; [`NameTableBuilder::seal`]
/// freezes it into a [`NameTable`].
///
/// Two insertion paths with different memory trade-offs:
///
/// * [`intern`](NameTableBuilder::intern) — probes a hash index and
///   returns the existing id when the exact name was interned before.
/// * [`append`](NameTableBuilder::append) — stores unconditionally and
///   skips the index entirely. The namespace generator uses this: it
///   emits each name exactly once by construction, and at a million
///   zones the dedup index would cost more memory than the arena itself.
///
/// Appended names are invisible to `intern`'s dedup probe; don't mix the
/// two paths for names that may repeat.
#[derive(Debug, Default)]
pub struct NameTableBuilder {
    arena: Vec<u8>,
    refs: Vec<NameRef>,
    /// fnv1a(suffix bytes) → candidate ids, allocated lazily by `intern`.
    dedup: HashMap<u64, Vec<u32>>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl NameTableBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        NameTableBuilder::default()
    }

    fn push_ref(&mut self, name: &Name) -> NameId {
        let bytes = name.as_suffix_bytes();
        let offset = self.arena.len() as u32;
        self.arena.extend_from_slice(bytes);
        let id = self.refs.len() as u32;
        self.refs.push(NameRef {
            offset,
            len: bytes.len() as u16,
            count: name.label_count() as u8,
        });
        NameId(id)
    }

    /// Stores `name` unconditionally and returns its fresh id.
    pub fn append(&mut self, name: &Name) -> NameId {
        self.push_ref(name)
    }

    /// Stores `name` unless its exact bytes were already interned, in
    /// which case the existing id is returned.
    pub fn intern(&mut self, name: &Name) -> NameId {
        let bytes = name.as_suffix_bytes();
        let h = fnv1a(bytes);
        if let Some(candidates) = self.dedup.get(&h) {
            for &id in candidates {
                let r = self.refs[id as usize];
                let at = r.offset as usize;
                if &self.arena[at..at + r.len as usize] == bytes {
                    return NameId(id);
                }
            }
        }
        let id = self.push_ref(name);
        self.dedup.entry(h).or_default().push(id.0);
        id
    }

    /// An owned copy of a stored name (allocates; the sealed table's
    /// [`NameTable::get`] is the zero-copy path).
    pub fn materialize(&self, id: NameId) -> Name {
        let r = self.refs[id.index()];
        let at = r.offset as usize;
        let buf: Arc<[u8]> = Arc::from(&self.arena[at..at + r.len as usize]);
        Name::view(&buf, 0, r.count as usize).expect("builder stores canonical bytes")
    }

    /// Names stored so far.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether no names have been stored.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Arena bytes written so far.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Freezes the arena into an immutable, shareable table.
    pub fn seal(self) -> NameTable {
        NameTable {
            arena: self.arena.into(),
            refs: self.refs.into_boxed_slice(),
        }
    }
}

/// An immutable interned name table: one shared arena, one small record
/// per name, zero-copy [`Name`] views out.
#[derive(Debug, Clone)]
pub struct NameTable {
    arena: Arc<[u8]>,
    refs: Box<[NameRef]>,
}

impl NameTable {
    /// The stored name as a zero-copy view into the shared arena.
    pub fn get(&self, id: NameId) -> Name {
        let r = self.refs[id.index()];
        Name::view(&self.arena, r.offset as usize, r.count as usize)
            .expect("sealed arenas hold canonical bytes")
    }

    /// Number of names in the table.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Size of the label arena in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Total heap footprint estimate: arena plus per-name records.
    pub fn heap_bytes(&self) -> usize {
        self.arena.len() + self.refs.len() * std::mem::size_of::<NameRef>()
    }
}

/// One zone of an [`InternedNamespace`], compressed to ids and ranges.
#[derive(Debug, Clone, Copy)]
struct CompactZone {
    apex: NameId,
    ns0: NameId,
    ns0_addr: u32,
    infra_ttl_secs: u32,
    targets_start: u32,
    targets_len: u16,
}

/// A namespace at interned scale: the same synthetic DNS tree a
/// [`Universe`](crate::Universe) holds, generated by the same seeded
/// process (identical RNG stream), but stored as a [`NameTable`] plus
/// ~24 bytes per zone. Built via
/// [`UniverseSpec::build_interned`](crate::UniverseSpec::build_interned).
#[derive(Debug, Clone)]
pub struct InternedNamespace {
    table: NameTable,
    zones: Box<[CompactZone]>,
    targets: Box<[NameId]>,
    /// `(targets_start, targets_len)` of every zone with at least one
    /// queryable name, in zone order — the [`TargetSource`] group list.
    groups: Box<[(u32, u16)]>,
}

impl InternedNamespace {
    /// Number of zones (including the root).
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Number of interned names.
    pub fn name_count(&self) -> usize {
        self.table.len()
    }

    /// Client-queryable names across all zones.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Size of the shared label arena in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.table.arena_bytes()
    }

    /// Total heap footprint estimate (arena + name records + zone
    /// records + target ids + group ranges).
    pub fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
            + self.zones.len() * std::mem::size_of::<CompactZone>()
            + self.targets.len() * std::mem::size_of::<NameId>()
            + self.groups.len() * std::mem::size_of::<(u32, u16)>()
    }

    /// The apex of zone `idx` (zero-copy arena view).
    pub fn zone_apex(&self, idx: usize) -> Name {
        self.table.get(self.zones[idx].apex)
    }

    /// The infrastructure-record TTL of zone `idx`.
    pub fn zone_infra_ttl(&self, idx: usize) -> Ttl {
        Ttl::from_secs(self.zones[idx].infra_ttl_secs)
    }

    /// The primary name server of zone `idx`: `(name, address)`.
    pub fn zone_primary_ns(&self, idx: usize) -> (Name, Ipv4Addr) {
        let z = &self.zones[idx];
        (self.table.get(z.ns0), Ipv4Addr::from(z.ns0_addr))
    }

    /// The queryable names of zone `idx` (zero-copy arena views).
    pub fn zone_targets(&self, idx: usize) -> impl Iterator<Item = Name> + '_ {
        let z = &self.zones[idx];
        let start = z.targets_start as usize;
        self.targets[start..start + z.targets_len as usize]
            .iter()
            .map(|&id| self.table.get(id))
    }
}

impl TargetSource for InternedNamespace {
    fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn group_len(&self, group: usize) -> usize {
        self.groups[group].1 as usize
    }

    fn target(&self, group: usize, i: usize) -> Name {
        let (start, _) = self.groups[group];
        self.table.get(self.targets[start as usize + i])
    }
}

impl fmt::Display for InternedNamespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interned namespace ({} zones, {} names, {} targets, {} arena bytes)",
            self.zones.len(),
            self.table.len(),
            self.targets.len(),
            self.table.arena_bytes()
        )
    }
}

/// The [`ZoneSink`] that compresses each generated [`ZoneSpec`] into a
/// [`CompactZone`] on the fly, keeping generation memory `O(zones)`.
#[derive(Debug, Default)]
pub(crate) struct InternedSink {
    table: NameTableBuilder,
    zones: Vec<CompactZone>,
    targets: Vec<NameId>,
}

impl InternedSink {
    pub(crate) fn seal(self) -> InternedNamespace {
        let groups: Vec<(u32, u16)> = self
            .zones
            .iter()
            .filter(|z| z.targets_len > 0)
            .map(|z| (z.targets_start, z.targets_len))
            .collect();
        InternedNamespace {
            table: self.table.seal(),
            zones: self.zones.into_boxed_slice(),
            targets: self.targets.into_boxed_slice(),
            groups: groups.into_boxed_slice(),
        }
    }
}

impl ZoneSink for InternedSink {
    fn push(&mut self, spec: ZoneSpec) {
        let targets_start = self.targets.len() as u32;
        // Target order must match Universe::query_targets exactly
        // (data names, then aliases, then the apex when it has an MX) —
        // TraceStream's byte-identity with the materialized generator
        // depends on it.
        for (owner, _) in &spec.data_names {
            let id = self.table.append(owner);
            self.targets.push(id);
        }
        for (alias, _, _) in &spec.cnames {
            let id = self.table.append(alias);
            self.targets.push(id);
        }
        let apex = self.table.append(&spec.apex);
        if spec.has_mx {
            self.targets.push(apex);
        }
        let (ns0_name, ns0_addr) = spec.ns.first().expect("generated zones have servers");
        let ns0 = self.table.append(ns0_name);
        self.zones.push(CompactZone {
            apex,
            ns0,
            ns0_addr: u32::from(*ns0_addr),
            infra_ttl_secs: spec.infra_ttl.as_secs(),
            targets_start,
            targets_len: (self.targets.len() as u32 - targets_start) as u16,
        });
    }

    fn len(&self) -> usize {
        self.zones.len()
    }

    fn apex(&self, idx: usize) -> Name {
        self.table.materialize(self.zones[idx].apex)
    }

    fn ns0(&self, idx: usize) -> (Name, Ipv4Addr) {
        let z = &self.zones[idx];
        (self.table.materialize(z.ns0), Ipv4Addr::from(z.ns0_addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseSpec;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn intern_dedups_append_does_not() {
        let mut b = NameTableBuilder::new();
        let a = b.intern(&n("www.example.com"));
        let b2 = b.intern(&n("www.example.com"));
        assert_eq!(a, b2);
        assert_eq!(b.len(), 1);
        let c = b.append(&n("www.example.com"));
        assert_ne!(a, c);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn sealed_table_round_trips_names_zero_copy() {
        let mut b = NameTableBuilder::new();
        let names = ["www.a.com", "host1.z00042.t017", "a.com", ".", "mx.b.org"];
        let ids: Vec<NameId> = names.iter().map(|s| b.intern(&n(s))).collect();
        let expected_arena = b.arena_len();
        let t = b.seal();
        assert_eq!(t.arena_bytes(), expected_arena);
        for (s, id) in names.iter().zip(ids) {
            let got = t.get(id);
            assert_eq!(got, n(s), "{s}");
            // Views stay in label-wise agreement with parse.
            assert_eq!(got.to_string(), n(s).to_string());
        }
    }

    #[test]
    fn materialize_matches_sealed_get() {
        let mut b = NameTableBuilder::new();
        let id = b.append(&n("deep.sub.zone.example"));
        let owned = b.materialize(id);
        let t = b.seal();
        assert_eq!(owned, t.get(id));
        assert_eq!(owned.label_count(), 4);
    }

    #[test]
    fn interned_namespace_matches_universe_targets() {
        let spec = UniverseSpec::small();
        let universe = spec.build(7);
        let interned = spec.build_interned(7);

        assert_eq!(interned.zone_count(), universe.zone_count());
        assert_eq!(interned.target_count(), universe.query_targets().len());

        // Group structure and every target name must agree with the
        // materialized grouping (query_targets grouped by zone).
        let targets = universe.query_targets();
        let mut groups: Vec<Vec<Name>> = Vec::new();
        let mut current = None;
        for (name, zone_idx) in targets {
            if current != Some(zone_idx) {
                groups.push(Vec::new());
                current = Some(zone_idx);
            }
            groups.last_mut().unwrap().push(name);
        }
        assert_eq!(interned.group_count(), groups.len());
        for (g, group) in groups.iter().enumerate() {
            assert_eq!(interned.group_len(g), group.len(), "group {g}");
            for (i, name) in group.iter().enumerate() {
                assert_eq!(&interned.target(g, i), name, "group {g} target {i}");
            }
        }

        // Zone metadata survives compression.
        for (idx, zspec) in universe.zones().iter().enumerate() {
            assert_eq!(interned.zone_apex(idx), zspec.apex, "zone {idx}");
            assert_eq!(interned.zone_primary_ns(idx), zspec.ns[0]);
            assert_eq!(interned.zone_infra_ttl(idx), zspec.infra_ttl);
        }
    }

    #[test]
    fn interned_namespace_is_far_smaller_than_materialized_specs() {
        let spec = UniverseSpec::small();
        let interned = spec.build_interned(7);
        // ~3k zones: the arena plus records must stay well under a
        // megabyte per thousand zones.
        assert!(
            interned.heap_bytes() < interned.zone_count() * 256,
            "heap {} bytes for {} zones",
            interned.heap_bytes(),
            interned.zone_count()
        );
    }
}
