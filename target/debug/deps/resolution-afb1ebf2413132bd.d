/root/repo/target/debug/deps/resolution-afb1ebf2413132bd.d: crates/dns-resolver/tests/resolution.rs Cargo.toml

/root/repo/target/debug/deps/libresolution-afb1ebf2413132bd.rmeta: crates/dns-resolver/tests/resolution.rs Cargo.toml

crates/dns-resolver/tests/resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
