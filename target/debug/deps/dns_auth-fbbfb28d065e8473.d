/root/repo/target/debug/deps/dns_auth-fbbfb28d065e8473.d: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

/root/repo/target/debug/deps/libdns_auth-fbbfb28d065e8473.rlib: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

/root/repo/target/debug/deps/libdns_auth-fbbfb28d065e8473.rmeta: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

crates/dns-auth/src/lib.rs:
crates/dns-auth/src/server.rs:
crates/dns-auth/src/store.rs:
