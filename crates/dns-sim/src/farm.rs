//! The authoritative server population of a simulated universe.

use dns_auth::AuthServer;
use dns_core::{Message, Name, Ttl};
use dns_trace::Universe;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Every authoritative server in the universe, addressable by IP.
///
/// Zone data is materialised once and shared (`Arc`) among the servers of
/// a zone, so even a 20k-zone universe with two or three servers per zone
/// stays cheap to build and clone.
#[derive(Debug, Clone)]
pub struct ServerFarm {
    servers: HashMap<Ipv4Addr, AuthServer>,
}

impl ServerFarm {
    /// Builds the farm for `universe`, optionally overriding every
    /// non-root zone's infrastructure TTL (the paper's *long-TTL* scheme,
    /// a zone-operator-side change).
    ///
    /// The override rewrites both each zone's own records *and* the
    /// delegation (parent-side) copies, exactly as republishing the zone
    /// would.
    pub fn build(universe: &Universe, long_ttl: Option<Ttl>) -> Self {
        // Apply the operator-side TTL override at the spec level so both
        // child zones and parent delegations pick it up.
        let storage;
        let universe = match long_ttl {
            Some(ttl) => {
                storage = universe.with_infra_ttl_override(ttl);
                &storage
            }
            None => universe,
        };
        let zones = universe.build_all_zones();
        let mut servers: HashMap<Ipv4Addr, AuthServer> = HashMap::new();
        for (addr, apexes) in universe.server_assignments() {
            let display_name = apexes
                .first()
                .and_then(|apex| universe.get(apex))
                .and_then(|spec| {
                    spec.ns
                        .iter()
                        .find(|(_, a)| *a == addr)
                        .map(|(n, _)| n.clone())
                })
                .unwrap_or_else(Name::root);
            let mut server = AuthServer::new(display_name, addr);
            for apex in apexes {
                server.add_zone(Arc::clone(&zones[&apex]));
            }
            servers.insert(addr, server);
        }
        ServerFarm { servers }
    }

    /// Dispatches a query to the server at `addr`; `None` when no server
    /// listens there.
    pub fn handle(&self, addr: Ipv4Addr, query: &Message) -> Option<Message> {
        self.servers.get(&addr).map(|s| s.handle_query(query))
    }

    /// Number of distinct server addresses.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the farm is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The server at `addr`, if any.
    pub fn get(&self, addr: Ipv4Addr) -> Option<&AuthServer> {
        self.servers.get(&addr)
    }
}

impl fmt::Display for ServerFarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server farm ({} servers)", self.servers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Question, RecordType, ResponseKind};
    use dns_trace::UniverseSpec;

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    #[test]
    fn farm_covers_every_server_address() {
        let u = universe();
        let farm = ServerFarm::build(&u, None);
        assert_eq!(farm.len(), u.server_assignments().len());
        for (addr, _) in u.server_assignments() {
            assert!(farm.get(addr).is_some());
        }
    }

    #[test]
    fn root_server_answers_with_referral() {
        let u = universe();
        let farm = ServerFarm::build(&u, None);
        let root_addr = u.root_servers()[0].1;
        // Any TLD-or-deeper name should produce a referral from the root.
        let tld = u
            .zones()
            .iter()
            .find(|z| z.apex.label_count() == 1)
            .unwrap();
        let q = Message::query(1, Question::new(tld.apex.clone(), RecordType::Ns));
        let resp = farm.handle(root_addr, &q).unwrap();
        assert_eq!(resp.kind(), ResponseKind::Referral);
    }

    #[test]
    fn data_names_answer_authoritatively() {
        let u = universe();
        let farm = ServerFarm::build(&u, None);
        let zone = u.zones().iter().find(|z| !z.data_names.is_empty()).unwrap();
        let (host, _) = &zone.data_names[0];
        let addr = zone.ns[0].1;
        let q = Message::query(2, Question::new(host.clone(), RecordType::A));
        let resp = farm.handle(addr, &q).unwrap();
        assert_eq!(resp.kind(), ResponseKind::Answer);
        assert!(resp.header.authoritative);
    }

    #[test]
    fn unknown_address_yields_none() {
        let farm = ServerFarm::build(&universe(), None);
        let q = Message::query(3, Question::new("x.y".parse().unwrap(), RecordType::A));
        assert!(farm.handle(Ipv4Addr::new(203, 0, 113, 1), &q).is_none());
    }

    #[test]
    fn long_ttl_override_rewrites_zone_and_delegation_copies() {
        let u = universe();
        let ttl = Ttl::from_days(5);
        let farm = ServerFarm::build(&u, Some(ttl));
        // Child zone's own NS set carries the override.
        let zone = u
            .zones()
            .iter()
            .find(|z| z.apex.label_count() == 2)
            .unwrap();
        let q = Message::query(4, Question::new(zone.apex.clone(), RecordType::Ns));
        let resp = farm.handle(zone.ns[0].1, &q).unwrap();
        assert!(
            resp.answers.iter().all(|r| r.ttl() == ttl),
            "child NS records must carry the long TTL"
        );
        // Parent referral copy does too.
        let parent = u.get(zone.parent.as_ref().unwrap()).unwrap();
        let q = Message::query(
            5,
            Question::new(zone.data_names[0].0.clone(), RecordType::A),
        );
        let resp = farm.handle(parent.ns[0].1, &q).unwrap();
        assert_eq!(resp.kind(), ResponseKind::Referral);
        assert!(resp.authorities.iter().all(|r| r.ttl() == ttl));
    }

    #[test]
    fn shared_servers_serve_multiple_zones() {
        let u = universe();
        let farm = ServerFarm::build(&u, None);
        let shared = u
            .server_assignments()
            .into_iter()
            .find(|(_, zones)| zones.len() > 1)
            .expect("universe has shared servers");
        let (addr, apexes) = shared;
        for apex in apexes {
            let spec = u.get(&apex).unwrap();
            if spec.data_names.is_empty() {
                continue;
            }
            let q = Message::query(
                6,
                Question::new(spec.data_names[0].0.clone(), RecordType::A),
            );
            let resp = farm.handle(addr, &q).unwrap();
            assert_eq!(resp.kind(), ResponseKind::Answer, "zone {apex}");
        }
    }
}
