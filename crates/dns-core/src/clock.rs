//! Virtual time for trace-driven simulation.
//!
//! The resolver and simulator never read the wall clock: every operation is
//! parameterised by a [`SimTime`]. This keeps the experiments deterministic
//! and lets the simulator fast-forward through multi-day traces.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
pub const MINUTE: u64 = 60;
/// Seconds in one hour.
pub const HOUR: u64 = 3_600;
/// Seconds in one day — the constant the paper's adaptive policies use.
pub const DAY: u64 = 86_400;

/// A point in simulated time, in whole seconds since the simulation epoch.
///
/// `SimTime` is ordered, cheap to copy and supports the arithmetic the
/// resolver needs (`time + duration`, `time - time`).
///
/// ```rust
/// use dns_core::{SimTime, SimDuration};
/// let t = SimTime::from_days(6) + SimDuration::from_hours(3);
/// assert_eq!(t.as_secs(), 6 * 86_400 + 3 * 3_600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never expires".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time `mins` minutes after the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * MINUTE)
    }

    /// Creates a time `hours` hours after the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * HOUR)
    }

    /// Creates a time `days` days after the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * DAY)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0 / DAY;
        let rem = self.0 % DAY;
        let (h, m, s) = (rem / HOUR, (rem % HOUR) / MINUTE, rem % MINUTE);
        write!(f, "{days}d{h:02}:{m:02}:{s:02}")
    }
}

/// A span of simulated time in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// A duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MINUTE)
    }

    /// A duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * HOUR)
    }

    /// A duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * DAY)
    }

    /// Length in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Length in fractional days — used when reporting time-gap CDFs.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / DAY as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl From<Ttl> for SimDuration {
    fn from(ttl: Ttl) -> Self {
        SimDuration(ttl.as_secs() as u64)
    }
}

/// A DNS time-to-live value, in seconds.
///
/// TTLs are 32-bit on the wire (RFC 1035 §3.2.1). The resolver caches a
/// record until `received_at + ttl`.
///
/// ```rust
/// use dns_core::Ttl;
/// assert_eq!(Ttl::from_days(1).as_secs(), 86_400);
/// assert!(Ttl::from_mins(5) < Ttl::from_hours(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ttl(u32);

impl Ttl {
    /// The zero TTL ("do not cache").
    pub const ZERO: Ttl = Ttl(0);
    /// The maximum representable TTL.
    pub const MAX: Ttl = Ttl(u32::MAX);

    /// A TTL of `secs` seconds.
    pub const fn from_secs(secs: u32) -> Self {
        Ttl(secs)
    }

    /// A TTL of `mins` minutes.
    pub const fn from_mins(mins: u32) -> Self {
        Ttl(mins * MINUTE as u32)
    }

    /// A TTL of `hours` hours.
    pub const fn from_hours(hours: u32) -> Self {
        Ttl(hours * HOUR as u32)
    }

    /// A TTL of `days` days.
    pub const fn from_days(days: u32) -> Self {
        Ttl(days * DAY as u32)
    }

    /// Seconds of lifetime.
    pub const fn as_secs(self) -> u32 {
        self.0
    }

    /// The larger of `self` and `other` — used by the long-TTL scheme,
    /// which never *lowers* an operator-chosen TTL.
    pub fn max(self, other: Ttl) -> Ttl {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Absolute expiry instant for a record received at `at`.
    pub fn expires_at(self, at: SimTime) -> SimTime {
        at + SimDuration::from(self)
    }
}

impl fmt::Display for Ttl {
    /// Human formatting: `2d`, `4h`, `30m`, `45s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 as u64;
        if s >= DAY && s.is_multiple_of(DAY) {
            write!(f, "{}d", s / DAY)
        } else if s >= HOUR && s.is_multiple_of(HOUR) {
            write!(f, "{}h", s / HOUR)
        } else if s >= MINUTE && s.is_multiple_of(MINUTE) {
            write!(f, "{}m", s / MINUTE)
        } else {
            write!(f, "{}s", s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t0 = SimTime::from_days(6);
        let t1 = t0 + SimDuration::from_hours(3);
        assert_eq!((t1 - t0).as_secs(), 3 * HOUR);
        // Saturating subtraction: earlier - later == 0.
        assert_eq!((t0 - t1).as_secs(), 0);
    }

    #[test]
    fn simtime_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_days(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ttl_expiry() {
        let received = SimTime::from_hours(1);
        let exp = Ttl::from_hours(4).expires_at(received);
        assert_eq!(exp, SimTime::from_hours(5));
    }

    #[test]
    fn ttl_max_combinator() {
        assert_eq!(
            Ttl::from_days(3).max(Ttl::from_hours(12)),
            Ttl::from_days(3)
        );
        assert_eq!(
            Ttl::from_hours(12).max(Ttl::from_days(3)),
            Ttl::from_days(3)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            SimTime::from_secs(90_061 + 86_400).to_string(),
            "2d01:01:01"
        );
        assert_eq!(Ttl::from_days(2).to_string(), "2d");
        assert_eq!(Ttl::from_hours(4).to_string(), "4h");
        assert_eq!(Ttl::from_mins(30).to_string(), "30m");
        assert_eq!(Ttl::from_secs(45).to_string(), "45s");
    }

    #[test]
    fn duration_as_days() {
        assert!((SimDuration::from_hours(12).as_days_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(5) < SimTime::from_mins(1));
        assert!(SimDuration::from_days(1) > SimDuration::from_hours(23));
    }
}
