/root/repo/target/debug/deps/dns_resilience-fa6a490026e14156.d: src/lib.rs

/root/repo/target/debug/deps/dns_resilience-fa6a490026e14156: src/lib.rs

src/lib.rs:
