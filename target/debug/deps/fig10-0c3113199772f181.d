/root/repo/target/debug/deps/fig10-0c3113199772f181.d: crates/dns-bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-0c3113199772f181: crates/dns-bench/src/bin/fig10.rs

crates/dns-bench/src/bin/fig10.rs:
