/root/repo/target/debug/deps/dnssec_chain-88578899f619235b.d: crates/dns-resolver/tests/dnssec_chain.rs

/root/repo/target/debug/deps/dnssec_chain-88578899f619235b: crates/dns-resolver/tests/dnssec_chain.rs

crates/dns-resolver/tests/dnssec_chain.rs:
