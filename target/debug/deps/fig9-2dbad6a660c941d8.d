/root/repo/target/debug/deps/fig9-2dbad6a660c941d8.d: crates/dns-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-2dbad6a660c941d8: crates/dns-bench/src/bin/fig9.rs

crates/dns-bench/src/bin/fig9.rs:
