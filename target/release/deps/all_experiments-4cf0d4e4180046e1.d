/root/repo/target/release/deps/all_experiments-4cf0d4e4180046e1.d: crates/dns-bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-4cf0d4e4180046e1: crates/dns-bench/src/bin/all_experiments.rs

crates/dns-bench/src/bin/all_experiments.rs:
