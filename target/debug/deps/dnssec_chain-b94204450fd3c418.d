/root/repo/target/debug/deps/dnssec_chain-b94204450fd3c418.d: crates/dns-resolver/tests/dnssec_chain.rs Cargo.toml

/root/repo/target/debug/deps/libdnssec_chain-b94204450fd3c418.rmeta: crates/dns-resolver/tests/dnssec_chain.rs Cargo.toml

crates/dns-resolver/tests/dnssec_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
