//! Resilience tuning: sweep renewal credits and long-TTL values on one
//! workload to pick an operating point — a miniature of Figures 6–11.
//!
//! ```sh
//! cargo run --release --example resilience_tuning
//! ```

use dns_resilience::prelude::*;
use std::sync::Arc;

fn main() {
    let universe = UniverseSpec::small().build(7);
    let trace = Arc::new(TraceSpec::demo().generate(&universe, 42));
    let start = SimTime::from_days(6);
    let duration = [SimDuration::from_hours(6)];

    let fail = |scheme: Scheme| {
        ExperimentSpec::new(&universe)
            .trace(Arc::clone(&trace))
            .scheme(scheme)
            .attack(start, &duration)
            .run()
            .attacks[0]
            .sr_failed_pct
    };

    // Sweep 1: renewal credit, for the plain and adaptive LFU policies.
    let mut credits = Table::new(vec!["credit", "LFU", "A-LFU"]);
    credits.numeric();
    for c in [1u32, 3, 5] {
        credits.row(vec![
            c.to_string(),
            format!("{:.2}", fail(Scheme::renewal(RenewalPolicy::lfu(c)))),
            format!(
                "{:.2}",
                fail(Scheme::renewal(RenewalPolicy::adaptive_lfu(c)))
            ),
        ]);
    }
    println!("SR failure % by renewal credit (6h root+TLD attack)");
    println!("{credits}");

    // Sweep 2: long-TTL value, alone and combined with A-LFU_3.
    let mut ttls = Table::new(vec!["IRR TTL", "refresh+longTTL", "combined"]);
    ttls.numeric();
    for days in [1u32, 3, 5, 7] {
        let ttl = Ttl::from_days(days);
        ttls.row(vec![
            format!("{days}d"),
            format!("{:.2}", fail(Scheme::refresh_long_ttl(ttl))),
            format!(
                "{:.2}",
                fail(Scheme::combined(RenewalPolicy::adaptive_lfu(3), ttl))
            ),
        ]);
    }
    println!("SR failure % by infrastructure-record TTL");
    println!("{ttls}");

    println!("Reading the tables: adaptive credits beat plain ones because they");
    println!("normalise by each zone's TTL; past ~3 days, longer TTLs stop");
    println!("helping because the expiry-to-next-query gaps are already covered.");
}
