/root/repo/target/debug/deps/discussion_maxdamage-19af69bc72581f42.d: crates/dns-bench/src/bin/discussion_maxdamage.rs

/root/repo/target/debug/deps/discussion_maxdamage-19af69bc72581f42: crates/dns-bench/src/bin/discussion_maxdamage.rs

crates/dns-bench/src/bin/discussion_maxdamage.rs:
