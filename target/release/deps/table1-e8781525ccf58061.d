/root/repo/target/release/deps/table1-e8781525ccf58061.d: crates/dns-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e8781525ccf58061: crates/dns-bench/src/bin/table1.rs

crates/dns-bench/src/bin/table1.rs:
