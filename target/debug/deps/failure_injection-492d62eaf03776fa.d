/root/repo/target/debug/deps/failure_injection-492d62eaf03776fa.d: crates/dns-sim/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-492d62eaf03776fa: crates/dns-sim/tests/failure_injection.rs

crates/dns-sim/tests/failure_injection.rs:
