/root/repo/target/debug/deps/adversarial-ad80a7a56d2d8aa6.d: crates/dns-resolver/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-ad80a7a56d2d8aa6: crates/dns-resolver/tests/adversarial.rs

crates/dns-resolver/tests/adversarial.rs:
