/root/repo/target/debug/deps/policy-fd280662e7f395d5.d: crates/dns-bench/benches/policy.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy-fd280662e7f395d5.rmeta: crates/dns-bench/benches/policy.rs Cargo.toml

crates/dns-bench/benches/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
