/root/repo/target/debug/deps/dns_trace-b865ba25ffe9f30f.d: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

/root/repo/target/debug/deps/dns_trace-b865ba25ffe9f30f: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs

crates/dns-trace/src/lib.rs:
crates/dns-trace/src/io.rs:
crates/dns-trace/src/namespace.rs:
crates/dns-trace/src/spec.rs:
crates/dns-trace/src/trace.rs:
crates/dns-trace/src/ttl_model.rs:
crates/dns-trace/src/workload.rs:
crates/dns-trace/src/zipf.rs:
