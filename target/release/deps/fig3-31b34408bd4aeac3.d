/root/repo/target/release/deps/fig3-31b34408bd4aeac3.d: crates/dns-bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-31b34408bd4aeac3: crates/dns-bench/src/bin/fig3.rs

crates/dns-bench/src/bin/fig3.rs:
