//! The simulation driver: trace replay with interleaved renewal events,
//! occupancy sampling and cache maintenance.

use crate::{CompiledAttack, ServerFarm, SimNet};
use dns_core::{SimDuration, SimTime, Ttl};
use dns_resolver::{
    CacheBackend, CachingServer, GapSample, LocalBackend, OccupancySample, ResolverConfig,
    ResolverMetrics, RootHints,
};
use dns_trace::{QueryEvent, QueryStream, Trace, TraceCursor, Universe};
use std::fmt;
use std::sync::Arc;

/// The single source of scheme display labels, shared by
/// [`SimConfig::label`] and [`Scheme::label`](crate::experiment::Scheme):
/// the resolver label plus a `+longttl{ttl}` suffix when the
/// operator-side long-TTL scheme is active
/// (`refresh+A-LFU_3+longttl3d`, …). Memoisation keys in `dns-bench` and
/// every CSV's scheme column go through this one function, so the format
/// must stay stable.
pub fn scheme_label(resolver: &ResolverConfig, long_ttl: Option<Ttl>) -> String {
    match long_ttl {
        Some(ttl) => format!("{}+longttl{}", resolver.label(), ttl),
        None => resolver.label(),
    }
}

/// Configuration of one simulation run: the resolver scheme plus the
/// zone-operator-side long-TTL override and sampling cadence.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Caching-server configuration (refresh / renewal schemes).
    pub resolver: ResolverConfig,
    /// Long-TTL override applied to every zone's infrastructure records.
    pub long_ttl: Option<Ttl>,
    /// Occupancy sampling interval (`None` disables sampling).
    pub occupancy_interval: Option<SimDuration>,
    /// How often expired cache entries are purged.
    pub purge_interval: SimDuration,
}

impl SimConfig {
    /// A run with the given resolver scheme and default cadences.
    pub fn new(resolver: ResolverConfig) -> Self {
        SimConfig {
            resolver,
            long_ttl: None,
            occupancy_interval: None,
            purge_interval: SimDuration::from_hours(6),
        }
    }

    /// Applies the operator-side long-TTL scheme.
    pub fn long_ttl(mut self, ttl: Ttl) -> Self {
        self.long_ttl = Some(ttl);
        self
    }

    /// Enables occupancy sampling every `interval`.
    pub fn occupancy_every(mut self, interval: SimDuration) -> Self {
        self.occupancy_interval = Some(interval);
        self
    }

    /// Human-readable scheme label (`refresh+A-LFU_3+longttl3d`, …); see
    /// [`scheme_label`].
    pub fn label(&self) -> String {
        scheme_label(&self.resolver, self.long_ttl)
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Summary of one finished run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme label.
    pub scheme: String,
    /// Trace label.
    pub trace: String,
    /// Final counters.
    pub metrics: ResolverMetrics,
    /// Occupancy series (empty unless sampling was enabled).
    pub occupancy: Vec<OccupancySample>,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: {}", self.scheme, self.trace, self.metrics)
    }
}

/// Where replayed queries come from: a materialized [`Trace`] indexed in
/// place, or a [`QueryStream`] pulled with a lookahead of exactly one
/// event — `O(1)` replay memory at any trace length.
#[derive(Debug)]
enum Feed {
    Trace { trace: Arc<Trace>, pos: usize },
    Stream(StreamFeed),
}

struct StreamFeed {
    stream: Box<dyn QueryStream>,
    /// The next undelivered event (bounded lookahead of one).
    next: Option<QueryEvent>,
    /// Stream position *before* `next` — resuming from it regenerates
    /// the buffered event first, so a paused simulation's cursor is
    /// exact.
    cursor: TraceCursor,
    pulled: u64,
}

impl StreamFeed {
    fn new(mut stream: Box<dyn QueryStream>) -> Self {
        let cursor = stream.cursor();
        // Count from the trace start, not the resume point, so a fork
        // resumed mid-trace reports `processed()` like a materialized
        // replay would.
        let pulled = cursor.emitted();
        let next = stream.next_event();
        StreamFeed {
            stream,
            next,
            cursor,
            pulled,
        }
    }
}

impl fmt::Debug for StreamFeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamFeed")
            .field("trace", &self.stream.trace_name())
            .field("pulled", &self.pulled)
            .finish_non_exhaustive()
    }
}

impl Feed {
    /// Timestamp of the next query, if any.
    fn peek_at(&self) -> Option<SimTime> {
        match self {
            Feed::Trace { trace, pos } => trace.queries.get(*pos).map(|q| q.at),
            Feed::Stream(s) => s.next.as_ref().map(|q| q.at),
        }
    }

    /// Delivers the next query.
    fn pop(&mut self) -> Option<QueryEvent> {
        match self {
            Feed::Trace { trace, pos } => {
                let q = trace.queries.get(*pos)?.clone();
                *pos += 1;
                Some(q)
            }
            Feed::Stream(s) => {
                let q = s.next.take()?;
                s.cursor = s.stream.cursor();
                s.next = s.stream.next_event();
                s.pulled += 1;
                Some(q)
            }
        }
    }

    fn name(&self) -> &str {
        match self {
            Feed::Trace { trace, .. } => &trace.name,
            Feed::Stream(s) => s.stream.trace_name(),
        }
    }

    fn days(&self) -> u64 {
        match self {
            Feed::Trace { trace, .. } => trace.days,
            Feed::Stream(s) => s.stream.days(),
        }
    }

    fn processed(&self) -> usize {
        match self {
            Feed::Trace { pos, .. } => *pos,
            Feed::Stream(s) => s.pulled as usize,
        }
    }

    fn total_queries(&self) -> u64 {
        match self {
            Feed::Trace { trace, .. } => trace.queries.len() as u64,
            Feed::Stream(s) => s.stream.total_queries(),
        }
    }

    /// The latest virtual time replay must reach to cover every query
    /// and the full trace horizon. Streamed events never leave the
    /// `days` horizon by construction (hour < days × 24, offset < 1 h).
    fn end_horizon(&self) -> SimTime {
        let horizon = SimTime::from_days(self.days());
        match self {
            Feed::Trace { trace, .. } => trace
                .queries
                .last()
                .map(|q| q.at)
                .unwrap_or(horizon)
                .max(horizon),
            Feed::Stream(_) => horizon,
        }
    }
}

impl Clone for Feed {
    /// Materialized feeds clone for free (`Arc` bump); streaming feeds
    /// cannot (`Box<dyn QueryStream>`) — fork a streaming simulation via
    /// [`Simulation::fork_streaming`] with a resumed stream instead.
    fn clone(&self) -> Feed {
        match self {
            Feed::Trace { trace, pos } => Feed::Trace {
                trace: Arc::clone(trace),
                pos: *pos,
            },
            Feed::Stream(_) => panic!(
                "a streaming simulation cannot be cloned; resume a stream \
                 from stream_cursor() and call fork_streaming()"
            ),
        }
    }
}

/// A deterministic trace replay: one caching server resolving a trace's
/// queries against the universe's server farm, with renewal timers firing
/// between queries.
///
/// Replay can be paused at any virtual time ([`Simulation::run_until`])
/// and forked ([`Simulation::fork`]); the attack-duration sweeps share a
/// single warmed-up simulation this way.
///
/// The query source is either a materialized [`Trace`] or a boxed
/// [`QueryStream`] ([`Simulation::shared_streaming`]) replayed with a
/// lookahead of one event; streamed replay never holds the trace in
/// memory.
#[derive(Debug, Clone)]
pub struct Simulation<B: CacheBackend = LocalBackend> {
    config: SimConfig,
    cs: CachingServer<B>,
    net: SimNet,
    feed: Feed,
    now: SimTime,
    occupancy: Vec<OccupancySample>,
    next_occupancy: Option<SimTime>,
    next_purge: SimTime,
    /// Adversary-tagged queries replayed / failed (see
    /// [`crate::adversary::ADVERSARY_CLIENT`]); zero without an
    /// adversary feed.
    adversary: AdversaryStats,
}

/// Attacker-side accounting for one replay: queries tagged with
/// [`crate::adversary::ADVERSARY_CLIENT`] are counted here *in addition
/// to* the resolver's own metrics, so legitimate-traffic failure ratios
/// can be recovered by subtraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Adversary queries replayed.
    pub sent: u64,
    /// Adversary queries whose resolution failed (for NXNS floods this
    /// is nearly all of them — the bombs never resolve).
    pub failed: u64,
}

impl Simulation {
    /// Builds a simulation: materialises the farm (applying any long-TTL
    /// override) and seeds the resolver with the universe's root hints.
    pub fn new(universe: &Universe, trace: Trace, config: SimConfig) -> Self {
        let farm = ServerFarm::build(universe, config.long_ttl);
        Simulation::with_farm(farm, universe, trace, config)
    }

    /// Like [`Simulation::new`] but reuses an already-built farm — farm
    /// construction dominates setup cost, so sweeps that run many schemes
    /// over the same universe build each farm once and clone it here.
    ///
    /// The caller is responsible for passing a farm built with the same
    /// `long_ttl` as `config` (see [`ServerFarm::build`]); the label and
    /// behaviour diverge otherwise.
    pub fn with_farm(
        farm: ServerFarm,
        universe: &Universe,
        trace: Trace,
        config: SimConfig,
    ) -> Self {
        Simulation::shared(Arc::new(farm), universe, Arc::new(trace), config)
    }

    /// The zero-copy constructor behind the sweep engine: both the farm
    /// and the trace are immutable during replay, so concurrent runs over
    /// the same universe share one allocation of each instead of cloning.
    ///
    /// As with [`Simulation::with_farm`], the farm must have been built
    /// with the same `long_ttl` as `config`.
    pub fn shared(
        farm: Arc<ServerFarm>,
        universe: &Universe,
        trace: Arc<Trace>,
        config: SimConfig,
    ) -> Self {
        Simulation::shared_with_backend(farm, universe, trace, config, LocalBackend::new())
    }

    /// Builds a streaming replay: queries are pulled from `stream` one
    /// at a time instead of a materialized trace, so replay memory stays
    /// `O(1)` in trace length (the sweep engine's path to month-long,
    /// million-zone traces).
    pub fn streaming(universe: &Universe, stream: Box<dyn QueryStream>, config: SimConfig) -> Self {
        let farm = ServerFarm::build(universe, config.long_ttl);
        Simulation::shared_streaming(Arc::new(farm), universe, stream, config)
    }

    /// Like [`Simulation::streaming`] over an already-built farm; the
    /// farm must match `config.long_ttl` (see [`Simulation::with_farm`]).
    pub fn shared_streaming(
        farm: Arc<ServerFarm>,
        universe: &Universe,
        stream: Box<dyn QueryStream>,
        config: SimConfig,
    ) -> Self {
        let hints = RootHints::new(universe.root_servers().to_vec());
        let cs = CachingServer::with_backend(config.resolver, hints, LocalBackend::new());
        let next_occupancy = config.occupancy_interval.map(|_| SimTime::ZERO);
        let next_purge = SimTime::ZERO + config.purge_interval;
        Simulation {
            config,
            cs,
            net: SimNet::with_shared(farm),
            feed: Feed::Stream(StreamFeed::new(stream)),
            now: SimTime::ZERO,
            occupancy: Vec::new(),
            next_occupancy,
            next_purge,
            adversary: AdversaryStats::default(),
        }
    }
}

impl<B: CacheBackend> Simulation<B> {
    /// Like [`Simulation::shared`], over an explicit cache backend — the
    /// entry point for replaying a trace against a shared
    /// [`ShardedCache`](dns_resolver::ShardedCache), e.g. from several
    /// threads replaying disjoint trace slices against one cache.
    pub fn shared_with_backend(
        farm: Arc<ServerFarm>,
        universe: &Universe,
        trace: Arc<Trace>,
        config: SimConfig,
        backend: B,
    ) -> Self {
        let hints = RootHints::new(universe.root_servers().to_vec());
        let cs = CachingServer::with_backend(config.resolver, hints, backend);
        let next_occupancy = config.occupancy_interval.map(|_| SimTime::ZERO);
        let next_purge = SimTime::ZERO + config.purge_interval;
        Simulation {
            config,
            cs,
            net: SimNet::with_shared(farm),
            feed: Feed::Trace { trace, pos: 0 },
            now: SimTime::ZERO,
            occupancy: Vec::new(),
            next_occupancy,
            next_purge,
            adversary: AdversaryStats::default(),
        }
    }

    /// Installs the attack schedule (replacing any previous one).
    pub fn set_attack(&mut self, attack: CompiledAttack) {
        self.net.set_attack(attack);
    }

    /// Enables deterministic random packet loss on the simulated network
    /// (see [`SimNet::set_loss`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn set_loss(&mut self, rate: f64, seed: u64) {
        self.net.set_loss(rate, seed);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Resolver counters so far.
    pub fn metrics(&self) -> ResolverMetrics {
        *self.cs.metrics()
    }

    /// The caching server under test.
    pub fn cs(&self) -> &CachingServer<B> {
        &self.cs
    }

    /// Mutable access to the caching server (occupancy sampling advances
    /// cache expiry heaps, so it needs `&mut`).
    pub fn cs_mut(&mut self) -> &mut CachingServer<B> {
        &mut self.cs
    }

    /// The simulated network.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The materialized trace being replayed (`None` for streaming
    /// replays, which never hold one).
    pub fn trace(&self) -> Option<&Trace> {
        match &self.feed {
            Feed::Trace { trace, .. } => Some(trace),
            Feed::Stream(_) => None,
        }
    }

    /// For a streaming replay, the resumable position of the next
    /// unprocessed query (`None` for materialized replays). Resuming a
    /// stream from this cursor and [`Simulation::fork_streaming`]-ing
    /// continues exactly where this simulation paused.
    pub fn stream_cursor(&self) -> Option<TraceCursor> {
        match &self.feed {
            Feed::Trace { .. } => None,
            Feed::Stream(s) => Some(s.cursor.clone()),
        }
    }

    /// Queries processed so far.
    pub fn processed(&self) -> usize {
        self.feed.processed()
    }

    /// Attacker-side accounting: adversary-tagged queries replayed and
    /// failed so far (all zero unless the feed carries adversary
    /// events).
    pub fn adversary_stats(&self) -> AdversaryStats {
        self.adversary
    }

    /// Occupancy samples collected so far.
    pub fn occupancy(&self) -> &[OccupancySample] {
        &self.occupancy
    }

    /// Drains the Figure-3 gap samples collected so far.
    pub fn take_gap_samples(&mut self) -> Vec<GapSample> {
        self.cs.take_gap_samples()
    }

    /// An independent copy sharing the (immutable) trace — used to sweep
    /// attack durations from one warmed-up state.
    ///
    /// # Panics
    ///
    /// Panics on a streaming replay (the stream cannot be cloned); use
    /// [`Simulation::fork_streaming`] with a stream resumed from
    /// [`Simulation::stream_cursor`] instead.
    pub fn fork(&self) -> Simulation<B>
    where
        B: Clone,
    {
        self.clone()
    }

    /// Forks a streaming replay: an independent copy of the warmed-up
    /// state that continues from `stream` — normally one resumed from
    /// [`Simulation::stream_cursor`] so the fork replays exactly the
    /// queries this simulation has not yet processed.
    pub fn fork_streaming(&self, stream: Box<dyn QueryStream>) -> Simulation<B>
    where
        B: Clone,
    {
        Simulation {
            config: self.config.clone(),
            cs: self.cs.clone(),
            net: self.net.clone(),
            feed: Feed::Stream(StreamFeed::new(stream)),
            now: self.now,
            occupancy: self.occupancy.clone(),
            next_occupancy: self.next_occupancy,
            next_purge: self.next_purge,
            adversary: self.adversary,
        }
    }

    /// Forks a materialized replay onto a *different* trace: an
    /// independent copy of the warmed-up state that replays `trace` from
    /// its start (event timestamps are absolute, so the caller passes
    /// the unreplayed tail — typically with adversary events merged in,
    /// see [`crate::adversary::merge_into_tail`]).
    pub fn fork_with_trace(&self, trace: Arc<Trace>) -> Simulation<B>
    where
        B: Clone,
    {
        Simulation {
            config: self.config.clone(),
            cs: self.cs.clone(),
            net: self.net.clone(),
            feed: Feed::Trace { trace, pos: 0 },
            now: self.now,
            occupancy: self.occupancy.clone(),
            next_occupancy: self.next_occupancy,
            next_purge: self.next_purge,
            adversary: self.adversary,
        }
    }

    /// Replays all queries with `at < until`, firing due renewal timers,
    /// occupancy samples and purges in timestamp order, then advances the
    /// clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(at) = self.feed.peek_at() {
            if at >= until {
                break;
            }
            self.advance_background(at);
            let event = self.feed.pop().expect("peeked event exists");
            let outcome = self.cs.resolve(&event.question, at, &mut self.net);
            if event.client == crate::adversary::ADVERSARY_CLIENT {
                self.adversary.sent += 1;
                if outcome.is_failure() {
                    self.adversary.failed += 1;
                }
            }
            self.now = at;
        }
        self.advance_background(until);
        self.now = until;
    }

    /// Replays the remainder of the trace.
    pub fn run_to_end(&mut self) {
        self.run_until(self.feed.end_horizon() + SimDuration::from_secs(1));
    }

    /// Produces the run summary.
    pub fn report(&self) -> SimReport {
        SimReport {
            scheme: self.config.label(),
            trace: self.feed.name().to_string(),
            metrics: self.metrics(),
            occupancy: self.occupancy.clone(),
        }
    }

    /// Fires every background event (renewal, occupancy sample, purge) due
    /// at or before `t`, each at its own virtual time.
    fn advance_background(&mut self, t: SimTime) {
        loop {
            let next_marker = [Some(self.next_purge), self.next_occupancy]
                .into_iter()
                .flatten()
                .filter(|&m| m <= t)
                .min();
            let Some(marker) = next_marker else {
                self.cs.run_renewals_until(t, &mut self.net);
                return;
            };
            self.cs.run_renewals_until(marker, &mut self.net);
            if self.next_occupancy == Some(marker) {
                self.occupancy.push(self.cs.occupancy(marker));
                let interval = self
                    .config
                    .occupancy_interval
                    .expect("sampling enabled if scheduled");
                self.next_occupancy = Some(marker + interval);
            }
            if self.next_purge == marker {
                self.cs.purge(marker);
                self.next_purge = marker + self.config.purge_interval;
            }
        }
    }
}

impl<B: CacheBackend> fmt::Display for Simulation<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation {} on {} at {} ({}/{} queries)",
            self.config.label(),
            self.feed.name(),
            self.now,
            self.feed.processed(),
            self.feed.total_queries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackScenario;
    use dns_resolver::RenewalPolicy;
    use dns_trace::{TraceSpec, UniverseSpec, UniverseTargets};

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    fn small_trace(u: &Universe) -> Trace {
        TraceSpec::demo().scaled(0.1).generate(u, 5)
    }

    #[test]
    fn replay_processes_every_query() {
        let u = universe();
        let t = small_trace(&u);
        let n = t.queries.len();
        let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        sim.run_to_end();
        assert_eq!(sim.processed(), n);
        assert_eq!(sim.metrics().queries_in, n as u64);
        // Without an attack nothing fails.
        assert_eq!(sim.metrics().failed_in, 0);
    }

    #[test]
    fn run_until_is_incremental() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        sim.run_until(SimTime::from_days(3));
        let mid = sim.processed();
        assert!(mid > 0);
        sim.run_to_end();
        assert!(sim.processed() > mid);
    }

    #[test]
    fn deterministic_replay() {
        let u = universe();
        let t = small_trace(&u);
        let run = || {
            let mut sim = Simulation::new(&u, t.clone(), SimConfig::new(ResolverConfig::vanilla()));
            sim.run_to_end();
            sim.metrics()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fork_diverges_independently() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        sim.run_until(SimTime::from_days(6));
        let mut attacked = sim.fork();
        attacked.set_attack(
            AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(24))
                .compile(&u),
        );
        sim.run_to_end();
        attacked.run_to_end();
        assert_eq!(sim.metrics().failed_in, 0);
        assert!(attacked.metrics().failed_in > 0);
        assert!(attacked.metrics().failed_in < attacked.metrics().queries_in);
    }

    #[test]
    fn attack_increases_failures_and_schemes_reduce_them() {
        let u = universe();
        let t = small_trace(&u);
        let attack =
            AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(12));
        let run = |config: SimConfig| {
            let mut sim = Simulation::new(&u, t.clone(), config);
            sim.set_attack(attack.compile(&u));
            sim.run_until(SimTime::from_days(6));
            let before = sim.metrics();
            sim.run_until(SimTime::from_days(6) + SimDuration::from_hours(12));
            let window = sim.metrics() - before;
            window.failed_in_ratio()
        };
        let vanilla = run(SimConfig::new(ResolverConfig::vanilla()));
        let refresh = run(SimConfig::new(ResolverConfig::with_refresh()));
        let combined = run(SimConfig::new(ResolverConfig::with_renewal(
            RenewalPolicy::adaptive_lfu(3),
        ))
        .long_ttl(Ttl::from_days(3)));
        assert!(vanilla > 0.0, "vanilla must fail under attack");
        assert!(refresh <= vanilla, "refresh {refresh} vs vanilla {vanilla}");
        assert!(
            combined < vanilla,
            "combined {combined} vs vanilla {vanilla}"
        );
    }

    #[test]
    fn streaming_replay_matches_materialized() {
        let u = universe();
        let t = small_trace(&u);
        let n = t.queries.len();
        let mut mat = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
        mat.run_to_end();

        let wb = TraceSpec::demo().scaled(0.1).workload();
        let stream = Box::new(wb.stream(UniverseTargets::new(&u), 5));
        let mut streamed =
            Simulation::streaming(&u, stream, SimConfig::new(ResolverConfig::vanilla()));
        assert!(streamed.trace().is_none());
        streamed.run_to_end();

        assert_eq!(streamed.processed(), n);
        assert_eq!(mat.metrics(), streamed.metrics());
    }

    #[test]
    fn fork_streaming_from_cursor_matches_materialized_fork() {
        let u = universe();
        let targets = UniverseTargets::new(&u);
        let wb = TraceSpec::demo().scaled(0.1).workload();
        let attack =
            AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(24));

        // Materialized reference: warm, fork, attack.
        let mut warm = Simulation::new(
            &u,
            small_trace(&u),
            SimConfig::new(ResolverConfig::vanilla()),
        );
        warm.run_until(SimTime::from_days(6));
        let mut attacked = warm.fork();
        attacked.set_attack(attack.compile(&u));
        attacked.run_to_end();

        // Streaming: warm, resume the stream at the paused cursor, fork.
        let stream = Box::new(wb.stream(targets.clone(), 5));
        let mut swarm =
            Simulation::streaming(&u, stream, SimConfig::new(ResolverConfig::vanilla()));
        swarm.run_until(SimTime::from_days(6));
        assert_eq!(swarm.processed(), warm.processed());
        let cursor = swarm.stream_cursor().expect("streaming feed has a cursor");
        assert_eq!(cursor.emitted(), swarm.processed() as u64);
        let mut sattacked = swarm.fork_streaming(Box::new(wb.resume(targets, 5, &cursor)));
        sattacked.set_attack(attack.compile(&u));
        sattacked.run_to_end();

        assert_eq!(attacked.processed(), sattacked.processed());
        assert_eq!(attacked.metrics(), sattacked.metrics());
    }

    #[test]
    fn occupancy_sampling_produces_series() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(
            &u,
            t,
            SimConfig::new(ResolverConfig::vanilla()).occupancy_every(SimDuration::from_days(1)),
        );
        sim.run_to_end();
        // Sampled at 0,1,…,7 days.
        assert_eq!(sim.occupancy().len(), 8);
        assert!(sim.occupancy().windows(2).all(|w| w[0].at < w[1].at));
        // Caches fill up over the warm-up.
        assert!(sim.occupancy().last().unwrap().zones > sim.occupancy()[0].zones);
    }

    #[test]
    fn report_carries_labels() {
        let u = universe();
        let t = small_trace(&u);
        let mut sim = Simulation::new(
            &u,
            t,
            SimConfig::new(ResolverConfig::with_refresh()).long_ttl(Ttl::from_days(3)),
        );
        sim.run_until(SimTime::from_days(1));
        let report = sim.report();
        assert_eq!(report.scheme, "refresh+longttl3d");
        assert_eq!(report.trace, "DEMO");
    }
}
