/root/repo/target/debug/deps/fig6-06eea6d2e8bc2656.d: crates/dns-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-06eea6d2e8bc2656: crates/dns-bench/src/bin/fig6.rs

crates/dns-bench/src/bin/fig6.rs:
