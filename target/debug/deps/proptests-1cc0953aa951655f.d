/root/repo/target/debug/deps/proptests-1cc0953aa951655f.d: crates/dns-resolver/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1cc0953aa951655f.rmeta: crates/dns-resolver/tests/proptests.rs Cargo.toml

crates/dns-resolver/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
