//! Retry policy for outgoing queries: per-server attempts, exponential
//! backoff with seeded jitter, and an overall wait budget.
//!
//! The policy is pure data — the [`crate::CachingServer`] interprets it
//! inside `exchange`, and both the virtual-time simulator and the real
//! UDP path run exactly the same code: waits are routed through
//! [`crate::Upstream::wait`], which a socket-backed upstream implements
//! as a real sleep and a virtual-time upstream leaves as a no-op.

/// Retry/backoff configuration for one upstream exchange (one question
/// sent to one zone's server set).
///
/// An *attempt* (round) walks the zone's whole server list once. Between
/// rounds the resolver backs off exponentially:
///
/// ```text
/// backoff(n) = min(initial_backoff_ms * multiplier^n, max_backoff_ms)
///              + uniform(0 ..= backoff * jitter_pct / 100)
/// ```
///
/// The jitter draw comes from the resolver's seeded RNG, so a fixed
/// resolver seed reproduces the exact retry schedule. Cumulative backoff
/// is capped by `deadline_ms` — when the next wait would exceed the
/// remaining budget the exchange gives up and the resolver counts a
/// deadline exhaustion (the resolver is clock-free, so the budget tracks
/// the waits it *requests*, not wall time spent inside the transport).
///
/// [`RetryPolicy::none`] (the [`Default`]) is a single pass with no
/// waiting — the historical behavior, and what every virtual-time
/// experiment uses so published figure counts are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Rounds over the server list (≥ 1; 0 is treated as 1).
    pub attempts: u32,
    /// Base backoff before the first retry round, in milliseconds.
    pub initial_backoff_ms: u64,
    /// Multiplier applied to the backoff after every retry round.
    pub backoff_multiplier: u32,
    /// Upper bound on a single backoff wait, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter added to each backoff, as a percentage of the base value
    /// (50 means "up to +50%"), drawn from the resolver's seeded RNG.
    pub jitter_pct: u32,
    /// Budget for the *sum* of backoff waits in one exchange, in
    /// milliseconds.
    pub deadline_ms: u64,
}

impl RetryPolicy {
    /// Single attempt, no backoff — the pre-retry behavior. Virtual-time
    /// experiments use this so their query counts match the paper runs.
    pub const fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            initial_backoff_ms: 0,
            backoff_multiplier: 1,
            max_backoff_ms: 0,
            jitter_pct: 0,
            deadline_ms: 0,
        }
    }

    /// A production-shaped default for the live UDP path: three rounds,
    /// 100 ms initial backoff doubling to at most 2 s, up to +50% jitter,
    /// 5 s total wait budget.
    pub const fn standard() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 2_000,
            jitter_pct: 50,
            deadline_ms: 5_000,
        }
    }

    /// Effective number of rounds (guards against a zero config).
    pub fn rounds(&self) -> u32 {
        self.attempts.max(1)
    }

    /// Base (pre-jitter) backoff before retry round `retry` (0-based:
    /// `retry = 0` is the wait between the first and second rounds).
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let mult = u64::from(self.backoff_multiplier.max(1));
        let mut b = self.initial_backoff_ms;
        for _ in 0..retry {
            b = b.saturating_mul(mult);
            if b >= self.max_backoff_ms {
                return self.max_backoff_ms;
            }
        }
        b.min(self.max_backoff_ms)
    }

    /// Largest jitter that may be added to a backoff of `base_ms`.
    pub fn max_jitter_ms(&self, base_ms: u64) -> u64 {
        base_ms.saturating_mul(u64::from(self.jitter_pct)) / 100
    }

    /// Whether this policy ever retries.
    pub fn retries_enabled(&self) -> bool {
        self.rounds() > 1
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl std::fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.retries_enabled() {
            return f.write_str("retry: none");
        }
        write!(
            f,
            "retry: {} rounds, backoff {}ms x{} (cap {}ms, jitter {}%), budget {}ms",
            self.rounds(),
            self.initial_backoff_ms,
            self.backoff_multiplier,
            self.max_backoff_ms,
            self.jitter_pct,
            self.deadline_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_single_pass() {
        let p = RetryPolicy::none();
        assert_eq!(p.rounds(), 1);
        assert!(!p.retries_enabled());
        assert_eq!(p.backoff_ms(0), 0);
        assert_eq!(RetryPolicy::default(), p);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            attempts: 6,
            initial_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 500,
            jitter_pct: 0,
            deadline_ms: 10_000,
        };
        assert_eq!(p.backoff_ms(0), 100);
        assert_eq!(p.backoff_ms(1), 200);
        assert_eq!(p.backoff_ms(2), 400);
        assert_eq!(p.backoff_ms(3), 500); // capped
        assert_eq!(p.backoff_ms(30), 500); // no overflow
    }

    #[test]
    fn zero_configs_are_tolerated() {
        let p = RetryPolicy {
            attempts: 0,
            backoff_multiplier: 0,
            ..RetryPolicy::standard()
        };
        assert_eq!(p.rounds(), 1);
        // multiplier 0 behaves like 1 (constant backoff).
        assert_eq!(p.backoff_ms(3), p.initial_backoff_ms);
    }

    #[test]
    fn jitter_bound() {
        let p = RetryPolicy::standard();
        assert_eq!(p.max_jitter_ms(100), 50);
        assert_eq!(p.max_jitter_ms(0), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RetryPolicy::none().to_string(), "retry: none");
        assert!(RetryPolicy::standard().to_string().contains("3 rounds"));
    }
}
