/root/repo/target/release/deps/dns_stats-07f940ceb1021725.d: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

/root/repo/target/release/deps/libdns_stats-07f940ceb1021725.rlib: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

/root/repo/target/release/deps/libdns_stats-07f940ceb1021725.rmeta: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

crates/dns-stats/src/lib.rs:
crates/dns-stats/src/cdf.rs:
crates/dns-stats/src/histogram.rs:
crates/dns-stats/src/manifest.rs:
crates/dns-stats/src/plot.rs:
crates/dns-stats/src/summary.rs:
crates/dns-stats/src/table.rs:
