//! Property-based tests for the core data model and wire codec.

use dns_core::{
    wire, Header, Label, Message, Name, Opcode, Question, RData, Rcode, Record, RecordType, Ttl,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = Label> {
    proptest::collection::vec(
        prop_oneof![
            prop::char::range('a', 'z').prop_map(|c| c as u8),
            prop::char::range('0', '9').prop_map(|c| c as u8),
            Just(b'-'),
            Just(b'_'),
        ],
        1..=12,
    )
    .prop_map(|bytes| Label::new(&bytes).expect("alphabet is valid"))
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..=6)
        .prop_map(|labels| Name::from_labels(labels).expect("short names fit"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                }
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        "[ -~]{0,40}".prop_map(RData::Txt),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| Record::new(name, Ttl::from_secs(ttl), rdata))
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(Opcode::Query),
            Just(Opcode::IQuery),
            Just(Opcode::Status)
        ],
        prop_oneof![
            Just(Rcode::NoError),
            Just(Rcode::FormErr),
            Just(Rcode::ServFail),
            Just(Rcode::NxDomain),
            Just(Rcode::NotImp),
            Just(Rcode::Refused),
        ],
    )
        .prop_map(
            |(id, response, authoritative, truncated, rd, ra, opcode, rcode)| Header {
                id,
                response,
                opcode,
                authoritative,
                truncated,
                recursion_desired: rd,
                recursion_available: ra,
                rcode,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_header(),
        proptest::collection::vec(
            (arb_name(), prop::sample::select(RecordType::ALL.to_vec()))
                .prop_map(|(n, t)| Question::new(n, t)),
            0..=2,
        ),
        proptest::collection::vec(arb_record(), 0..=4),
        proptest::collection::vec(arb_record(), 0..=4),
        proptest::collection::vec(arb_record(), 0..=4),
    )
        .prop_map(
            |(header, questions, answers, authorities, additionals)| Message {
                header,
                questions,
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    /// Any parsable name survives a display→parse round trip.
    #[test]
    fn name_display_parse_roundtrip(name in arb_name()) {
        let text = name.to_string();
        let back = Name::parse(&text).unwrap();
        prop_assert_eq!(name, back);
    }

    /// Parent reduces the label count by exactly one.
    #[test]
    fn parent_reduces_label_count(name in arb_name()) {
        match name.parent() {
            Some(p) => prop_assert_eq!(p.label_count() + 1, name.label_count()),
            None => prop_assert!(name.is_root()),
        }
    }

    /// `ancestors` yields label_count + 1 names, each the parent of the
    /// previous, ending at the root.
    #[test]
    fn ancestors_chain_is_consistent(name in arb_name()) {
        let chain: Vec<Name> = name.ancestors().collect();
        prop_assert_eq!(chain.len(), name.label_count() + 1);
        prop_assert_eq!(chain.first().unwrap(), &name);
        prop_assert!(chain.last().unwrap().is_root());
        for pair in chain.windows(2) {
            let parent = pair[0].parent();
            prop_assert_eq!(parent.as_ref(), Some(&pair[1]));
            prop_assert!(pair[0].is_proper_subdomain_of(&pair[1]));
        }
    }

    /// Subdomain relation is reflexive and transitive along ancestor chains.
    #[test]
    fn subdomain_of_every_ancestor(name in arb_name()) {
        prop_assert!(name.is_subdomain_of(&name));
        for anc in name.ancestors() {
            prop_assert!(name.is_subdomain_of(&anc));
        }
    }

    /// Messages round-trip exactly through the wire codec.
    #[test]
    fn wire_roundtrip(msg in arb_message()) {
        let bytes = match wire::encode(&msg) {
            Ok(b) => b,
            // Over-long messages are rejected, never silently truncated.
            Err(dns_core::DnsError::MessageTooLong(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("encode failed: {e}"))),
        };
        let back = wire::decode(&bytes).unwrap();
        prop_assert_eq!(msg, back);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    /// Decoding any prefix of a valid message never panics.
    #[test]
    fn decode_truncations_never_panic(msg in arb_message(), cut in 0usize..64) {
        if let Ok(bytes) = wire::encode(&msg) {
            let cut = cut.min(bytes.len());
            let _ = wire::decode(&bytes[..bytes.len() - cut]);
        }
    }

    /// TTL expiry is monotone in the TTL value.
    #[test]
    fn ttl_expiry_monotone(a in any::<u32>(), b in any::<u32>(), at in any::<u32>()) {
        let at = dns_core::SimTime::from_secs(at as u64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            Ttl::from_secs(lo).expires_at(at) <= Ttl::from_secs(hi).expires_at(at)
        );
    }
}
