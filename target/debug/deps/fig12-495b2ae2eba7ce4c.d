/root/repo/target/debug/deps/fig12-495b2ae2eba7ce4c.d: crates/dns-bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-495b2ae2eba7ce4c.rmeta: crates/dns-bench/src/bin/fig12.rs Cargo.toml

crates/dns-bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
