//! Core DNS data model and RFC 1035 wire format.
//!
//! This crate is the substrate for the DSN 2007 "Enhancing DNS Resilience
//! against Denial of Service Attacks" reproduction. It implements the parts
//! of the DNS that every other crate in the workspace builds on:
//!
//! * [`Name`] — domain names with label-wise operations (parent, ancestors,
//!   zone containment) used to navigate the delegation hierarchy,
//! * [`Record`], [`RData`], [`RecordType`] — resource records including the
//!   *infrastructure records* (`NS` + glue `A`) the paper is about,
//! * [`Message`] — DNS messages with question/answer/authority/additional
//!   sections, and a full RFC 1035 wire codec with name compression in
//!   [`wire`],
//! * [`Zone`] — authoritative zone data with delegation points,
//! * [`SimTime`], [`SimDuration`], [`Ttl`] — the virtual-time vocabulary
//!   shared by the resolver and the simulator.
//!
//! # Example
//!
//! ```rust
//! use dns_core::{Name, Record, RData, RecordType, Ttl};
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), dns_core::DnsError> {
//! let name: Name = "www.ucla.edu".parse()?;
//! assert_eq!(name.parent().unwrap().to_string(), "ucla.edu.");
//!
//! let rr = Record::new(name, Ttl::from_hours(4), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
//! assert_eq!(rr.rtype(), RecordType::A);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod message;
mod name;
mod rr;
pub mod wire;
mod zone;
pub mod zonefile;

pub use clock::{SimDuration, SimTime, Ttl, DAY, HOUR, MINUTE};
pub use error::DnsError;
pub use message::{Header, Message, Opcode, Question, Rcode, ResponseKind};
pub use name::{Ancestors, Label, Labels, Name, NameBuilder, MAX_LABEL_LEN, MAX_NAME_LEN};
pub use rr::{
    synthetic_key_digest, RData, Record, RecordClass, RecordType, RrKey, RrKeyView, RrSet,
};
pub use zone::{Delegation, Zone, ZoneBuilder};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DnsError>;
