//! Terminal plotting: sparklines and multi-series line charts for the
//! experiment binaries, so figures are legible without leaving the shell.

use std::fmt::Write as _;

/// Eight-level block characters used by [`sparkline`].
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One chart series: label, glyph and `(x, y)` points.
type Series = (String, char, Vec<(f64, f64)>);

/// Renders a one-line sparkline of `values` (empty input → empty string).
///
/// ```rust
/// use dns_stats::sparkline;
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.ends_with('█'));
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = match (
        finite.iter().copied().reduce(f64::min),
        finite.iter().copied().reduce(f64::max),
    ) {
        (Some(min), Some(max)) => (min, max),
        _ => return String::new(),
    };
    let span = (max - min).max(f64::EPSILON);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return ' ';
            }
            let idx = (((v - min) / span) * (BLOCKS.len() - 1) as f64).round() as usize;
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

/// An ASCII line chart over `(x, y)` series, one glyph per series.
///
/// Designed for the occupancy/CDF plots: modest sizes, shared axes, no
/// dependencies.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<Series>,
}

impl AsciiChart {
    /// Creates a chart canvas of `width`×`height` characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart too small");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a named series drawn with `glyph`.
    pub fn series(
        &mut self,
        label: impl Into<String>,
        glyph: char,
        points: Vec<(f64, f64)>,
    ) -> &mut Self {
        self.series.push((label.into(), glyph, points));
        self
    }

    /// Renders the chart with a legend and y-axis bounds.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, pts)| pts.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return "(no data)\n".to_string();
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &all {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        let x_span = (x_max - x_min).max(f64::EPSILON);
        let y_span = (y_max - y_min).max(f64::EPSILON);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (_, glyph, pts) in &self.series {
            for (x, y) in pts {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let col = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let row = (((y - y_min) / y_span) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row;
                grid[row][col.min(self.width - 1)] = *glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{y_max:>10.2} ┤");
        for row in grid {
            let line: String = row.into_iter().collect();
            let _ = writeln!(out, "{:>10} │{line}", "");
        }
        let _ = writeln!(out, "{y_min:>10.2} ┤{}", "─".repeat(self.width));
        let _ = writeln!(out, "{:>11}x: {x_min:.2} … {x_max:.2}", "");
        for (label, glyph, _) in &self.series {
            let _ = writeln!(out, "{:>11}{glyph} {label}", "");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_extremes() {
        let s = sparkline(&[0.0, 10.0]);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn sparkline_constant_input() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn sparkline_empty_and_nan() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN]), "");
        let s = sparkline(&[1.0, f64::NAN, 2.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn chart_renders_all_series() {
        let mut chart = AsciiChart::new(40, 8);
        chart.series("up", '*', (0..10).map(|i| (i as f64, i as f64)).collect());
        chart.series(
            "down",
            'o',
            (0..10).map(|i| (i as f64, 9.0 - i as f64)).collect(),
        );
        let out = chart.render();
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("up"));
        assert!(out.contains("down"));
        // Height rows + header + footer + x-range + 2 legend lines.
        assert_eq!(out.lines().count(), 8 + 3 + 2);
    }

    #[test]
    fn chart_empty_data() {
        let mut chart = AsciiChart::new(10, 4);
        chart.series("none", '*', vec![]);
        assert_eq!(chart.render(), "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        AsciiChart::new(1, 1);
    }
}
