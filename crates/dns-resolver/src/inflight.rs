//! Single-flight coalescing: concurrent identical queries share one
//! upstream fetch.
//!
//! The first thread to miss the cache for a `(name, type)` becomes the
//! *leader* and carries a [`FlightToken`]; every thread that arrives while
//! the flight is open blocks on the flight's condvar and receives the
//! leader's published [`Outcome`] verbatim. The table entry is removed
//! before the outcome is published, so a thread arriving after publication
//! starts a fresh flight (and typically hits the now-warm cache instead of
//! fetching).
//!
//! The token publishes [`Outcome::Fail`] on drop: a leader that panics or
//! bails early can never strand its followers on the condvar.

use crate::Outcome;
use dns_core::{Name, RecordType, RrKey};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Completion slot one flight's followers block on.
#[derive(Debug, Default)]
struct FlightSlot {
    outcome: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl FlightSlot {
    fn complete(&self, outcome: Outcome) {
        let mut guard = self.outcome.lock().unwrap();
        if guard.is_none() {
            *guard = Some(outcome);
        }
        drop(guard);
        self.cv.notify_all();
    }

    fn wait(&self) -> Outcome {
        let mut guard = self.outcome.lock().unwrap();
        loop {
            match guard.as_ref() {
                Some(outcome) => return outcome.clone(),
                None => guard = self.cv.wait(guard).unwrap(),
            }
        }
    }
}

/// The in-flight query table shared by every handle of a
/// [`crate::ShardedCache`].
#[derive(Debug, Default)]
pub(crate) struct InflightTable {
    slots: Mutex<HashMap<RrKey, Arc<FlightSlot>>>,
}

impl InflightTable {
    /// Joins the open flight for `(name, rtype)` — blocking until its
    /// leader publishes — or opens a new one and returns its token.
    pub(crate) fn join_or_lead(
        self: &Arc<Self>,
        name: &Name,
        rtype: RecordType,
    ) -> Result<FlightToken, Outcome> {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get(&(name, rtype) as &dyn dns_core::RrKeyView) {
            let slot = Arc::clone(slot);
            drop(slots);
            return Err(slot.wait());
        }
        let key = RrKey::new(name.clone(), rtype);
        let slot = Arc::new(FlightSlot::default());
        slots.insert(key.clone(), Arc::clone(&slot));
        drop(slots);
        Ok(FlightToken {
            flight: Some((key, slot, Arc::clone(self))),
        })
    }

    fn finish(&self, key: &RrKey, slot: &FlightSlot, outcome: Outcome) {
        // Remove before publishing: a thread arriving after publication
        // must open a fresh flight, never observe a completed slot.
        self.slots.lock().unwrap().remove(key);
        slot.complete(outcome);
    }
}

/// Whether this resolution leads its flight or shares a leader's answer.
#[derive(Debug)]
pub enum Flight {
    /// This thread is the leader: perform the fetch, then
    /// [`FlightToken::publish`] the outcome for any followers.
    Lead(FlightToken),
    /// Another thread's flight was already open; its published outcome.
    Shared(Outcome),
}

/// Leadership of one in-flight query (see [`Flight::Lead`]).
///
/// Dropping the token without [`FlightToken::publish`] releases followers
/// with [`Outcome::Fail`].
#[derive(Debug)]
pub struct FlightToken {
    flight: Option<(RrKey, Arc<FlightSlot>, Arc<InflightTable>)>,
}

impl FlightToken {
    /// A token with no followers, for backends that never coalesce
    /// ([`crate::LocalBackend`]). Publish and drop are no-ops.
    pub fn solo() -> Self {
        FlightToken { flight: None }
    }

    /// Publishes the leader's outcome, waking every follower.
    pub fn publish(mut self, outcome: &Outcome) {
        if let Some((key, slot, table)) = self.flight.take() {
            table.finish(&key, &slot, outcome.clone());
        }
    }
}

impl Drop for FlightToken {
    fn drop(&mut self) {
        if let Some((key, slot, table)) = self.flight.take() {
            table.finish(&key, &slot, Outcome::Fail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn leader_publishes_to_followers() {
        let table = Arc::new(InflightTable::default());
        let token = match table.join_or_lead(&name("www.x.com"), RecordType::A) {
            Ok(t) => t,
            Err(_) => panic!("first arrival must lead"),
        };
        let follower = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.join_or_lead(&name("www.x.com"), RecordType::A))
        };
        // Give the follower a chance to block on the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        token.publish(&Outcome::NxDomain { from_cache: false });
        match follower.join().unwrap() {
            Err(Outcome::NxDomain { from_cache: false }) => {}
            other => panic!("follower saw {other:?}"),
        }
        // The table entry is gone: the next arrival leads a fresh flight.
        assert!(table
            .join_or_lead(&name("www.x.com"), RecordType::A)
            .is_ok());
    }

    #[test]
    fn dropped_token_fails_followers() {
        let table = Arc::new(InflightTable::default());
        let token = table.join_or_lead(&name("a.x"), RecordType::A).unwrap();
        let follower = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.join_or_lead(&name("a.x"), RecordType::A))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(token);
        assert!(matches!(follower.join().unwrap(), Err(Outcome::Fail)));
    }

    #[test]
    fn distinct_questions_do_not_coalesce() {
        let table = Arc::new(InflightTable::default());
        let _a = table.join_or_lead(&name("a.x"), RecordType::A).unwrap();
        assert!(table.join_or_lead(&name("b.x"), RecordType::A).is_ok());
        assert!(table.join_or_lead(&name("a.x"), RecordType::Ns).is_ok());
    }

    #[test]
    fn solo_token_is_inert() {
        let t = FlightToken::solo();
        t.publish(&Outcome::Fail);
        drop(FlightToken::solo());
    }
}
