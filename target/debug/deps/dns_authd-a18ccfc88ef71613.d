/root/repo/target/debug/deps/dns_authd-a18ccfc88ef71613.d: crates/dns-netd/src/bin/dns-authd.rs

/root/repo/target/debug/deps/dns_authd-a18ccfc88ef71613: crates/dns-netd/src/bin/dns-authd.rs

crates/dns-netd/src/bin/dns-authd.rs:
