/root/repo/target/debug/deps/discussion_maxdamage-de375392d378c0ad.d: crates/dns-bench/src/bin/discussion_maxdamage.rs

/root/repo/target/debug/deps/discussion_maxdamage-de375392d378c0ad: crates/dns-bench/src/bin/discussion_maxdamage.rs

crates/dns-bench/src/bin/discussion_maxdamage.rs:
