/root/repo/target/debug/deps/table2-db029ebe52ab8157.d: crates/dns-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-db029ebe52ab8157.rmeta: crates/dns-bench/src/bin/table2.rs Cargo.toml

crates/dns-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
