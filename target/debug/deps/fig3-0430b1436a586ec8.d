/root/repo/target/debug/deps/fig3-0430b1436a586ec8.d: crates/dns-bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-0430b1436a586ec8: crates/dns-bench/src/bin/fig3.rs

crates/dns-bench/src/bin/fig3.rs:
