/root/repo/target/debug/deps/dns_trace-5a8d9061c628bf36.d: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libdns_trace-5a8d9061c628bf36.rmeta: crates/dns-trace/src/lib.rs crates/dns-trace/src/io.rs crates/dns-trace/src/namespace.rs crates/dns-trace/src/spec.rs crates/dns-trace/src/trace.rs crates/dns-trace/src/ttl_model.rs crates/dns-trace/src/workload.rs crates/dns-trace/src/zipf.rs Cargo.toml

crates/dns-trace/src/lib.rs:
crates/dns-trace/src/io.rs:
crates/dns-trace/src/namespace.rs:
crates/dns-trace/src/spec.rs:
crates/dns-trace/src/trace.rs:
crates/dns-trace/src/ttl_model.rs:
crates/dns-trace/src/workload.rs:
crates/dns-trace/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
