/root/repo/target/debug/examples/resilience_tuning-962e0578b45061dc.d: examples/resilience_tuning.rs

/root/repo/target/debug/examples/resilience_tuning-962e0578b45061dc: examples/resilience_tuning.rs

examples/resilience_tuning.rs:
