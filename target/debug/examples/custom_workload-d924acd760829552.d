/root/repo/target/debug/examples/custom_workload-d924acd760829552.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-d924acd760829552: examples/custom_workload.rs

examples/custom_workload.rs:
