/root/repo/target/debug/deps/table1-954ec74b4bbe4ff4.d: crates/dns-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-954ec74b4bbe4ff4.rmeta: crates/dns-bench/src/bin/table1.rs Cargo.toml

crates/dns-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
