//! DNSSEC structure at universe scale: a fully signed synthetic internet,
//! validated through the simulator's farm (paper §6's extension of the
//! caching schemes to the new infrastructure records).

use dns_resilience::core::{Name, SimDuration, SimTime};
use dns_resilience::resolver::{CachingServer, ResolverConfig, RootHints, SecureStatus};
use dns_resilience::sim::{AttackScenario, ServerFarm, SimNet};
use dns_resilience::trace::{Universe, UniverseSpec};

fn signed_universe() -> Universe {
    let mut spec = UniverseSpec::small_signed();
    spec.sld_count = 400;
    spec.tld_count = 12;
    spec.build(77)
}

fn resolver_over(universe: &Universe, config: ResolverConfig) -> (CachingServer, SimNet) {
    let farm = ServerFarm::build(universe, None);
    let hints = RootHints::new(universe.root_servers().to_vec());
    (CachingServer::new(config, hints), SimNet::new(farm))
}

#[test]
fn signed_zones_validate_across_the_universe() {
    let u = signed_universe();
    let (mut cs, mut net) = resolver_over(&u, ResolverConfig::with_refresh());
    let signed: Vec<_> = u
        .zones()
        .iter()
        .filter(|z| z.dnskey.is_some() && !z.data_names.is_empty())
        .step_by(37)
        .take(10)
        .collect();
    assert!(!signed.is_empty());
    for zone in signed {
        let (host, _) = &zone.data_names[0];
        let out = cs.resolve_a(host, SimTime::ZERO, &mut net);
        assert!(out.is_success(), "{host} must resolve");
        assert_eq!(
            cs.validate_zone(&zone.apex, SimTime::from_mins(1), &mut net),
            SecureStatus::Secure,
            "zone {} must validate",
            zone.apex
        );
    }
}

#[test]
fn unsigned_universe_is_uniformly_insecure() {
    let mut spec = UniverseSpec::small();
    spec.sld_count = 100;
    spec.tld_count = 8;
    let u = spec.build(5);
    let (mut cs, mut net) = resolver_over(&u, ResolverConfig::vanilla());
    let zone = u.zones().iter().find(|z| !z.data_names.is_empty()).unwrap();
    cs.resolve_a(&zone.data_names[0].0, SimTime::ZERO, &mut net);
    assert_eq!(
        cs.validate_zone(&zone.apex, SimTime::from_mins(1), &mut net),
        SecureStatus::Insecure
    );
}

#[test]
fn validation_survives_root_and_tld_attack_with_refresh() {
    let u = signed_universe();
    let (mut cs, mut net) = resolver_over(&u, ResolverConfig::with_refresh());
    let zone = u
        .zones()
        .iter()
        .find(|z| z.dnskey.is_some() && !z.data_names.is_empty())
        .unwrap();
    let (host, _) = &zone.data_names[0];

    // Prime and refresh once within the IRR TTL.
    cs.resolve_a(host, SimTime::ZERO, &mut net);
    let half_ttl = SimDuration::from_secs(u64::from(zone.infra_ttl.as_secs()) / 2);
    cs.resolve_a(host, SimTime::ZERO + half_ttl, &mut net);

    // Black out the root and every TLD "forever".
    net.set_attack(
        AttackScenario::zones(
            u.root_and_tld_apexes(),
            SimTime::ZERO,
            SimDuration::from_days(365),
        )
        .compile(&u),
    );

    // Inside the refreshed window: both resolution and DNSSEC validation
    // still work, because the DS rides on the (refreshed) infra entry.
    let probe_at = SimTime::ZERO + half_ttl + SimDuration::from_secs(1);
    assert_eq!(
        cs.validate_zone(&zone.apex, probe_at, &mut net),
        SecureStatus::Secure
    );
}

#[test]
fn signed_universe_roundtrips_through_io() {
    let u = signed_universe();
    let mut buf = Vec::new();
    dns_resilience::trace::io::save_universe(&mut buf, &u).unwrap();
    let back = dns_resilience::trace::io::load_universe(buf.as_slice()).unwrap();
    let signed_count = |u: &Universe| u.zones().iter().filter(|z| z.dnskey.is_some()).count();
    assert_eq!(signed_count(&u), signed_count(&back));
    assert!(signed_count(&u) > 100);
    // And the reloaded universe still validates.
    let (mut cs, mut net) = resolver_over(&back, ResolverConfig::with_refresh());
    let zone = back
        .zones()
        .iter()
        .find(|z| z.dnskey.is_some() && !z.data_names.is_empty())
        .unwrap();
    cs.resolve_a(&zone.data_names[0].0, SimTime::ZERO, &mut net);
    assert_eq!(
        cs.validate_zone(&zone.apex, SimTime::from_mins(1), &mut net),
        SecureStatus::Secure
    );
}

#[test]
fn deep_signed_zones_validate_too() {
    let u = signed_universe();
    let deep: Vec<&Name> = u
        .zones()
        .iter()
        .filter(|z| z.apex.label_count() >= 3 && z.dnskey.is_some())
        .map(|z| &z.apex)
        .take(3)
        .collect();
    if deep.is_empty() {
        return; // tiny universe may have no deep signed zones
    }
    let (mut cs, mut net) = resolver_over(&u, ResolverConfig::with_refresh());
    for apex in deep {
        let spec = u.get(apex).unwrap();
        cs.resolve_a(&spec.data_names[0].0, SimTime::ZERO, &mut net);
        assert_eq!(
            cs.validate_zone(apex, SimTime::from_mins(1), &mut net),
            SecureStatus::Secure,
            "deep zone {apex}"
        );
    }
}
