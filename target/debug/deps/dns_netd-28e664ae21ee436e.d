/root/repo/target/debug/deps/dns_netd-28e664ae21ee436e.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/libdns_netd-28e664ae21ee436e.rlib: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/libdns_netd-28e664ae21ee436e.rmeta: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/fault.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
