/root/repo/target/debug/deps/dns_core-ff751ecf9b15057b.d: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs Cargo.toml

/root/repo/target/debug/deps/libdns_core-ff751ecf9b15057b.rmeta: crates/dns-core/src/lib.rs crates/dns-core/src/clock.rs crates/dns-core/src/error.rs crates/dns-core/src/message.rs crates/dns-core/src/name.rs crates/dns-core/src/rr.rs crates/dns-core/src/wire.rs crates/dns-core/src/zone.rs crates/dns-core/src/zonefile.rs Cargo.toml

crates/dns-core/src/lib.rs:
crates/dns-core/src/clock.rs:
crates/dns-core/src/error.rs:
crates/dns-core/src/message.rs:
crates/dns-core/src/name.rs:
crates/dns-core/src/rr.rs:
crates/dns-core/src/wire.rs:
crates/dns-core/src/zone.rs:
crates/dns-core/src/zonefile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
