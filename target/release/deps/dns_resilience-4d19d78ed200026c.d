/root/repo/target/release/deps/dns_resilience-4d19d78ed200026c.d: src/lib.rs

/root/repo/target/release/deps/libdns_resilience-4d19d78ed200026c.rlib: src/lib.rs

/root/repo/target/release/deps/libdns_resilience-4d19d78ed200026c.rmeta: src/lib.rs

src/lib.rs:
