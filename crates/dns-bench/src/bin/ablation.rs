//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **LFU credit cap `M`** — the paper bounds LFU credit by an
//!    unspecified maximum; we default to 20. How sensitive are the
//!    results to that choice?
//! 2. **Workload skew** — the two-level Zipf exponent we chose (1.05).
//!    Does the schemes' ordering survive a flatter or sharper workload?
//!
//! Run with `DNS_REPRO_SCALE=0.3` for a quick pass.

use dns_bench::{emit, pct, standard_universe, Lab};
use dns_core::{SimDuration, SimTime};
use dns_resolver::RenewalPolicy;
use dns_sim::experiment::{attack_sweep, attack_sweep_with_farm, Scheme, ATTACK_START_DAY};
use dns_stats::Table;
use dns_trace::{TraceSpec, WorkloadBuilder};

fn main() {
    let mut lab = Lab::new();
    let spec = TraceSpec::TRC1;
    let start = SimTime::from_days(ATTACK_START_DAY);
    let durations = [SimDuration::from_hours(6)];

    // --- Ablation 1: LFU credit cap -------------------------------------
    // The cap does not appear in the scheme label, so Lab's memo would
    // collapse all cap values into one run: sweep directly instead.
    lab.trace(&spec);
    let mut cap_table = Table::new(vec!["Cap M", "LFU_3 SR %", "LFU_3 CS %"]);
    cap_table.numeric();
    for cap in [5u32, 10, 20, 50, 1000] {
        let policy = RenewalPolicy::Lfu {
            credit: 3,
            max_credit: cap,
        };
        let farm = lab.farm(None);
        let trace = lab.trace(&spec).clone();
        let outcome = &attack_sweep_with_farm(
            farm,
            lab.universe(),
            &trace,
            Scheme::renewal(policy),
            start,
            &durations,
        )[0];
        cap_table.row(vec![
            cap.to_string(),
            pct(outcome.sr_failed_pct),
            pct(outcome.cs_failed_pct),
        ]);
    }
    emit(
        "Ablation: LFU credit cap M (6h attack, TRC1)",
        "ablation_lfu_cap",
        &cap_table,
    );

    // --- Ablation 2: workload skew --------------------------------------
    let universe = standard_universe();
    let mut skew_table = Table::new(vec![
        "Zipf alpha",
        "DNS SR %",
        "refresh SR %",
        "A-LFU_3 SR %",
    ]);
    skew_table.numeric();
    for alpha in [0.7, 0.9, 1.05, 1.2] {
        let trace = WorkloadBuilder::new("skew", 7, spec.clients, spec.total_queries / 2)
            .zipf_alpha(alpha)
            .generate(&universe, 42);
        let fail = |scheme: Scheme| {
            attack_sweep(&universe, &trace, scheme, start, &durations)[0].sr_failed_pct
        };
        skew_table.row(vec![
            format!("{alpha:.2}"),
            pct(fail(Scheme::vanilla())),
            pct(fail(Scheme::refresh())),
            pct(fail(Scheme::renewal(RenewalPolicy::adaptive_lfu(3)))),
        ]);
    }
    emit(
        "Ablation: workload Zipf skew (6h attack)",
        "ablation_skew",
        &skew_table,
    );
    println!("Takeaways: raising the LFU cap helps popular zones accumulate more");
    println!("renewals, with diminishing returns once demand (not M) bounds the");
    println!("credit; and the scheme ordering — vanilla ≫ refresh ≫ adaptive");
    println!("renewal — holds across workload skews, with absolute levels");
    println!("shifting with cacheability, exactly as EXPERIMENTS.md cautions.");
}
