/root/repo/target/debug/deps/ablation-f612f18d8e848273.d: crates/dns-bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-f612f18d8e848273.rmeta: crates/dns-bench/src/bin/ablation.rs Cargo.toml

crates/dns-bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
