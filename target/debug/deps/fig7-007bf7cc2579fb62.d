/root/repo/target/debug/deps/fig7-007bf7cc2579fb62.d: crates/dns-bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-007bf7cc2579fb62.rmeta: crates/dns-bench/src/bin/fig7.rs Cargo.toml

crates/dns-bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
