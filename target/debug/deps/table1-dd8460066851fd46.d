/root/repo/target/debug/deps/table1-dd8460066851fd46.d: crates/dns-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-dd8460066851fd46: crates/dns-bench/src/bin/table1.rs

crates/dns-bench/src/bin/table1.rs:
