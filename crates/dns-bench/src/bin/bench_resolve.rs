//! End-to-end resolver throughput baseline: replays a fixed seeded trace
//! through the full simulator (combined scheme: refresh + A-LFU renewal +
//! 3-day long TTL, the paper's heaviest configuration) and writes
//! `BENCH_resolve.json` — the tracked perf trajectory for the hot path.
//!
//! The binary installs a counting global allocator, so alongside
//! queries/sec it reports allocations-per-query for the full replay and
//! for two targeted micro-probes (`Name::clone`+`parent`, warm-cache
//! `get`) that the zero-allocation work is measured against.
//!
//!   cargo run --release -p dns-bench --bin bench_resolve
//!
//! Environment:
//! * `DNS_BENCH_SCALE` — trace scale factor (default 1.0),
//! * `DNS_BENCH_OUT`   — output path (default `BENCH_resolve.json`).

use dns_core::{Name, Question, RData, Record, RecordType, SimTime, Ttl};
use dns_resolver::{
    CachingServer, Credibility, RecordCache, RenewalPolicy, ResolverConfig, RootHints, ShardedCache,
};
use dns_sim::experiment::Scheme;
use dns_sim::{peak_rss_kb, ServerFarm, SimNet, Simulation};
use dns_trace::{TraceSpec, UniverseSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Allocation counters maintained by the global allocator below. Only
/// bench builds pay for this bookkeeping; the library crates are
/// untouched.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter updates are
// side-effect-free atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (ALLOCS.load(Relaxed), ALLOC_BYTES.load(Relaxed))
}

/// Allocations per iteration of `op`, measured over `iters` runs.
fn allocs_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let (a0, _) = snapshot();
    for _ in 0..iters {
        op();
    }
    let (a1, _) = snapshot();
    (a1 - a0) as f64 / iters as f64
}

/// `Name::clone` + `parent` probe: five labels deep, the `www.cs.ucla.edu`
/// shape the paper's delegation walks hit constantly.
fn probe_name_ops() -> f64 {
    let name: Name = "www.cs.ucla.edu".parse().expect("static name");
    allocs_per_op(100_000, || {
        let c = black_box(&name).clone();
        let p = c.parent().expect("not root");
        black_box(p.label_count());
    })
}

/// Warm-cache `get` probe: one fresh entry, repeated hits.
fn probe_warm_get() -> f64 {
    let mut cache = RecordCache::new();
    let owner: Name = "www.ucla.edu".parse().expect("static name");
    let rr = Record::new(
        owner.clone(),
        Ttl::from_hours(4),
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    );
    let set = dns_core::RrSet::from_records(std::slice::from_ref(&rr)).expect("one record");
    cache.insert(set, SimTime::ZERO, Credibility::AuthAnswer);
    let at = SimTime::from_mins(1);
    allocs_per_op(100_000, || {
        black_box(cache.get(black_box(&owner), RecordType::A, at));
    })
}

/// Wire fast-lane probe: the daemon's batched hit path — shallow-parse
/// the query, build the lowercase probe key in reused scratch, serve the
/// pre-serialized response into a fixed buffer with ID/RD/casing/TTLs
/// patched in place. Returns `(serves/sec, allocations/serve)`; the
/// whole loop must allocate nothing (the `wire_allocs_per_query` gate in
/// ci.sh holds it at zero).
fn probe_wire_lane() -> (f64, f64) {
    use dns_netd::{fast_query, lowercase_key, WireCache};

    let owner: Name = "www.ucla.edu".parse().expect("static name");
    let query = dns_core::Message::query(0x2020, Question::new(owner.clone(), RecordType::A));
    let qbytes = dns_core::wire::encode(&query).expect("encode query");
    let mut resp = dns_core::Message::response_to(&query);
    resp.header.recursion_available = true;
    resp.answers.push(Record::new(
        owner.clone(),
        Ttl::from_hours(4),
        RData::A(Ipv4Addr::new(192, 0, 2, 80)),
    ));
    let (bytes, offsets) = dns_core::wire::encode_with_ttl_offsets(&resp).expect("encode response");
    let mut cache = WireCache::new(64 * 1024);
    assert!(cache.insert(
        &owner,
        RecordType::A,
        &bytes,
        &offsets,
        SimTime::ZERO,
        SimTime::from_hours(4),
    ));

    let mut key = Vec::with_capacity(64);
    let mut out = [0u8; dns_core::wire::MAX_MESSAGE_LEN];
    let now = SimTime::from_mins(5);
    let iters = 200_000u64;
    let (a0, _) = snapshot();
    let start = Instant::now();
    for _ in 0..iters {
        let fq = fast_query(black_box(&qbytes)).expect("plain query");
        lowercase_key(fq.raw_name, &mut key);
        let n = cache
            .serve(&key, fq.rtype, &qbytes, now, &mut out)
            .expect("hot entry serves");
        black_box(&out[..n]);
    }
    let wall = start.elapsed().as_secs_f64();
    let (a1, _) = snapshot();
    (iters as f64 / wall, (a1 - a0) as f64 / iters as f64)
}

/// Multi-threaded shared-cache replay: `threads` workers, each owning a
/// [`CachingServer`] over ONE shared [`ShardedCache`] (8 shards,
/// single-flight coalescing on), resolve an interleaved slice of
/// `questions` at a fixed warm instant against a shared farm. Returns
/// aggregate `(queries/sec, allocations/query)` for the whole replay.
fn mt_replay(
    farm: &Arc<ServerFarm>,
    hints: &RootHints,
    questions: &Arc<Vec<Question>>,
    threads: usize,
) -> (f64, f64) {
    let backend = ShardedCache::new(8);
    let total = questions.len();
    let now = SimTime::from_days(1);
    let (a0, _) = snapshot();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let backend = backend.clone();
            let farm = Arc::clone(farm);
            let questions = Arc::clone(questions);
            let hints = hints.clone();
            scope.spawn(move || {
                let config = ResolverConfig::vanilla()
                    .to_builder()
                    .shards(8)
                    .coalesce(true)
                    .seed(42 + t as u64)
                    .build();
                let mut cs = CachingServer::with_backend(config, hints, backend);
                let mut net = SimNet::with_shared(farm);
                for q in questions.iter().skip(t).step_by(threads) {
                    black_box(cs.resolve(q, now, &mut net));
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let (a1, _) = snapshot();
    (total as f64 / wall, (a1 - a0) as f64 / total as f64)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|v: &f64| v.is_finite() && *v > 0.0)
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("DNS_BENCH_SCALE", 1.0);
    let out_path = std::env::var("DNS_BENCH_OUT").unwrap_or_else(|_| "BENCH_resolve.json".into());

    let name_op_allocs = probe_name_ops();
    let warm_get_allocs = probe_warm_get();
    let (wire_qps, wire_allocs_per_query) = probe_wire_lane();
    println!("wire fast lane: {wire_qps:.0} serves/sec, {wire_allocs_per_query:.4} allocs/serve");

    let universe = UniverseSpec::small().build(7);
    let trace = TraceSpec::demo().scaled(scale).generate(&universe, 42);
    let queries = trace.queries.len() as u64;
    let questions: Arc<Vec<Question>> =
        Arc::new(trace.queries.iter().map(|e| e.question.clone()).collect());
    let scheme = Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3));
    let mut sim = Simulation::new(&universe, trace, scheme.sim_config());

    let (a0, b0) = snapshot();
    let start = Instant::now();
    sim.run_to_end();
    let wall = start.elapsed().as_secs_f64();
    let (a1, b1) = snapshot();

    let metrics = sim.metrics();
    assert_eq!(metrics.queries_in, queries, "replay must consume the trace");
    assert_eq!(metrics.failed_in, 0, "no attack: replay must not fail");

    let qps = queries as f64 / wall;
    let allocs_per_query = (a1 - a0) as f64 / queries as f64;
    let bytes_per_query = (b1 - b0) as f64 / queries as f64;

    // Multi-threaded shared-cache mode: the same query stream replayed by
    // 1/2/4/8 workers over one ShardedCache (8 shards, coalescing on).
    let farm = Arc::new(ServerFarm::build(&universe, None));
    let hints = RootHints::new(universe.root_servers().to_vec());
    let mut mt_fields = String::new();
    for threads in [1usize, 2, 4, 8] {
        let (mt_qps, mt_allocs) = mt_replay(&farm, &hints, &questions, threads);
        println!("mt replay: {threads} thread(s) → {mt_qps:.0} qps, {mt_allocs:.2} allocs/query");
        mt_fields.push_str(&format!(
            "  \"mt_qps_{threads}\": {mt_qps:.1},\n  \
             \"mt_allocs_per_query_{threads}\": {mt_allocs:.2},\n",
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"resolve\",\n  \"schema_version\": 1,\n  \
         \"scheme\": \"{}\",\n  \"trace\": \"DEMO\",\n  \"scale\": {scale},\n  \
         \"queries\": {queries},\n  \"wall_secs\": {wall:.4},\n  \"qps\": {qps:.1},\n  \
         \"allocs_per_query\": {allocs_per_query:.2},\n  \
         \"bytes_per_query\": {bytes_per_query:.1},\n  \
         \"name_clone_parent_allocs_per_op\": {name_op_allocs:.4},\n  \
         \"warm_get_allocs_per_op\": {warm_get_allocs:.4},\n  \
         \"wire_qps\": {wire_qps:.1},\n  \
         \"wire_allocs_per_query\": {wire_allocs_per_query:.4},\n{mt_fields}  \
         \"peak_rss_kb\": {}\n}}\n",
        scheme.label(),
        peak_rss_kb(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    println!("[benchmark written to {out_path}]");
}
