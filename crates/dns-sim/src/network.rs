//! The simulated network between the caching server and the farm.

use crate::{CompiledAttack, ServerFarm};
use dns_core::{Message, SimTime};
use dns_resolver::Upstream;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Aggregate counters kept by the simulated network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Queries delivered to a live server.
    pub delivered: u64,
    /// Queries dropped because the destination was blacked out.
    pub dropped_by_attack: u64,
    /// Queries dropped by random packet loss.
    pub dropped_by_loss: u64,
    /// Queries to addresses where no server listens.
    pub unroutable: u64,
}

impl NetworkStats {
    /// Total queries the network saw.
    pub fn total(&self) -> u64 {
        self.delivered + self.dropped_by_attack + self.dropped_by_loss + self.unroutable
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net: {} delivered, {} dropped by attack, {} unroutable",
            self.delivered, self.dropped_by_attack, self.unroutable
        )
    }
}

/// [`Upstream`] implementation routing resolver queries to a
/// [`ServerFarm`], subject to a [`CompiledAttack`] and (optionally)
/// deterministic pseudo-random packet loss.
#[derive(Debug, Clone)]
pub struct SimNet {
    /// The farm is immutable once built and shared between concurrent
    /// simulations (the sweep engine runs one per worker thread), so it
    /// sits behind an `Arc` instead of being cloned per run.
    farm: Arc<ServerFarm>,
    attack: CompiledAttack,
    stats: NetworkStats,
    /// Loss probability in `[0, 1)`, applied per query.
    loss_rate: f64,
    /// xorshift state for the loss coin; deterministic per seed.
    loss_state: u64,
}

impl SimNet {
    /// Creates a network over `farm` with no attack and no loss.
    pub fn new(farm: ServerFarm) -> Self {
        SimNet::with_shared(Arc::new(farm))
    }

    /// Like [`SimNet::new`] but shares an already-built farm.
    pub fn with_shared(farm: Arc<ServerFarm>) -> Self {
        SimNet {
            farm,
            attack: CompiledAttack::none(),
            stats: NetworkStats::default(),
            loss_rate: 0.0,
            loss_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Enables deterministic random packet loss (fraction of queries that
    /// silently vanish). The experiments run loss-free; this models the
    /// "network or host problems" of Mockapetris' original TTL guidance
    /// and is used by the failure-injection tests.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn set_loss(&mut self, rate: f64, seed: u64) {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0, 1)");
        self.loss_rate = rate;
        self.loss_state = seed | 1;
    }

    fn loss_coin(&mut self) -> bool {
        if self.loss_rate == 0.0 {
            return false;
        }
        // xorshift64* — cheap, deterministic, good enough for loss coins.
        let mut x = self.loss_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.loss_state = x;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.loss_rate
    }

    /// Installs (or replaces) the attack schedule.
    pub fn set_attack(&mut self, attack: CompiledAttack) {
        self.attack = attack;
    }

    /// The current attack schedule.
    pub fn attack(&self) -> &CompiledAttack {
        &self.attack
    }

    /// Network-side counters.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// The underlying farm.
    pub fn farm(&self) -> &ServerFarm {
        &self.farm
    }
}

impl Upstream for SimNet {
    fn query(&mut self, server: Ipv4Addr, query: &Message, now: SimTime) -> Option<Message> {
        if self.attack.is_dead(server, now) {
            self.stats.dropped_by_attack += 1;
            return None;
        }
        if self.loss_coin() {
            self.stats.dropped_by_loss += 1;
            return None;
        }
        match self.farm.handle(server, query) {
            Some(resp) => {
                self.stats.delivered += 1;
                Some(resp)
            }
            None => {
                self.stats.unroutable += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackScenario;
    use dns_core::{Question, RecordType, SimDuration};
    use dns_trace::UniverseSpec;

    #[test]
    fn routes_and_counts() {
        let u = UniverseSpec::small().build(7);
        let farm = ServerFarm::build(&u, None);
        let mut net = SimNet::new(farm);
        let root = u.root_servers()[0].1;
        let q = Message::query(1, Question::new("com".parse().unwrap(), RecordType::Ns));

        assert!(net.query(root, &q, SimTime::ZERO).is_some());
        assert!(net
            .query(Ipv4Addr::new(203, 0, 113, 9), &q, SimTime::ZERO)
            .is_none());

        net.set_attack(
            AttackScenario::root_and_tlds(SimTime::ZERO, SimDuration::from_hours(1)).compile(&u),
        );
        assert!(net.query(root, &q, SimTime::from_mins(30)).is_none());
        assert!(net.query(root, &q, SimTime::from_hours(2)).is_some());

        let stats = net.stats();
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.dropped_by_attack, 1);
        assert_eq!(stats.unroutable, 1);
        assert_eq!(stats.total(), 4);
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let u = UniverseSpec::small().build(7);
        let farm = ServerFarm::build(&u, None);
        let mut net = SimNet::new(farm);
        net.set_loss(0.3, 42);
        let root = u.root_servers()[0].1;
        let q = Message::query(1, Question::new("com".parse().unwrap(), RecordType::Ns));
        for _ in 0..10_000 {
            let _ = net.query(root, &q, SimTime::ZERO);
        }
        let lost = net.stats().dropped_by_loss;
        assert!((2_500..=3_500).contains(&lost), "lost {lost} of 10000");
        assert_eq!(net.stats().total(), 10_000);
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let u = UniverseSpec::small().build(7);
        let run = |seed| {
            let mut net = SimNet::new(ServerFarm::build(&u, None));
            net.set_loss(0.2, seed);
            let root = u.root_servers()[0].1;
            let q = Message::query(1, Question::new("com".parse().unwrap(), RecordType::Ns));
            (0..200)
                .map(|_| net.query(root, &q, SimTime::ZERO).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1)")]
    fn full_loss_rejected() {
        let u = UniverseSpec::small().build(7);
        let mut net = SimNet::new(ServerFarm::build(&u, None));
        net.set_loss(1.0, 1);
    }
}
