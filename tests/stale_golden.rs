//! Golden transcript for the serve-stale path: one seeded warm
//! resolution, then a total blackout probe after the answer expired —
//! the demand fetch must burn its full retry budget and the expired
//! record must answer from the stale window, rendering the same
//! `explain()` text byte-for-byte forever.
//!
//! Everything is virtual (time, loss, retry jitter), so this transcript
//! is a contract, not a flaky snapshot. When a change *intentionally*
//! alters the stale path, re-capture with
//! `cargo test -q --test stale_golden -- --nocapture` and explain the
//! change in the PR description.

use dns_resilience::prelude::*;
use dns_resilience::resolver::{Outcome, Upstream};

/// The stale window the scripted resolver runs with.
const STALE_WINDOW: SimDuration = SimDuration::from_hours(1);

/// A total blackout: every datagram to every server vanishes.
struct Blackhole;

impl Upstream for Blackhole {
    fn query(
        &mut self,
        _server: std::net::Ipv4Addr,
        _query: &dns_resilience::core::Message,
        _now: SimTime,
    ) -> Option<dns_resilience::core::Message> {
        None
    }
}

fn scripted_stale_serve() -> (CachingServer, Outcome) {
    let universe = UniverseSpec::small().build(7);
    let farm = ServerFarm::build(&universe, None);
    let mut net = SimNet::new(farm);

    let config = ResolverConfig::builder()
        .retry(RetryPolicy::standard())
        .seed(1)
        .max_stale(STALE_WINDOW)
        .build();
    let hints = RootHints::new(universe.root_servers().to_vec());
    let mut cs = CachingServer::new(config, hints);

    // Warm: the most popular name in the generated universe, resolved
    // over a healthy network.
    let (qname, _) = universe.query_targets().into_iter().next().unwrap();
    let question = Question::new(qname, RecordType::A);
    let warm = cs.resolve(&question, SimTime::ZERO, &mut net);
    assert!(
        matches!(warm, Outcome::Answer { .. }),
        "warm resolve must answer: {warm:?}"
    );
    let expiry = cs
        .answer_expiry(&question, SimTime::ZERO)
        .expect("warm answer is cached");

    // Probe ten minutes past the answer's expiry — inside the one-hour
    // window — through a total blackout, so the demand fetch must burn
    // its whole retry budget before the stale path takes over.
    cs.obs_mut().enable_trace();
    let probe = expiry + SimDuration::from_mins(10);
    let outcome = cs.resolve(&question, probe, &mut Blackhole);
    (cs, outcome)
}

#[test]
fn stale_serve_trace_is_byte_identical() {
    let (cs, outcome) = scripted_stale_serve();
    assert!(
        matches!(
            outcome,
            Outcome::Answer {
                from_cache: true,
                ..
            }
        ),
        "blackout probe must serve stale from cache: {outcome:?}"
    );
    let metrics = cs.metrics();
    assert_eq!(
        metrics.stale_served, 1,
        "exactly one stale serve: {metrics}"
    );
    assert_eq!(metrics.stale_expired_unserved, 0);
    let explain = cs.obs().trace().unwrap().explain();
    println!("{explain}");
    assert_eq!(explain, GOLDEN_EXPLAIN);
}

const GOLDEN_EXPLAIN: &str = "\
-- query trace (19 events) --
 1. query www.z00000.t025. A at 0d04:10:00
 2. cache miss
 3. infra: deepest usable ancestor z00000.t025.
 4. send -> 10.0.0.102
 5. timeout <- 10.0.0.102
 6. send -> 10.0.0.103
 7. timeout <- 10.0.0.103
 8. backoff after round 0: wait 109ms
 9. send -> 10.0.0.102
10. timeout <- 10.0.0.102
11. send -> 10.0.0.103
12. timeout <- 10.0.0.103
13. backoff after round 1: wait 299ms
14. send -> 10.0.0.102
15. timeout <- 10.0.0.102
16. send -> 10.0.0.103
17. timeout <- 10.0.0.103
18. stale serve (expired at 0d04:00:00)
19. outcome Answer (cache) in 6408ms
";
