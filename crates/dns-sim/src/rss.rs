//! Peak resident-set accounting for memory-bounded sweeps.

/// Peak resident set size (`VmHWM`) of this process in KiB, read from
/// `/proc/self/status`; 0 where unavailable (non-Linux).
///
/// This is a process-global high-water mark: in a multi-threaded sweep
/// it reflects everything resident when the reading is taken, not one
/// unit's private footprint. It is still the honest number for the
/// question the scale sweeps ask — "did replaying this trace ever
/// require materializing it?" — because a materialized month-long trace
/// would move the high-water mark by orders of magnitude.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_a_plausible_high_water_mark() {
        let kb = peak_rss_kb();
        // A running test binary is at least a megabyte resident on any
        // Linux; on other platforms the probe reports 0.
        if cfg!(target_os = "linux") {
            assert!(kb > 1_024, "VmHWM {kb} KiB");
        }
    }

    #[test]
    fn is_monotone_nondecreasing() {
        let before = peak_rss_kb();
        let sink: Vec<u8> = vec![0xAB; 4 << 20];
        std::hint::black_box(&sink);
        assert!(peak_rss_kb() >= before);
    }
}
