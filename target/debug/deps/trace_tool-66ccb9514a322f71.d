/root/repo/target/debug/deps/trace_tool-66ccb9514a322f71.d: crates/dns-bench/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-66ccb9514a322f71: crates/dns-bench/src/bin/trace_tool.rs

crates/dns-bench/src/bin/trace_tool.rs:
