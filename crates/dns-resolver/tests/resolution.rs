//! End-to-end resolution tests: a caching server resolving through a real
//! root → TLD → SLD hierarchy of [`dns_auth::AuthServer`]s, including
//! attack (blacked-out zone) scenarios that exercise the paper's schemes.

use dns_auth::AuthServer;
use dns_core::{Delegation, Message, Name, RData, Record, RecordType, SimTime, Ttl, ZoneBuilder};
use dns_resolver::{CachingServer, Outcome, RenewalPolicy, ResolverConfig, RootHints, Upstream};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn ip(a: u8, b: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, a, b)
}

/// A miniature internet: authoritative servers addressed by IP, plus a set
/// of blacked-out addresses standing in for a DDoS attack.
struct MiniNet {
    servers: HashMap<Ipv4Addr, AuthServer>,
    dead: HashSet<Ipv4Addr>,
}

impl MiniNet {
    fn add(&mut self, server: AuthServer) {
        self.servers.insert(server.addr(), server);
    }

    fn kill(&mut self, addr: Ipv4Addr) {
        self.dead.insert(addr);
    }

    fn revive(&mut self, addr: Ipv4Addr) {
        self.dead.remove(&addr);
    }
}

impl Upstream for MiniNet {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        if self.dead.contains(&server) {
            return None;
        }
        self.servers.get(&server).map(|s| s.handle_query(query))
    }
}

/// Builds the test universe:
///
/// ```text
/// .  (a.root, 10.0.0.1)
/// └── edu (ns.edu, 10.0.1.1), IRR TTL 2d
///     └── ucla.edu (ns1/ns2.ucla.edu, 10.0.2.1/.2), IRR TTL 12h
///         ├── www.ucla.edu A 10.0.2.80 (TTL 4h)
///         ├── web.ucla.edu CNAME www.ucla.edu
///         └── cs.ucla.edu (ns.cs.ucla.edu, 10.0.3.1), IRR TTL 1h
///             └── host.cs.ucla.edu A 10.0.3.80 (TTL 10m)
/// com (ns.com, 10.0.4.1), IRR TTL 2d
/// └── offsite.com (ns.offsite.com, 10.0.5.1), hosting edu-side NS target
/// ```
fn build_net() -> (MiniNet, RootHints) {
    let mut net = MiniNet {
        servers: HashMap::new(),
        dead: HashSet::new(),
    };

    let root_zone = ZoneBuilder::new(Name::root())
        .ns(name("a.root-servers.net"), ip(0, 1), Ttl::from_days(7))
        .delegate(Delegation {
            child: name("edu"),
            ns_names: vec![name("ns.edu")],
            ns_ttl: Ttl::from_days(2),
            glue: vec![Record::new(
                name("ns.edu"),
                Ttl::from_days(2),
                RData::A(ip(1, 1)),
            )],
            ds: Vec::new(),
        })
        .delegate(Delegation {
            child: name("com"),
            ns_names: vec![name("ns.com")],
            ns_ttl: Ttl::from_days(2),
            glue: vec![Record::new(
                name("ns.com"),
                Ttl::from_days(2),
                RData::A(ip(4, 1)),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut root_srv = AuthServer::new(name("a.root-servers.net"), ip(0, 1));
    root_srv.add_zone(root_zone);
    net.add(root_srv);

    let edu_zone = ZoneBuilder::new(name("edu"))
        .ns(name("ns.edu"), ip(1, 1), Ttl::from_days(2))
        .delegate(Delegation {
            child: name("ucla.edu"),
            ns_names: vec![name("ns1.ucla.edu"), name("ns2.ucla.edu")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![
                Record::new(
                    name("ns1.ucla.edu"),
                    Ttl::from_hours(12),
                    RData::A(ip(2, 1)),
                ),
                Record::new(
                    name("ns2.ucla.edu"),
                    Ttl::from_hours(12),
                    RData::A(ip(2, 2)),
                ),
            ],
            ds: Vec::new(),
        })
        .delegate(Delegation {
            child: name("remote.edu"),
            // Out-of-bailiwick server: no glue possible.
            ns_names: vec![name("ns.offsite.com")],
            ns_ttl: Ttl::from_hours(6),
            glue: vec![],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut edu_srv = AuthServer::new(name("ns.edu"), ip(1, 1));
    edu_srv.add_zone(edu_zone);
    net.add(edu_srv);

    let ucla_zone = ZoneBuilder::new(name("ucla.edu"))
        .ns(name("ns1.ucla.edu"), ip(2, 1), Ttl::from_hours(12))
        .ns(name("ns2.ucla.edu"), ip(2, 2), Ttl::from_hours(12))
        .a(name("www.ucla.edu"), ip(2, 80), Ttl::from_hours(4))
        .record(Record::new(
            name("web.ucla.edu"),
            Ttl::from_hours(4),
            RData::Cname(name("www.ucla.edu")),
        ))
        .delegate(Delegation {
            child: name("cs.ucla.edu"),
            ns_names: vec![name("ns.cs.ucla.edu")],
            ns_ttl: Ttl::from_hours(1),
            glue: vec![Record::new(
                name("ns.cs.ucla.edu"),
                Ttl::from_hours(1),
                RData::A(ip(3, 1)),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    for (srv_name, addr) in [("ns1.ucla.edu", ip(2, 1)), ("ns2.ucla.edu", ip(2, 2))] {
        let mut srv = AuthServer::new(name(srv_name), addr);
        srv.add_zone(ucla_zone.clone());
        net.add(srv);
    }

    let cs_zone = ZoneBuilder::new(name("cs.ucla.edu"))
        .ns(name("ns.cs.ucla.edu"), ip(3, 1), Ttl::from_hours(1))
        .a(name("host.cs.ucla.edu"), ip(3, 80), Ttl::from_mins(10))
        .build()
        .unwrap();
    let mut cs_srv = AuthServer::new(name("ns.cs.ucla.edu"), ip(3, 1));
    cs_srv.add_zone(cs_zone);
    net.add(cs_srv);

    let com_zone = ZoneBuilder::new(name("com"))
        .ns(name("ns.com"), ip(4, 1), Ttl::from_days(2))
        .delegate(Delegation {
            child: name("offsite.com"),
            ns_names: vec![name("ns.offsite.com")],
            ns_ttl: Ttl::from_days(1),
            glue: vec![Record::new(
                name("ns.offsite.com"),
                Ttl::from_days(1),
                RData::A(ip(5, 1)),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut com_srv = AuthServer::new(name("ns.com"), ip(4, 1));
    com_srv.add_zone(com_zone);
    net.add(com_srv);

    let offsite_zone = ZoneBuilder::new(name("offsite.com"))
        .ns(name("ns.offsite.com"), ip(5, 1), Ttl::from_days(1))
        .build()
        .unwrap();
    let remote_zone = ZoneBuilder::new(name("remote.edu"))
        .ns(name("ns.offsite.com"), ip(5, 1), Ttl::from_hours(6))
        .a(name("www.remote.edu"), ip(5, 80), Ttl::from_hours(2))
        .build()
        .unwrap();
    let mut offsite_srv = AuthServer::new(name("ns.offsite.com"), ip(5, 1));
    offsite_srv.add_zone(offsite_zone);
    offsite_srv.add_zone(remote_zone);
    net.add(offsite_srv);

    let hints = RootHints::new(vec![(name("a.root-servers.net"), ip(0, 1))]);
    (net, hints)
}

fn answered_a(outcome: &Outcome) -> Option<Ipv4Addr> {
    match outcome {
        Outcome::Answer { records, .. } => records.iter().rev().find_map(|r| match r.rdata() {
            RData::A(a) => Some(*a),
            _ => None,
        }),
        _ => None,
    }
}

#[test]
fn full_walk_from_root() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    assert_eq!(answered_a(&out), Some(ip(2, 80)));
    assert!(!out.from_cache());
    // Walk: root → edu → ucla.edu = 3 outgoing queries, 2 referrals.
    assert_eq!(cs.metrics().queries_out, 3);
    assert_eq!(cs.metrics().referrals, 2);
}

#[test]
fn second_query_is_cache_hit() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_mins(5), &mut net);
    assert!(out.from_cache());
    assert_eq!(cs.metrics().cache_hits, 1);
    assert_eq!(cs.metrics().queries_out, 3); // unchanged
}

#[test]
fn cached_infrastructure_skips_ancestors() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    // Different name, same zone, after the www TTL but inside the IRR TTL:
    // the resolver must go straight to ucla.edu's servers.
    let before = cs.metrics().queries_out;
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(5), &mut net);
    assert_eq!(answered_a(&out), Some(ip(2, 80)));
    assert_eq!(cs.metrics().queries_out, before + 1);
}

#[test]
fn cname_chain_resolves() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    let out = cs.resolve_a(&name("web.ucla.edu"), SimTime::ZERO, &mut net);
    match &out {
        Outcome::Answer { records, .. } => {
            assert_eq!(records[0].rtype(), RecordType::Cname);
            assert_eq!(answered_a(&out), Some(ip(2, 80)));
        }
        other => panic!("expected answer, got {other:?}"),
    }
}

#[test]
fn nxdomain_is_negative_cached() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    let out = cs.resolve_a(&name("missing.ucla.edu"), SimTime::ZERO, &mut net);
    assert!(matches!(out, Outcome::NxDomain { from_cache: false }));
    let out = cs.resolve_a(&name("missing.ucla.edu"), SimTime::from_mins(1), &mut net);
    assert!(matches!(out, Outcome::NxDomain { from_cache: true }));
    assert_eq!(cs.metrics().negative_answers, 2);
}

#[test]
fn out_of_bailiwick_ns_resolved_via_other_branch() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    // remote.edu's only NS is ns.offsite.com (no glue); resolving it
    // requires a detour through com.
    let out = cs.resolve_a(&name("www.remote.edu"), SimTime::ZERO, &mut net);
    assert_eq!(answered_a(&out), Some(ip(5, 80)));
}

#[test]
fn attack_on_tld_fails_vanilla_after_irr_expiry() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    // Black out root and edu. ucla.edu IRRs live 12h.
    net.kill(ip(0, 1));
    net.kill(ip(1, 1));

    // Inside the IRR TTL: resolution still works (direct to ucla.edu).
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(11), &mut net);
    assert_eq!(answered_a(&out), Some(ip(2, 80)));

    // After IRR expiry the resolver must walk from the (dead) root →
    // failure. (Query a name whose data record is no longer cached; the
    // 11h query re-cached www's A record until 15h.)
    let out = cs.resolve_a(&name("web.ucla.edu"), SimTime::from_hours(13), &mut net);
    assert!(out.is_failure());
    assert_eq!(cs.metrics().failed_in, 1);

    // Revive the infrastructure: resolution recovers.
    net.revive(ip(0, 1));
    net.revive(ip(1, 1));
    let out = cs.resolve_a(&name("web.ucla.edu"), SimTime::from_hours(14), &mut net);
    assert!(out.is_success());
}

#[test]
fn refresh_extends_infrastructure_lifetime_under_attack() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints);

    // Prime at t=0, then query again at t=8h: the response from
    // ucla.edu's servers refreshes the IRR TTL to 8h+12h = 20h.
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(8), &mut net);
    assert!(cs.metrics().refreshes >= 1);

    net.kill(ip(0, 1));
    net.kill(ip(1, 1));

    // At t=13h a vanilla resolver would have lost the IRRs (12h TTL); the
    // refreshing resolver still holds them — and this very answer, served
    // by ucla.edu's (alive) servers, refreshes them again to 13h+12h=25h.
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(13), &mut net);
    assert_eq!(answered_a(&out), Some(ip(2, 80)));

    // Once the demand gap exceeds the TTL, refresh alone cannot help:
    // past the last refreshed expiry (25h) the walk from root fails.
    let out = cs.resolve_a(&name("web.ucla.edu"), SimTime::from_hours(38), &mut net);
    assert!(out.is_failure());
}

#[test]
fn vanilla_does_not_refresh_from_responses() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(8), &mut net);
    assert_eq!(cs.metrics().refreshes, 0);

    net.kill(ip(0, 1));
    net.kill(ip(1, 1));
    // IRRs expired at 12h despite the 8h contact.
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(13), &mut net);
    assert!(out.is_failure());
}

#[test]
fn renewal_keeps_zone_alive_without_demand() {
    let (mut net, hints) = build_net();
    let policy = RenewalPolicy::lru(3);
    let mut cs = CachingServer::new(ResolverConfig::with_renewal(policy), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    // ucla.edu IRRs expire at 12h; with credit 3 the resolver renews at
    // 12h, 24h and 36h without any client demand.
    assert_eq!(cs.next_renewal_due(), Some(SimTime::from_hours(12)));

    net.kill(ip(0, 1));
    net.kill(ip(1, 1));

    // Run the clock forward, executing renewals as they come due. The
    // `edu` entry (2-day TTL, credit 3) renews once at 48h → 4 in total.
    cs.run_renewals_until(SimTime::from_hours(49), &mut net);
    assert_eq!(cs.metrics().renewals_sent, 4);
    // edu's servers are dead, so its renewal fails; ucla's 3 succeed.
    assert_eq!(cs.metrics().renewals_ok, 3);

    // 47h: 36h renewal + 12h TTL = fresh until 48h → still resolvable.
    // (Probe on a clone: a real demand query would re-grant credit.)
    let out = cs
        .clone()
        .resolve_a(&name("www.ucla.edu"), SimTime::from_hours(47), &mut net);
    assert!(out.is_success(), "got {out}");

    // After 48h the credit is exhausted and the walk from root fails.
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(49), &mut net);
    assert!(out.is_failure());
}

#[test]
fn renewal_of_attacked_zone_fails_gracefully() {
    let (mut net, hints) = build_net();
    let policy = RenewalPolicy::lru(2);
    let mut cs = CachingServer::new(ResolverConfig::with_renewal(policy), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    // Kill ucla.edu's own servers: renewal of its IRRs cannot succeed.
    net.kill(ip(2, 1));
    net.kill(ip(2, 2));
    cs.run_renewals_until(SimTime::from_hours(12), &mut net);
    assert!(cs.metrics().renewals_sent >= 1);
    assert_eq!(cs.metrics().renewals_ok, 0);
}

#[test]
fn renewal_does_not_grant_itself_credit() {
    let (mut net, hints) = build_net();
    let policy = RenewalPolicy::lru(1);
    let mut cs = CachingServer::new(ResolverConfig::with_renewal(policy), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    // One credit per zone (ucla.edu at 12h, edu at 48h) → exactly two
    // renewals; their responses must not refill their own budgets.
    cs.run_renewals_until(SimTime::from_days(3), &mut net);
    assert_eq!(cs.metrics().renewals_sent, 2);
    cs.run_renewals_until(SimTime::from_days(13), &mut net);
    assert_eq!(cs.metrics().renewals_sent, 2);
}

#[test]
fn long_ttl_zone_survives_longer() {
    let (mut net, hints) = build_net();
    // Operator-side long TTL: republish ucla.edu's IRRs with 3 days.
    for addr in [ip(2, 1), ip(2, 2)] {
        let srv = net.servers.get_mut(&addr).unwrap();
        let zone = srv.zones_mut().get_mut(&name("ucla.edu")).unwrap();
        zone.set_infra_ttl(Ttl::from_days(3));
    }
    // The parent's copy keeps the short TTL; the child copy (RFC 2181)
    // replaces it on first direct contact.
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    net.kill(ip(0, 1));
    net.kill(ip(1, 1));
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_days(2), &mut net);
    assert!(out.is_success());
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_days(4), &mut net);
    assert!(out.is_failure());
}

#[test]
fn ttl_cap_bounds_absurd_zone_ttls() {
    let (mut net, hints) = build_net();
    for addr in [ip(2, 1), ip(2, 2)] {
        let srv = net.servers.get_mut(&addr).unwrap();
        let zone = srv.zones_mut().get_mut(&name("ucla.edu")).unwrap();
        zone.set_infra_ttl(Ttl::from_days(365));
    }
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    // The cap (7 days) applies, so at day 8 the IRRs are gone.
    net.kill(ip(0, 1));
    net.kill(ip(1, 1));
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_days(6), &mut net);
    assert!(out.is_success());
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_days(8), &mut net);
    assert!(out.is_failure());
}

#[test]
fn gap_samples_capture_expiry_to_next_use() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    // ucla.edu IRRs expire at 12h; next demand at 20h → gap 8h.
    cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(20), &mut net);
    let samples = cs.take_gap_samples();
    let ucla = samples.iter().find(|s| s.zone == name("ucla.edu")).unwrap();
    assert_eq!(ucla.gap.as_secs(), 8 * 3600);
    assert_eq!(ucla.ttl, Ttl::from_hours(12));
}

#[test]
fn occupancy_tracks_fresh_entries() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    let occ = cs.occupancy(SimTime::from_mins(1));
    // Root hints + edu + ucla.edu.
    assert_eq!(occ.zones, 3);
    assert!(occ.data_rrsets >= 1); // www.ucla.edu A
                                   // After everything expires only the hints remain.
    let occ = cs.occupancy(SimTime::from_days(30));
    assert_eq!(occ.zones, 1);
    assert_eq!(occ.data_rrsets, 0);
}

#[test]
fn failed_out_counts_dead_servers() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    net.kill(ip(2, 1)); // first ucla server dead, second alive
    let out = cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(5), &mut net);
    assert!(out.is_success());
    assert_eq!(cs.metrics().failed_out, 1); // one timeout before failover
}

/// Re-points the `ucla.edu` delegation (at the `edu` parent) to a new
/// server, and stands the new server up with a distinguishable zone. The
/// old servers keep answering — the "non-cooperative former owner" of
/// paper §6.
fn change_ucla_ownership(net: &mut MiniNet) {
    let new_zone = ZoneBuilder::new(name("ucla.edu"))
        .ns(name("ns9.ucla.edu"), ip(9, 1), Ttl::from_hours(12))
        .a(name("www.ucla.edu"), ip(9, 80), Ttl::from_hours(4))
        .build()
        .unwrap();
    let mut new_srv = AuthServer::new(name("ns9.ucla.edu"), ip(9, 1));
    new_srv.add_zone(new_zone);
    net.add(new_srv);

    let edu_srv = net.servers.get_mut(&ip(1, 1)).unwrap();
    let edu_zone = edu_srv.zones_mut().get_mut(&name("edu")).unwrap();
    edu_zone
        .add_delegation(Delegation {
            child: name("ucla.edu"),
            ns_names: vec![name("ns9.ucla.edu")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![Record::new(
                name("ns9.ucla.edu"),
                Ttl::from_hours(12),
                RData::A(ip(9, 1)),
            )],
            ds: Vec::new(),
        })
        .unwrap();
}

#[test]
fn without_recheck_a_refreshing_resolver_never_sees_new_owners() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    change_ucla_ownership(&mut net);

    // Steady demand (every 8h, inside the 12h IRR TTL) keeps refreshing
    // the old infrastructure; a month later the resolver still talks to
    // the abandoned servers and never learns about the new delegation.
    let mut hour = 8;
    while hour <= 30 * 24 {
        let t = SimTime::from_hours(hour);
        let out = cs.resolve_a(&name("www.ucla.edu"), t, &mut net);
        assert_eq!(answered_a(&out), Some(ip(2, 80)), "hour {hour}");
        hour += 8;
    }
}

#[test]
fn parent_recheck_bounds_delegation_staleness() {
    let (mut net, hints) = build_net();
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .parent_recheck(dns_core::SimDuration::from_days(7))
        .build();
    let mut cs = CachingServer::new(config, hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    change_ucla_ownership(&mut net);

    // Same steady 8-hourly demand as the no-recheck test.
    let mut switched_at = None;
    let mut hour = 8;
    while hour <= 10 * 24 {
        let t = SimTime::from_hours(hour);
        let out = cs.resolve_a(&name("www.ucla.edu"), t, &mut net);
        if answered_a(&out) == Some(ip(9, 80)) && switched_at.is_none() {
            switched_at = Some(hour);
        }
        hour += 8;
    }
    let switched = switched_at.expect("resolver must discover the new owner");
    assert!(
        switched <= 8 * 24,
        "recheck every 7 days must surface the new delegation within ~8 days, got hour {switched}"
    );
}

#[test]
fn responsive_server_is_promoted_after_failover() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);

    // First ucla server dies; the next query pays one timeout, fails
    // over, and promotes the live server.
    net.kill(ip(2, 1));
    cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(5), &mut net);
    assert_eq!(cs.metrics().failed_out, 1);

    // Subsequent direct queries go straight to the promoted server — no
    // further timeouts accumulate.
    cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(10), &mut net);
    cs.resolve_a(&name("web.ucla.edu"), SimTime::from_hours(11), &mut net);
    assert_eq!(cs.metrics().failed_out, 1);
}

#[test]
fn deep_delegation_resolves_and_caches_by_level() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    let out = cs.resolve_a(&name("host.cs.ucla.edu"), SimTime::ZERO, &mut net);
    assert_eq!(answered_a(&out), Some(ip(3, 80)));
    // Walk: root → edu → ucla.edu → cs.ucla.edu.
    assert_eq!(cs.metrics().queries_out, 4);
    // All three zone levels now cached.
    let occ = cs.occupancy(SimTime::from_mins(30));
    assert_eq!(occ.zones, 4); // root, edu, ucla, cs
}
