/root/repo/target/debug/deps/table1-c6f2b09cd2f4464e.d: crates/dns-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c6f2b09cd2f4464e: crates/dns-bench/src/bin/table1.rs

crates/dns-bench/src/bin/table1.rs:
