/root/repo/target/debug/examples/secure_resolution-c5689b4797275817.d: examples/secure_resolution.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_resolution-c5689b4797275817.rmeta: examples/secure_resolution.rs Cargo.toml

examples/secure_resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
