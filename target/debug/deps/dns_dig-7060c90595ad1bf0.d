/root/repo/target/debug/deps/dns_dig-7060c90595ad1bf0.d: crates/dns-netd/src/bin/dns-dig.rs

/root/repo/target/debug/deps/dns_dig-7060c90595ad1bf0: crates/dns-netd/src/bin/dns-dig.rs

crates/dns-netd/src/bin/dns-dig.rs:
