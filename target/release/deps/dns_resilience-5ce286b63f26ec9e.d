/root/repo/target/release/deps/dns_resilience-5ce286b63f26ec9e.d: src/lib.rs

/root/repo/target/release/deps/libdns_resilience-5ce286b63f26ec9e.rlib: src/lib.rs

/root/repo/target/release/deps/libdns_resilience-5ce286b63f26ec9e.rmeta: src/lib.rs

src/lib.rs:
