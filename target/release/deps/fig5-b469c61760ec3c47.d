/root/repo/target/release/deps/fig5-b469c61760ec3c47.d: crates/dns-bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-b469c61760ec3c47: crates/dns-bench/src/bin/fig5.rs

crates/dns-bench/src/bin/fig5.rs:
