/root/repo/target/release/deps/table2-fa8e1214419ea711.d: crates/dns-bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-fa8e1214419ea711: crates/dns-bench/src/bin/table2.rs

crates/dns-bench/src/bin/table2.rs:
