/root/repo/target/debug/deps/end_to_end-777d9ff748e38e04.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-777d9ff748e38e04: tests/end_to_end.rs

tests/end_to_end.rs:
