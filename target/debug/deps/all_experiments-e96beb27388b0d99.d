/root/repo/target/debug/deps/all_experiments-e96beb27388b0d99.d: crates/dns-bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-e96beb27388b0d99: crates/dns-bench/src/bin/all_experiments.rs

crates/dns-bench/src/bin/all_experiments.rs:
