/root/repo/target/debug/deps/discussion_maxdamage-560241f4e9293a40.d: crates/dns-bench/src/bin/discussion_maxdamage.rs Cargo.toml

/root/repo/target/debug/deps/libdiscussion_maxdamage-560241f4e9293a40.rmeta: crates/dns-bench/src/bin/discussion_maxdamage.rs Cargo.toml

crates/dns-bench/src/bin/discussion_maxdamage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
