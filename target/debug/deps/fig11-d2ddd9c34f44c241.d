/root/repo/target/debug/deps/fig11-d2ddd9c34f44c241.d: crates/dns-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-d2ddd9c34f44c241: crates/dns-bench/src/bin/fig11.rs

crates/dns-bench/src/bin/fig11.rs:
