/root/repo/target/debug/deps/table1-e221c3dd916fb38e.d: crates/dns-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-e221c3dd916fb38e.rmeta: crates/dns-bench/src/bin/table1.rs Cargo.toml

crates/dns-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
