/root/repo/target/debug/deps/dns_bench-e42a1d09327b4f3b.d: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/debug/deps/dns_bench-e42a1d09327b4f3b: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

crates/dns-bench/src/lib.rs:
crates/dns-bench/src/experiments/mod.rs:
