/root/repo/target/debug/examples/wire_anatomy-12dda46e543af2c6.d: examples/wire_anatomy.rs

/root/repo/target/debug/examples/wire_anatomy-12dda46e543af2c6: examples/wire_anatomy.rs

examples/wire_anatomy.rs:
