/root/repo/target/debug/deps/fig8-ab70de3d227c5560.d: crates/dns-bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-ab70de3d227c5560.rmeta: crates/dns-bench/src/bin/fig8.rs Cargo.toml

crates/dns-bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
