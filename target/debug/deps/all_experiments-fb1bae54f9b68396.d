/root/repo/target/debug/deps/all_experiments-fb1bae54f9b68396.d: crates/dns-bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-fb1bae54f9b68396: crates/dns-bench/src/bin/all_experiments.rs

crates/dns-bench/src/bin/all_experiments.rs:
