//! Synthetic DNS namespace and query-trace generation.
//!
//! The paper evaluates its schemes on packet traces captured at five US
//! universities plus the live 2006 DNS tree — inputs we do not have. This
//! crate builds the closest synthetic equivalents (see `DESIGN.md` §5):
//!
//! * [`Universe`] — a generated DNS tree: root → ~300 TLDs → Zipf-sized
//!   second-level populations → occasional deeper zones, each zone with
//!   2–3 name-servers, an infrastructure-record TTL drawn from an
//!   empirical mixture (minutes → days, mode ≤ 12 h, as the paper
//!   reports), and a handful of data records,
//! * [`Trace`] — a multi-day query workload: Zipf name popularity,
//!   per-client streams, diurnal rate modulation,
//! * [`TraceSpec`] — presets `TRC1`–`TRC6` mirroring Table 1's shape
//!   (five one-week traces of varying size plus one one-month trace).
//!
//! Everything is deterministic given the seed.
//!
//! # Example
//!
//! ```rust
//! use dns_trace::{TraceSpec, UniverseSpec};
//!
//! let universe = UniverseSpec::small().build(7);
//! let trace = TraceSpec::demo().generate(&universe, 7);
//! assert!(!trace.queries.is_empty());
//! let stats = trace.stats();
//! assert!(stats.distinct_zones <= universe.zone_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod intern;
pub mod io;
mod namespace;
mod spec;
mod stream;
mod trace;
mod ttl_model;
mod workload;
mod zipf;

pub use intern::{InternedNamespace, NameId, NameTable, NameTableBuilder};
pub use namespace::{NxnsBombSpec, Universe, UniverseSpec, ZoneSpec};
pub use spec::TraceSpec;
pub use stream::{QueryStream, TargetSource, TraceCursor, TraceStream, UniverseTargets};
pub use trace::{QueryEvent, Trace, TraceStats};
pub use ttl_model::TtlModel;
pub use workload::WorkloadBuilder;
pub use zipf::Zipf;
