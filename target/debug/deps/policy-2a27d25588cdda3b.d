/root/repo/target/debug/deps/policy-2a27d25588cdda3b.d: crates/dns-bench/benches/policy.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy-2a27d25588cdda3b.rmeta: crates/dns-bench/benches/policy.rs Cargo.toml

crates/dns-bench/benches/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
