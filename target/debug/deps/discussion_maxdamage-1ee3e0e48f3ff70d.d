/root/repo/target/debug/deps/discussion_maxdamage-1ee3e0e48f3ff70d.d: crates/dns-bench/src/bin/discussion_maxdamage.rs Cargo.toml

/root/repo/target/debug/deps/libdiscussion_maxdamage-1ee3e0e48f3ff70d.rmeta: crates/dns-bench/src/bin/discussion_maxdamage.rs Cargo.toml

crates/dns-bench/src/bin/discussion_maxdamage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
