/root/repo/target/debug/deps/dns_stats-194e7d381024d61b.d: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

/root/repo/target/debug/deps/libdns_stats-194e7d381024d61b.rlib: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

/root/repo/target/debug/deps/libdns_stats-194e7d381024d61b.rmeta: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

crates/dns-stats/src/lib.rs:
crates/dns-stats/src/cdf.rs:
crates/dns-stats/src/histogram.rs:
crates/dns-stats/src/manifest.rs:
crates/dns-stats/src/plot.rs:
crates/dns-stats/src/summary.rs:
crates/dns-stats/src/table.rs:
