/root/repo/target/debug/deps/probe_timing-7285935bd27e9c1f.d: crates/dns-bench/src/bin/probe_timing.rs

/root/repo/target/debug/deps/probe_timing-7285935bd27e9c1f: crates/dns-bench/src/bin/probe_timing.rs

crates/dns-bench/src/bin/probe_timing.rs:
