/root/repo/target/debug/deps/all_experiments-337daedd285dc2da.d: crates/dns-bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-337daedd285dc2da.rmeta: crates/dns-bench/src/bin/all_experiments.rs Cargo.toml

crates/dns-bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
