//! Error type shared across the DNS crates.

use std::fmt;

/// Errors produced while parsing, encoding or validating DNS data.
///
/// Every fallible public function in `dns-core` returns this type. It is
/// `Send + Sync + 'static` so it can flow through threads and be boxed as a
/// `dyn Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnsError {
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A label was empty where a non-empty label is required.
    EmptyLabel,
    /// A label contained a byte outside the supported hostname alphabet.
    InvalidLabelByte(u8),
    /// The full name would exceed 255 octets on the wire.
    NameTooLong(usize),
    /// Wire data ended before a complete item could be decoded.
    UnexpectedEof {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A compression pointer pointed at or beyond its own location, or the
    /// pointer chain was too long to be valid.
    BadPointer(usize),
    /// An unknown or unsupported record type code was encountered where a
    /// concrete `RData` was required.
    UnknownRecordType(u16),
    /// An unknown class code was encountered.
    UnknownClass(u16),
    /// An RDATA section did not have the length implied by its record type.
    BadRdata {
        /// Record type whose RDATA failed to decode.
        rtype: &'static str,
        /// Explanation of the mismatch.
        detail: &'static str,
    },
    /// A message section count promised more entries than the data holds.
    CountMismatch {
        /// Section name.
        section: &'static str,
    },
    /// Zone construction was given inconsistent data.
    InvalidZone(String),
    /// A string could not be parsed as a domain name.
    NameParse(String),
    /// Encoded message would exceed the configured size limit.
    MessageTooLong(usize),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63-octet limit"),
            DnsError::EmptyLabel => write!(f, "empty label inside a domain name"),
            DnsError::InvalidLabelByte(b) => write!(f, "invalid byte {b:#04x} in label"),
            DnsError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255-octet limit"),
            DnsError::UnexpectedEof { context } => {
                write!(f, "unexpected end of wire data while decoding {context}")
            }
            DnsError::BadPointer(at) => write!(f, "invalid compression pointer at offset {at}"),
            DnsError::UnknownRecordType(c) => write!(f, "unknown record type code {c}"),
            DnsError::UnknownClass(c) => write!(f, "unknown class code {c}"),
            DnsError::BadRdata { rtype, detail } => {
                write!(f, "malformed rdata for {rtype} record: {detail}")
            }
            DnsError::CountMismatch { section } => {
                write!(f, "section count mismatch in {section} section")
            }
            DnsError::InvalidZone(detail) => write!(f, "invalid zone data: {detail}"),
            DnsError::NameParse(s) => write!(f, "cannot parse {s:?} as a domain name"),
            DnsError::MessageTooLong(n) => {
                write!(f, "encoded message of {n} octets exceeds size limit")
            }
        }
    }
}

impl std::error::Error for DnsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DnsError::LabelTooLong(70);
        let s = e.to_string();
        assert!(s.starts_with("label"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<DnsError>();
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(DnsError::EmptyLabel, DnsError::EmptyLabel);
        assert_ne!(DnsError::EmptyLabel, DnsError::LabelTooLong(64));
    }
}
