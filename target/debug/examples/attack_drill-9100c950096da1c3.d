/root/repo/target/debug/examples/attack_drill-9100c950096da1c3.d: examples/attack_drill.rs Cargo.toml

/root/repo/target/debug/examples/libattack_drill-9100c950096da1c3.rmeta: examples/attack_drill.rs Cargo.toml

examples/attack_drill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
