//! Regenerates Figure 7 (refresh + LFU renewal) of the DSN 2007 paper.
//! See DESIGN.md §4 for the experiment index.

use dns_bench::experiments::fig7;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    fig7(&mut lab, &TraceSpec::weekly());
    lab.emit_manifest();
}
