//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset of the rand 0.10 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   [`SeedableRng::seed_from_u64`] (SplitMix64 seed expansion),
//! * [`Rng`] — the core trait (`next_u64`),
//! * [`RngExt`] — extension methods `random::<T>()` and
//!   `random_range(..)`, blanket-implemented for every [`Rng`].
//!
//! The streams differ from the real `rand` crate, but every consumer in
//! this workspace only requires determinism per seed, which this crate
//! guarantees (the generator is stable and fully specified here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from an RNG (`random::<T>()`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        out
    }
}

/// Ranges that can be sampled uniformly (`random_range(..)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics when the range is empty, matching `rand`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the tiny residual bias over a 64-bit word is far below
/// anything the simulations can observe).
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods on every [`Rng`], mirroring rand 0.10's `Rng`
/// convenience surface.
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// `StdRng`; a different stream, but stable across runs and platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        /// SplitMix64 seed expansion, as recommended by the xoshiro
        /// authors.
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.random_range(0u32..=3);
            assert!(y <= 3);
            seen_low |= y == 0;
            seen_high |= y == 3;
        }
        assert!(seen_low && seen_high, "inclusive bounds must be reachable");
    }

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
