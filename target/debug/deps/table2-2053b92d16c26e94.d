/root/repo/target/debug/deps/table2-2053b92d16c26e94.d: crates/dns-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2053b92d16c26e94: crates/dns-bench/src/bin/table2.rs

crates/dns-bench/src/bin/table2.rs:
