/root/repo/target/debug/deps/fig12-bf44e13b52a63d75.d: crates/dns-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-bf44e13b52a63d75: crates/dns-bench/src/bin/fig12.rs

crates/dns-bench/src/bin/fig12.rs:
