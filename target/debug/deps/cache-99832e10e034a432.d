/root/repo/target/debug/deps/cache-99832e10e034a432.d: crates/dns-bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-99832e10e034a432.rmeta: crates/dns-bench/benches/cache.rs Cargo.toml

crates/dns-bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
