//! A one-shot, dig-like UDP client.

use dns_core::{wire, Message, Name, Question, RecordType};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Sends one query to `server` and waits up to `timeout` for the matching
/// response.
///
/// # Errors
///
/// Returns an [`io::Error`] on socket failure or timeout, and
/// `InvalidData` when the response cannot be decoded.
pub fn query(
    server: SocketAddr,
    name: &Name,
    rtype: RecordType,
    timeout: Duration,
) -> io::Result<Message> {
    query_question(server, Question::new(name.clone(), rtype), timeout)
}

/// Like [`query`], but takes a fully-formed [`Question`] so callers can
/// set a non-IN class (e.g. `CHAOS TXT metrics.bind.` for a metrics
/// snapshot).
///
/// # Errors
///
/// Same contract as [`query`].
pub fn query_question(
    server: SocketAddr,
    question: Question,
    timeout: Duration,
) -> io::Result<Message> {
    let socket = UdpSocket::bind(("127.0.0.1", 0))?;
    socket.set_read_timeout(Some(timeout))?;
    // A process-unique id derived from the ephemeral port.
    let id = socket.local_addr()?.port();
    let msg = Message::query(id, question);
    let bytes = wire::encode(&msg).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    socket.send_to(&bytes, server)?;

    let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
    loop {
        let (len, from) = socket.recv_from(&mut buf)?;
        if from != server {
            continue; // stray datagram
        }
        let resp =
            wire::decode(&buf[..len]).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if resp.header.id == id && resp.header.response {
            return Ok(resp);
        }
    }
}

/// Formats a response the way `dig` roughly would, for the CLI binaries.
pub fn render(resp: &Message) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        ";; status: {}, id: {}{}",
        resp.header.rcode,
        resp.header.id,
        if resp.header.authoritative {
            ", aa"
        } else {
            ""
        }
    );
    if let Some(q) = resp.question() {
        let _ = writeln!(out, ";; QUESTION:\n;  {q}");
    }
    for (label, records) in [
        ("ANSWER", &resp.answers),
        ("AUTHORITY", &resp.authorities),
        ("ADDITIONAL", &resp.additionals),
    ] {
        if !records.is_empty() {
            let _ = writeln!(out, ";; {label}:");
            for r in records {
                let _ = writeln!(out, "   {r}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{RData, Record, Ttl};
    use std::net::Ipv4Addr;

    #[test]
    fn render_includes_all_sections() {
        let mut resp = Message::response_to(&Message::query(
            7,
            Question::new("www.example.com".parse().unwrap(), RecordType::A),
        ));
        resp.header.authoritative = true;
        resp.answers.push(Record::new(
            "www.example.com".parse().unwrap(),
            Ttl::from_hours(4),
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        let text = render(&resp);
        assert!(text.contains("status: NOERROR"));
        assert!(text.contains(", aa"));
        assert!(text.contains("ANSWER"));
        assert!(text.contains("192.0.2.80"));
    }

    #[test]
    fn timeout_on_silent_server() {
        // A socket that never answers.
        let silent = UdpSocket::bind("127.0.0.1:0").unwrap();
        let err = query(
            silent.local_addr().unwrap(),
            &"x.example".parse().unwrap(),
            RecordType::A,
            Duration::from_millis(100),
        )
        .unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "{err}"
        );
    }
}
