/root/repo/target/debug/deps/tracegen-73200867349618f2.d: crates/dns-bench/benches/tracegen.rs Cargo.toml

/root/repo/target/debug/deps/libtracegen-73200867349618f2.rmeta: crates/dns-bench/benches/tracegen.rs Cargo.toml

crates/dns-bench/benches/tracegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
