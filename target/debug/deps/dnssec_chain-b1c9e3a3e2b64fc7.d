/root/repo/target/debug/deps/dnssec_chain-b1c9e3a3e2b64fc7.d: crates/dns-resolver/tests/dnssec_chain.rs Cargo.toml

/root/repo/target/debug/deps/libdnssec_chain-b1c9e3a3e2b64fc7.rmeta: crates/dns-resolver/tests/dnssec_chain.rs Cargo.toml

crates/dns-resolver/tests/dnssec_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
