/root/repo/target/debug/deps/proptests-ffb6a76509ed930c.d: crates/dns-resolver/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ffb6a76509ed930c: crates/dns-resolver/tests/proptests.rs

crates/dns-resolver/tests/proptests.rs:
