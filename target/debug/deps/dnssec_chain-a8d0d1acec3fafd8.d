/root/repo/target/debug/deps/dnssec_chain-a8d0d1acec3fafd8.d: crates/dns-resolver/tests/dnssec_chain.rs

/root/repo/target/debug/deps/dnssec_chain-a8d0d1acec3fafd8: crates/dns-resolver/tests/dnssec_chain.rs

crates/dns-resolver/tests/dnssec_chain.rs:
