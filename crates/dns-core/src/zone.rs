//! Authoritative zone data: apex records, in-zone data and delegations.

use crate::{DnsError, Name, RData, Record, RecordType, RrKey, RrKeyView, RrSet, Ttl};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// A delegation point inside a zone: the child zone's NS set as stored at
/// the *parent*, plus any glue address records.
///
/// These are exactly the paper's *infrastructure resource records* as seen
/// from the parent side of a zone cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delegation {
    /// Apex of the child zone.
    pub child: Name,
    /// Names of the child's authoritative servers.
    pub ns_names: Vec<Name>,
    /// TTL of the NS RRset as published by the parent.
    pub ns_ttl: Ttl,
    /// Glue: address records for in-bailiwick server names.
    pub glue: Vec<Record>,
    /// DS records for a signed child (parent-side DNSSEC infrastructure
    /// records, paper §6); empty for unsigned delegations.
    pub ds: Vec<Record>,
}

impl Delegation {
    /// An unsigned delegation (no DS records).
    pub fn unsigned(child: Name, ns_names: Vec<Name>, ns_ttl: Ttl, glue: Vec<Record>) -> Self {
        Delegation {
            child,
            ns_names,
            ns_ttl,
            glue,
            ds: Vec::new(),
        }
    }

    /// The NS RRset this delegation publishes.
    pub fn ns_rrset(&self) -> RrSet {
        RrSet::new(
            RrKey::new(self.child.clone(), RecordType::Ns),
            self.ns_ttl,
            self.ns_names.iter().cloned().map(RData::Ns).collect(),
        )
    }
}

/// One authoritative zone: an apex, authoritative records, and delegations
/// to child zones.
///
/// Use [`ZoneBuilder`] to construct zones; it validates apex consistency and
/// derives delegation glue.
///
/// ```rust
/// # fn main() -> Result<(), dns_core::DnsError> {
/// use dns_core::{Name, ZoneBuilder, Ttl};
/// use std::net::Ipv4Addr;
///
/// let zone = ZoneBuilder::new("ucla.edu".parse()?)
///     .ns("ns1.ucla.edu".parse()?, Ipv4Addr::new(192, 0, 2, 1), Ttl::from_days(1))
///     .a("www.ucla.edu".parse()?, Ipv4Addr::new(192, 0, 2, 80), Ttl::from_hours(4))
///     .build()?;
/// assert_eq!(zone.apex().to_string(), "ucla.edu.");
/// assert_eq!(zone.ns_names().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    apex: Name,
    /// Apex NS names (this zone's own infrastructure records).
    ns_names: Vec<Name>,
    /// TTL for the apex NS set and its glue.
    infra_ttl: Ttl,
    /// All authoritative records (including apex NS and server A records),
    /// indexed by RRset key.
    records: BTreeMap<RrKey, RrSet>,
    /// Delegations to children, keyed by child apex.
    delegations: BTreeMap<Name, Delegation>,
}

impl Zone {
    /// The zone apex name.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Names of this zone's authoritative servers.
    pub fn ns_names(&self) -> &[Name] {
        &self.ns_names
    }

    /// TTL of the zone's own infrastructure records.
    pub fn infra_ttl(&self) -> Ttl {
        self.infra_ttl
    }

    /// Overrides the infrastructure TTL — this is the *long-TTL* knob the
    /// paper gives zone operators. Only the apex NS set and the glue for
    /// this zone's servers are affected; data records keep their TTLs.
    pub fn set_infra_ttl(&mut self, ttl: Ttl) {
        self.infra_ttl = ttl;
        let apex_ns = RrKey::new(self.apex.clone(), RecordType::Ns);
        if let Some(set) = self.records.remove(&apex_ns) {
            self.records.insert(apex_ns, set.with_ttl(ttl));
        }
        for ns in self.ns_names.clone() {
            for rtype in [RecordType::A, RecordType::Aaaa] {
                let key = RrKey::new(ns.clone(), rtype);
                if let Some(set) = self.records.remove(&key) {
                    self.records.insert(key, set.with_ttl(ttl));
                }
            }
        }
    }

    /// Looks up an authoritative RRset without constructing a probe key.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> Option<&RrSet> {
        self.records.get(&(name, rtype) as &dyn RrKeyView)
    }

    /// Whether any RRset exists at `name`.
    pub fn name_exists(&self, name: &Name) -> bool {
        self.records.keys().any(|k| &k.name == name)
            || self
                .delegations
                .values()
                .any(|d| d.child == *name || d.glue.iter().any(|g| g.name() == name))
    }

    /// The deepest delegation whose child apex is `name` or an ancestor of
    /// it — i.e. the zone cut a query for `name` must be referred through.
    pub fn delegation_for(&self, name: &Name) -> Option<&Delegation> {
        // Walk from most specific ancestor down to (but excluding) the apex.
        name.ancestors()
            .filter(|a| a.is_proper_subdomain_of(&self.apex))
            .find_map(|a| self.delegations.get(&a))
    }

    /// Delegation entry for an exact child apex.
    pub fn delegation(&self, child: &Name) -> Option<&Delegation> {
        self.delegations.get(child)
    }

    /// All delegations, ordered by child apex.
    pub fn delegations(&self) -> impl Iterator<Item = &Delegation> {
        self.delegations.values()
    }

    /// All authoritative RRsets.
    pub fn rrsets(&self) -> impl Iterator<Item = &RrSet> {
        self.records.values()
    }

    /// Whether `name` is inside this zone's authority (at or below the apex
    /// and not beyond a delegation cut).
    pub fn is_authoritative_for(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.apex) && self.delegation_for(name).is_none()
    }

    /// Renders the zone in RFC 1035 master-file style: an `$ORIGIN`
    /// line, the authoritative RRsets, then delegation NS/DS/glue records
    /// grouped per child (commented for readability).
    ///
    /// ```rust
    /// # fn main() -> Result<(), dns_core::DnsError> {
    /// use dns_core::{Ttl, ZoneBuilder};
    /// use std::net::Ipv4Addr;
    /// let zone = ZoneBuilder::new("example.com".parse()?)
    ///     .ns("ns1.example.com".parse()?, Ipv4Addr::new(192, 0, 2, 1), Ttl::from_days(1))
    ///     .build()?;
    /// let text = zone.to_zone_file();
    /// assert!(text.starts_with("$ORIGIN example.com."));
    /// assert!(text.contains("IN NS ns1.example.com."));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_zone_file(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "$ORIGIN {}", self.apex);
        for set in self.records.values() {
            for rec in set.to_records() {
                let _ = writeln!(out, "{rec}");
            }
        }
        for d in self.delegations.values() {
            let _ = writeln!(out, "; delegation: {}", d.child);
            for rec in d.ns_rrset().to_records() {
                let _ = writeln!(out, "{rec}");
            }
            for rec in &d.ds {
                let _ = writeln!(out, "{rec}");
            }
            for rec in &d.glue {
                let _ = writeln!(out, "{rec}");
            }
        }
        out
    }

    /// Adds or replaces a delegation after construction. Used by the
    /// namespace generator when wiring up a synthetic tree.
    pub fn add_delegation(&mut self, delegation: Delegation) -> Result<(), DnsError> {
        if !delegation.child.is_proper_subdomain_of(&self.apex) {
            return Err(DnsError::InvalidZone(format!(
                "delegation {} is not below apex {}",
                delegation.child, self.apex
            )));
        }
        self.delegations
            .insert(delegation.child.clone(), delegation);
        Ok(())
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "zone {} ({} rrsets, {} delegations, infra ttl {})",
            self.apex,
            self.records.len(),
            self.delegations.len(),
            self.infra_ttl
        )
    }
}

/// Incremental builder for [`Zone`].
#[derive(Debug, Clone)]
pub struct ZoneBuilder {
    apex: Name,
    ns: Vec<(Name, Ipv4Addr)>,
    infra_ttl: Ttl,
    records: Vec<Record>,
    delegations: Vec<Delegation>,
    dnskey: Option<(u16, u32)>,
}

impl ZoneBuilder {
    /// Starts a zone at `apex` with a default one-day infrastructure TTL.
    pub fn new(apex: Name) -> Self {
        ZoneBuilder {
            apex,
            ns: Vec::new(),
            infra_ttl: Ttl::from_days(1),
            records: Vec::new(),
            delegations: Vec::new(),
            dnskey: None,
        }
    }

    /// Signs the zone with a synthetic DNSSEC key: publishes a DNSKEY at
    /// the apex (with the infrastructure TTL).
    pub fn dnskey(mut self, key_tag: u16, public_key: u32) -> Self {
        self.dnskey = Some((key_tag, public_key));
        self
    }

    /// Adds an authoritative server (name + address). The address record is
    /// published when the server name is in-zone.
    pub fn ns(mut self, name: Name, addr: Ipv4Addr, ttl: Ttl) -> Self {
        self.infra_ttl = ttl;
        self.ns.push((name, addr));
        self
    }

    /// Sets the infrastructure TTL explicitly.
    pub fn infra_ttl(mut self, ttl: Ttl) -> Self {
        self.infra_ttl = ttl;
        self
    }

    /// Adds an `A` record.
    pub fn a(mut self, name: Name, addr: Ipv4Addr, ttl: Ttl) -> Self {
        self.records.push(Record::new(name, ttl, RData::A(addr)));
        self
    }

    /// Adds an arbitrary record.
    pub fn record(mut self, record: Record) -> Self {
        self.records.push(record);
        self
    }

    /// Adds a delegation to a child zone.
    pub fn delegate(mut self, delegation: Delegation) -> Self {
        self.delegations.push(delegation);
        self
    }

    /// Finalises the zone.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::InvalidZone`] when no NS server was provided, a
    /// record owner lies outside the apex, or a delegation is not below the
    /// apex.
    pub fn build(self) -> Result<Zone, DnsError> {
        if self.ns.is_empty() {
            return Err(DnsError::InvalidZone(format!(
                "zone {} has no name-servers",
                self.apex
            )));
        }
        let mut records: BTreeMap<RrKey, RrSet> = BTreeMap::new();
        let mut push = |rec: Record| {
            let key = rec.key();
            match records.get_mut(&key) {
                Some(set) => {
                    let mut all = set.to_records();
                    all.push(rec);
                    *set = RrSet::from_records(&all).expect("non-empty");
                }
                None => {
                    records.insert(key, RrSet::from_records(&[rec]).expect("non-empty"));
                }
            }
        };

        // Apex NS set plus in-zone glue.
        for (ns_name, addr) in &self.ns {
            push(Record::new(
                self.apex.clone(),
                self.infra_ttl,
                RData::Ns(ns_name.clone()),
            ));
            if ns_name.is_subdomain_of(&self.apex) {
                push(Record::new(
                    ns_name.clone(),
                    self.infra_ttl,
                    RData::A(*addr),
                ));
            }
        }

        if let Some((key_tag, public_key)) = self.dnskey {
            push(Record::new(
                self.apex.clone(),
                self.infra_ttl,
                RData::Dnskey {
                    key_tag,
                    public_key,
                },
            ));
        }

        for rec in self.records {
            if !rec.name().is_subdomain_of(&self.apex) {
                return Err(DnsError::InvalidZone(format!(
                    "record owner {} outside zone {}",
                    rec.name(),
                    self.apex
                )));
            }
            push(rec);
        }

        let mut zone = Zone {
            apex: self.apex,
            ns_names: self.ns.iter().map(|(n, _)| n.clone()).collect(),
            infra_ttl: self.infra_ttl,
            records,
            delegations: BTreeMap::new(),
        };
        for d in self.delegations {
            zone.add_delegation(d)?;
        }
        Ok(zone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    fn ucla() -> Zone {
        ZoneBuilder::new(name("ucla.edu"))
            .ns(name("ns1.ucla.edu"), ip(1), Ttl::from_days(1))
            .ns(name("ns2.ucla.edu"), ip(2), Ttl::from_days(1))
            .a(name("www.ucla.edu"), ip(80), Ttl::from_hours(4))
            .delegate(Delegation::unsigned(
                name("cs.ucla.edu"),
                vec![name("ns.cs.ucla.edu")],
                Ttl::from_hours(12),
                vec![Record::new(
                    name("ns.cs.ucla.edu"),
                    Ttl::from_hours(12),
                    RData::A(ip(53)),
                )],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_publishes_apex_ns_and_glue() {
        let z = ucla();
        let ns = z.lookup(&name("ucla.edu"), RecordType::Ns).unwrap();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns.ttl(), Ttl::from_days(1));
        let glue = z.lookup(&name("ns1.ucla.edu"), RecordType::A).unwrap();
        assert_eq!(glue.rdatas(), &[RData::A(ip(1))]);
    }

    #[test]
    fn builder_requires_name_servers() {
        let err = ZoneBuilder::new(name("empty.edu")).build().unwrap_err();
        assert!(matches!(err, DnsError::InvalidZone(_)));
    }

    #[test]
    fn builder_rejects_out_of_zone_records() {
        let err = ZoneBuilder::new(name("ucla.edu"))
            .ns(name("ns1.ucla.edu"), ip(1), Ttl::from_days(1))
            .a(name("www.mit.edu"), ip(9), Ttl::from_hours(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, DnsError::InvalidZone(_)));
    }

    #[test]
    fn delegation_lookup_walks_ancestors() {
        let z = ucla();
        // Query deep below the cut still finds the cs.ucla.edu delegation.
        let d = z.delegation_for(&name("host.lab.cs.ucla.edu")).unwrap();
        assert_eq!(d.child, name("cs.ucla.edu"));
        // Names not under any cut have no delegation.
        assert!(z.delegation_for(&name("www.ucla.edu")).is_none());
        // The apex itself is never delegated.
        assert!(z.delegation_for(&name("ucla.edu")).is_none());
    }

    #[test]
    fn authority_respects_zone_cuts() {
        let z = ucla();
        assert!(z.is_authoritative_for(&name("www.ucla.edu")));
        assert!(z.is_authoritative_for(&name("ucla.edu")));
        assert!(!z.is_authoritative_for(&name("www.cs.ucla.edu")));
        assert!(!z.is_authoritative_for(&name("www.mit.edu")));
    }

    #[test]
    fn set_infra_ttl_rewrites_only_infrastructure() {
        let mut z = ucla();
        z.set_infra_ttl(Ttl::from_days(7));
        assert_eq!(
            z.lookup(&name("ucla.edu"), RecordType::Ns).unwrap().ttl(),
            Ttl::from_days(7)
        );
        assert_eq!(
            z.lookup(&name("ns1.ucla.edu"), RecordType::A)
                .unwrap()
                .ttl(),
            Ttl::from_days(7)
        );
        // Data record untouched.
        assert_eq!(
            z.lookup(&name("www.ucla.edu"), RecordType::A)
                .unwrap()
                .ttl(),
            Ttl::from_hours(4)
        );
    }

    #[test]
    fn add_delegation_validates_subtree() {
        let mut z = ucla();
        let err = z
            .add_delegation(Delegation::unsigned(
                name("mit.edu"),
                vec![name("ns.mit.edu")],
                Ttl::from_days(1),
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, DnsError::InvalidZone(_)));
    }

    #[test]
    fn delegation_ns_rrset() {
        let z = ucla();
        let d = z.delegation(&name("cs.ucla.edu")).unwrap();
        let set = d.ns_rrset();
        assert_eq!(set.rtype(), RecordType::Ns);
        assert_eq!(set.ttl(), Ttl::from_hours(12));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn zone_file_rendering_is_complete() {
        let z = ucla();
        let text = z.to_zone_file();
        assert!(text.starts_with("$ORIGIN ucla.edu."));
        // Apex NS, glue, data and the delegation all present.
        assert!(text.contains("ucla.edu. 1d IN NS ns1.ucla.edu."));
        assert!(text.contains("ns1.ucla.edu. 1d IN A 192.0.2.1"));
        assert!(text.contains("www.ucla.edu. 4h IN A 192.0.2.80"));
        assert!(text.contains("; delegation: cs.ucla.edu."));
        assert!(text.contains("cs.ucla.edu. 12h IN NS ns.cs.ucla.edu."));
        assert!(text.contains("ns.cs.ucla.edu. 12h IN A 192.0.2.53"));
    }

    #[test]
    fn name_exists_sees_apex_data_and_glue() {
        let z = ucla();
        assert!(z.name_exists(&name("www.ucla.edu")));
        assert!(z.name_exists(&name("ucla.edu")));
        assert!(z.name_exists(&name("ns.cs.ucla.edu"))); // delegation glue
        assert!(!z.name_exists(&name("nope.ucla.edu")));
    }
}
