//! Boots a miniature internet on loopback — six authoritative daemons and
//! one recursive resolver — then resolves names through it over real UDP,
//! demonstrates the TTL-refresh scheme surviving a live "attack" (killing
//! the root and TLD daemons), and prints a dig-style transcript.
//!
//! ```sh
//! cargo run --release -p dns-netd --bin dns-playground
//! ```

use dns_netd::playground;
use dns_netd::{client, Resolved, UdpUpstream};
use dns_resolver::{CachingServer, ResolverConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("booting the playground internet…");
    let net = playground::boot()?;
    for d in &net.daemons {
        println!("  {d}");
    }

    let upstream = UdpUpstream::with_route(Duration::from_millis(300), net.route_fn())?;
    let cs = CachingServer::new(ResolverConfig::with_refresh(), net.hints.clone());
    let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0")?;
    println!("  resolver on {}", resolver.addr());
    println!();

    let dig = |qname: &str, rtype| {
        let name = qname.parse().expect("valid name");
        match client::query(resolver.addr(), &name, rtype, Duration::from_secs(2)) {
            Ok(resp) => {
                println!("$ dig @{} {qname}", resolver.addr());
                print!("{}", client::render(&resp));
            }
            Err(e) => println!("$ dig {qname} → error: {e}"),
        }
        println!();
    };

    dig("www.ucla.edu", dns_core::RecordType::A);
    dig("web.ucla.edu", dns_core::RecordType::A); // CNAME chain
    dig("host.cs.ucla.edu", dns_core::RecordType::A); // deep, signed zone
    dig("www.example.com", dns_core::RecordType::A); // other branch
    dig("nowhere.ucla.edu", dns_core::RecordType::A); // NXDOMAIN

    println!("--- killing the root and TLD daemons (live DDoS) ---");
    // The playground assigns 10.99.0-2.x to the root/TLD layer; find the
    // daemons bound for those synthetic addresses via the route map.
    let routes = net.routes.clone();
    let mut survivors = Vec::new();
    for d in net.daemons {
        let is_top_level = routes
            .iter()
            .any(|(syn, sock)| *sock == d.addr() && syn.octets()[2] <= 2);
        if is_top_level {
            d.stop();
        } else {
            survivors.push(d);
        }
    }
    println!("top-level daemons stopped; cached infrastructure remains.\n");

    // Still resolvable: the resolver holds ucla.edu's (refreshed) IRRs.
    dig("www.ucla.edu", dns_core::RecordType::A);
    // A name in a never-visited branch now fails (SERVFAIL).
    dig("www.never-seen.com", dns_core::RecordType::A);

    println!("resolver metrics: {}", resolver.metrics());
    resolver.stop();
    for d in survivors {
        d.stop();
    }
    Ok(())
}
