/root/repo/target/debug/deps/dns_resilience-ef9c33bf0033d579.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdns_resilience-ef9c33bf0033d579.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
