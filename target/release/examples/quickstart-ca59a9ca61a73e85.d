/root/repo/target/release/examples/quickstart-ca59a9ca61a73e85.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ca59a9ca61a73e85: examples/quickstart.rs

examples/quickstart.rs:
