/root/repo/target/release/deps/dns_resolver-da2cf59874a1ce40.d: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/release/deps/libdns_resolver-da2cf59874a1ce40.rlib: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/release/deps/libdns_resolver-da2cf59874a1ce40.rmeta: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/upstream.rs

crates/dns-resolver/src/lib.rs:
crates/dns-resolver/src/cache.rs:
crates/dns-resolver/src/config.rs:
crates/dns-resolver/src/dnssec.rs:
crates/dns-resolver/src/infra.rs:
crates/dns-resolver/src/metrics.rs:
crates/dns-resolver/src/policy.rs:
crates/dns-resolver/src/resolve.rs:
crates/dns-resolver/src/upstream.rs:
