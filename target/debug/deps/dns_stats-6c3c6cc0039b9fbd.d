/root/repo/target/debug/deps/dns_stats-6c3c6cc0039b9fbd.d: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

/root/repo/target/debug/deps/dns_stats-6c3c6cc0039b9fbd: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs

crates/dns-stats/src/lib.rs:
crates/dns-stats/src/cdf.rs:
crates/dns-stats/src/histogram.rs:
crates/dns-stats/src/plot.rs:
crates/dns-stats/src/summary.rs:
crates/dns-stats/src/table.rs:
