//! The recursive resolver daemon: a [`CachingServer`] behind a UDP
//! socket, resolving through real upstream sockets in wall-clock time.

use crate::{wall_clock, UdpUpstream};
use dns_core::{wire, Message, Rcode};
use dns_resolver::{CachingServer, Outcome};
use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running recursive resolver daemon.
///
/// Clients send standard DNS queries; the daemon resolves them through
/// its [`CachingServer`] (all resilience schemes apply — the cache is the
/// same code the simulator evaluates) and answers with the outcome:
/// answers as-is, NXDOMAIN/NODATA as negative responses, and resolution
/// failure as SERVFAIL.
pub struct Resolved {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    cs: Arc<Mutex<CachingServer>>,
}

impl Resolved {
    /// Binds `bind` and starts resolving through `upstream`.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn spawn(
        cs: CachingServer,
        upstream: UdpUpstream,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let cs = Arc::new(Mutex::new(cs));

        let t_stop = Arc::clone(&stop);
        let t_served = Arc::clone(&served);
        let t_cs = Arc::clone(&cs);
        let handle = std::thread::Builder::new()
            .name(format!("resolved-{addr}"))
            .spawn(move || {
                let mut upstream = upstream;
                let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
                while !t_stop.load(Ordering::Relaxed) {
                    let (len, peer) = match socket.recv_from(&mut buf) {
                        Ok(x) => x,
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    };
                    let Ok(query) = wire::decode(&buf[..len]) else {
                        continue;
                    };
                    let response = Self::answer(&t_cs, &mut upstream, &query);
                    if let Ok(bytes) = wire::encode(&response) {
                        let _ = socket.send_to(&bytes, peer);
                    }
                    t_served.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn resolved thread");
        Ok(Resolved {
            addr,
            stop,
            handle: Some(handle),
            served,
            cs,
        })
    }

    fn answer(cs: &Mutex<CachingServer>, upstream: &mut UdpUpstream, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        resp.header.recursion_available = true;
        let Some(question) = query.question().cloned() else {
            resp.header.rcode = Rcode::FormErr;
            return resp;
        };
        let now = wall_clock();
        let outcome = cs.lock().unwrap().resolve(&question, now, upstream);
        match outcome {
            Outcome::Answer { records, .. } => {
                resp.answers = records;
            }
            Outcome::NxDomain { .. } => resp.header.rcode = Rcode::NxDomain,
            Outcome::NoData { .. } => {}
            Outcome::Fail => resp.header.rcode = Rcode::ServFail,
        }
        resp
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client queries served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Snapshot of the resolver's counters.
    pub fn metrics(&self) -> dns_resolver::ResolverMetrics {
        *self.cs.lock().unwrap().metrics()
    }

    /// Stops the daemon and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Resolved {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Display for Resolved {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resolved on {} ({} served)", self.addr, self.served())
    }
}
