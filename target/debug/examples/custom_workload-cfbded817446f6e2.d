/root/repo/target/debug/examples/custom_workload-cfbded817446f6e2.d: examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-cfbded817446f6e2.rmeta: examples/custom_workload.rs Cargo.toml

examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
