//! Failure injection: behaviour under random packet loss, with and
//! without the resilience schemes. Mockapetris' original TTL guidance —
//! which the paper frames itself as realising — was about masking exactly
//! these "periods of server unavailability due to network or host
//! problems".

use dns_core::Ttl;
use dns_resolver::{RenewalPolicy, ResolverConfig};
use dns_sim::{SimConfig, Simulation};
use dns_trace::{Trace, Universe, UniverseSpec, WorkloadBuilder};

fn setup() -> (Universe, Trace) {
    let mut spec = UniverseSpec::small();
    spec.sld_count = 600;
    spec.tld_count = 20;
    let u = spec.build(31);
    let t = WorkloadBuilder::new("loss", 2, 10, 6_000).generate(&u, 17);
    (u, t)
}

fn failure_pct(universe: &Universe, trace: &Trace, config: SimConfig, loss: f64) -> f64 {
    let mut sim = Simulation::new(universe, trace.clone(), config);
    if loss > 0.0 {
        sim.set_loss(loss, 2024);
    }
    sim.run_to_end();
    sim.metrics().failed_in_ratio() * 100.0
}

#[test]
fn moderate_loss_mostly_masked_by_server_redundancy() {
    let (u, t) = setup();
    let with_loss = failure_pct(&u, &t, SimConfig::new(ResolverConfig::vanilla()), 0.10);
    // Each zone has ≥2 servers and the resolver fails over, so 10% packet
    // loss translates into far fewer than 10% client failures.
    assert!(
        with_loss < 5.0,
        "10% loss should be mostly absorbed, got {with_loss:.2}%"
    );
    let without = failure_pct(&u, &t, SimConfig::new(ResolverConfig::vanilla()), 0.0);
    assert_eq!(without, 0.0);
}

#[test]
fn schemes_also_help_against_plain_loss() {
    let (u, t) = setup();
    let vanilla = failure_pct(&u, &t, SimConfig::new(ResolverConfig::vanilla()), 0.25);
    let combined = failure_pct(
        &u,
        &t,
        SimConfig::new(ResolverConfig::with_renewal(RenewalPolicy::adaptive_lfu(3)))
            .long_ttl(Ttl::from_days(3)),
        0.25,
    );
    assert!(vanilla > 0.0, "25% loss must cause some failures");
    // Longer-lived infrastructure means fewer fragile multi-step walks,
    // so the combined scheme fails less under loss too.
    assert!(
        combined <= vanilla,
        "combined {combined:.2}% vs vanilla {vanilla:.2}%"
    );
}

#[test]
fn loss_failures_scale_with_rate() {
    let (u, t) = setup();
    let config = || SimConfig::new(ResolverConfig::vanilla());
    let low = failure_pct(&u, &t, config(), 0.05);
    let high = failure_pct(&u, &t, config(), 0.40);
    assert!(
        high > low,
        "heavier loss must fail more: {high:.2}% vs {low:.2}%"
    );
}
