//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, integer-range /
//! tuple / [`collection::vec`] / [`char::range`] / [`sample::select`] /
//! tiny-regex string strategies, [`prop_oneof!`], [`any`], [`Just`],
//! [`prop_assert!`] / [`prop_assert_eq!`], [`ProptestConfig`] and the
//! [`proptest!`] macro.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), there is **no shrinking**,
//! and the default case count is 64. Failures report the case number so a
//! failing input can be reproduced exactly by re-running the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Error type returned by property bodies; produced by the assertion
/// macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with the given explanation.
    pub fn fail(message: impl fmt::Display) -> Self {
        TestCaseError {
            message: message.to_string(),
        }
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(message: impl fmt::Display) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Seeds the deterministic RNG for one test case (FNV-1a over the test
/// name, mixed with the case index).
pub fn seed_for(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct OneOf<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

/// Builds a [`OneOf`] from boxed alternatives.
pub fn one_of<V>(alternatives: Vec<BoxedStrategy<V>>) -> OneOf<V> {
    assert!(
        !alternatives.is_empty(),
        "prop_oneof! needs at least one arm"
    );
    OneOf { alternatives }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.alternatives.len());
        self.alternatives[idx].generate(rng)
    }
}

// Integer ranges are strategies, as in proptest.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// Tuples of strategies are strategies over tuples of values.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------
// Strings from a tiny regex subset
// ---------------------------------------------------------------------

/// `&str` literals act as regex strategies in proptest. This stand-in
/// supports the single shape the workspace uses: one character class with
/// literal characters and ranges, followed by a `{min,max}` repetition —
/// e.g. `"[ -~]{0,40}"` or `"[a-z0-9]{1,8}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_repeat(self).unwrap_or_else(|| {
            panic!(
                "vendored proptest only supports '[class]{{min,max}}' regex strategies, got {self:?}"
            )
        });
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[<class>]{min,max}` into (alphabet, min, max).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = reps.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

// ---------------------------------------------------------------------
// Submodules mirroring proptest's layout
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Character strategies.
pub mod char {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for one char in an inclusive range.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Characters in `[lo, hi]` (both inclusive).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            // Resample on the (rare) unassigned code points in the range.
            loop {
                let v = rng.random_range(self.lo..=self.hi);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy selecting one element of a fixed set.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform selection from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// The prelude, as in proptest.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice between strategy arms (unweighted subset of proptest's
/// macro).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests (subset of proptest's macro: named arguments
/// bound with `in`, optional leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut __rng: $crate::TestRng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    $crate::seed_for(full_name, case),
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {full_name} failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_parses() {
        let (alphabet, min, max) = crate::parse_class_repeat("[ -~]{0,40}").unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 40);
        assert_eq!(alphabet.len(), 95); // printable ASCII
        let (alphabet, _, _) = crate::parse_class_repeat("[a-z0-9_]{1,3}").unwrap();
        assert_eq!(alphabet.len(), 37);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
        }

        #[test]
        fn vectors_and_tuples(v in prop::collection::vec((any::<bool>(), 0u8..4), 0..6)) {
            prop_assert!(v.len() < 6);
            for (_, n) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
