/root/repo/target/debug/deps/wire_integration-d2ac776be1e43b1f.d: crates/dns-auth/tests/wire_integration.rs Cargo.toml

/root/repo/target/debug/deps/libwire_integration-d2ac776be1e43b1f.rmeta: crates/dns-auth/tests/wire_integration.rs Cargo.toml

crates/dns-auth/tests/wire_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
