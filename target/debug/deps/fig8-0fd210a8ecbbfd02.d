/root/repo/target/debug/deps/fig8-0fd210a8ecbbfd02.d: crates/dns-bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-0fd210a8ecbbfd02.rmeta: crates/dns-bench/src/bin/fig8.rs Cargo.toml

crates/dns-bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
