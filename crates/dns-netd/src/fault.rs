//! Deterministic fault injection for live upstreams: the simulator's
//! attack model (packet loss, added delay, per-server blackout windows)
//! replayed against real sockets.
//!
//! [`FaultInjector`] wraps any [`Upstream`] and decides, *before* the
//! wrapped transport is touched, whether each query is dropped (loss or
//! blackout) or delayed. Drops return `None` immediately — the retry
//! policy provides the pacing — so a fixed seed yields the exact same
//! drop sequence and therefore the same retry counts, independent of
//! wall-clock timing.
//!
//! A [`FaultHandle`] (cheaply cloneable) steers the injector after it has
//! been moved into a daemon thread: flip loss on, start a blackout of the
//! root servers, read the drop counters.

use dns_core::{Message, Name, RecordType, SimTime};
use dns_resolver::Upstream;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Snapshot of the injector's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Queries forwarded to the wrapped upstream.
    pub passed: u64,
    /// Queries dropped by the loss coin.
    pub dropped_by_loss: u64,
    /// Queries dropped because the target server was blacked out.
    pub dropped_by_blackout: u64,
    /// Queries dropped by a zone/qtype-scoped rule.
    pub dropped_by_scope: u64,
    /// Queries forwarded after an injected delay.
    pub delayed: u64,
}

impl FaultStats {
    /// Total queries the injector saw.
    pub fn total(&self) -> u64 {
        self.passed + self.dropped_by_loss + self.dropped_by_blackout + self.dropped_by_scope
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: {} passed, {} lost, {} blacked out, {} scoped, {} delayed",
            self.passed,
            self.dropped_by_loss,
            self.dropped_by_blackout,
            self.dropped_by_scope,
            self.delayed
        )
    }
}

/// Control state shared between the injector (inside the daemon thread)
/// and every [`FaultHandle`].
#[derive(Debug)]
struct Shared {
    /// Loss probability in `[0, 1]`, stored as `f64::to_bits`.
    loss_bits: AtomicU64,
    /// Added per-query delay, in milliseconds.
    delay_ms: AtomicU64,
    /// Per-server blackout windows (absolute instants, half-open).
    blackouts: Mutex<HashMap<Ipv4Addr, Vec<(Instant, Instant)>>>,
    /// Zone/qtype-scoped drop rules (the adversarial-scenario scoping:
    /// fail one victim zone, or one query type under it, while the rest
    /// of the namespace stays healthy).
    scoped: Mutex<Vec<ScopedDrop>>,
    passed: AtomicU64,
    lost: AtomicU64,
    blacked: AtomicU64,
    scoped_dropped: AtomicU64,
    delayed: AtomicU64,
}

/// One scoped drop rule; see [`FaultHandle::drop_zone`].
#[derive(Debug, Clone)]
struct ScopedDrop {
    zone: Name,
    rtype: Option<RecordType>,
}

impl Shared {
    fn blacked_out(&self, server: Ipv4Addr, at: Instant) -> bool {
        self.blackouts
            .lock()
            .unwrap()
            .get(&server)
            .is_some_and(|windows| windows.iter().any(|&(s, e)| s <= at && at < e))
    }

    fn scope_dropped(&self, query: &Message) -> bool {
        let Some(question) = query.question() else {
            return false;
        };
        self.scoped.lock().unwrap().iter().any(|rule| {
            question.name.is_subdomain_of(&rule.zone)
                && rule.rtype.is_none_or(|t| t == question.rtype)
        })
    }
}

/// An [`Upstream`] wrapper injecting deterministic faults; see the module
/// docs. Create with [`FaultInjector::new`], steer with the returned
/// [`FaultHandle`].
#[derive(Debug)]
pub struct FaultInjector<U> {
    inner: U,
    rng: StdRng,
    shared: Arc<Shared>,
}

/// Remote control for a [`FaultInjector`] that has been moved into a
/// daemon thread.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    shared: Arc<Shared>,
}

impl<U> FaultInjector<U> {
    /// Wraps `inner` with no faults configured; `seed` fixes the loss
    /// coin's sequence.
    pub fn new(inner: U, seed: u64) -> (FaultInjector<U>, FaultHandle) {
        let shared = Arc::new(Shared {
            loss_bits: AtomicU64::new(0.0_f64.to_bits()),
            delay_ms: AtomicU64::new(0),
            blackouts: Mutex::new(HashMap::new()),
            scoped: Mutex::new(Vec::new()),
            passed: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            blacked: AtomicU64::new(0),
            scoped_dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        });
        let handle = FaultHandle {
            shared: Arc::clone(&shared),
        };
        (
            FaultInjector {
                inner,
                rng: StdRng::seed_from_u64(seed),
                shared,
            },
            handle,
        )
    }

    /// Unwraps the inner upstream.
    pub fn into_inner(self) -> U {
        self.inner
    }

    fn loss_coin(&mut self) -> bool {
        let rate = f64::from_bits(self.shared.loss_bits.load(Ordering::Relaxed));
        // Always draw, so the RNG stream (and thus determinism) does not
        // depend on when loss was switched on.
        let draw = self.rng.random::<f64>();
        rate > 0.0 && draw < rate
    }
}

impl FaultHandle {
    /// Sets the per-query loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0` (1.0 — total loss — is allowed:
    /// that is a blackout expressed as loss).
    pub fn set_loss(&self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0, 1]");
        self.shared
            .loss_bits
            .store(rate.to_bits(), Ordering::Relaxed);
    }

    /// Sets the delay added before every forwarded query.
    pub fn set_delay(&self, delay: Duration) {
        self.shared
            .delay_ms
            .store(delay.as_millis() as u64, Ordering::Relaxed);
    }

    /// Blacks out `servers` starting now for `duration` (the live twin of
    /// the simulator's `Blackout` attack windows in `dns-sim`).
    pub fn blackout(&self, servers: &[Ipv4Addr], duration: Duration) {
        self.blackout_window(servers, Duration::ZERO, duration);
    }

    /// Blacks out `servers` for `duration`, starting `start_in` from now.
    pub fn blackout_window(&self, servers: &[Ipv4Addr], start_in: Duration, duration: Duration) {
        let start = Instant::now() + start_in;
        let end = start + duration;
        let mut blackouts = self.shared.blackouts.lock().unwrap();
        for &server in servers {
            blackouts.entry(server).or_default().push((start, end));
        }
    }

    /// Drops every query whose question falls under `zone` (the zone apex
    /// included), regardless of which server it targets — the live twin of
    /// a per-zone denial scenario. Scoped drops consume no randomness, so
    /// the loss coin's sequence is unchanged by scoping rules.
    pub fn drop_zone(&self, zone: Name) {
        self.shared
            .scoped
            .lock()
            .unwrap()
            .push(ScopedDrop { zone, rtype: None });
    }

    /// Like [`FaultHandle::drop_zone`], but only for questions of `rtype`
    /// (e.g. fail `AAAA` under a victim zone while `A` stays healthy).
    pub fn drop_zone_qtype(&self, zone: Name, rtype: RecordType) {
        self.shared.scoped.lock().unwrap().push(ScopedDrop {
            zone,
            rtype: Some(rtype),
        });
    }

    /// Clears every configured fault (loss, delay, blackouts, scoped
    /// drops). Counters are kept.
    pub fn clear(&self) {
        self.set_loss(0.0);
        self.set_delay(Duration::ZERO);
        self.shared.blackouts.lock().unwrap().clear();
        self.shared.scoped.lock().unwrap().clear();
    }

    /// Snapshot of the injector's counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            passed: self.shared.passed.load(Ordering::Relaxed),
            dropped_by_loss: self.shared.lost.load(Ordering::Relaxed),
            dropped_by_blackout: self.shared.blacked.load(Ordering::Relaxed),
            dropped_by_scope: self.shared.scoped_dropped.load(Ordering::Relaxed),
            delayed: self.shared.delayed.load(Ordering::Relaxed),
        }
    }
}

impl<U: Upstream> Upstream for FaultInjector<U> {
    fn query(&mut self, server: Ipv4Addr, query: &Message, now: SimTime) -> Option<Message> {
        if self.shared.blacked_out(server, Instant::now()) {
            self.shared.blacked.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if self.shared.scope_dropped(query) {
            self.shared.scoped_dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if self.loss_coin() {
            self.shared.lost.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let delay_ms = self.shared.delay_ms.load(Ordering::Relaxed);
        if delay_ms > 0 {
            self.shared.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        self.shared.passed.fetch_add(1, Ordering::Relaxed);
        self.inner.query(server, query, now)
    }

    fn wait(&mut self, millis: u64) {
        self.inner.wait(millis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Question, RecordType};

    /// Inner upstream that counts calls and always answers.
    #[derive(Default)]
    struct Counting {
        calls: u64,
    }

    impl Upstream for Counting {
        fn query(&mut self, _server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
            self.calls += 1;
            Some(Message::response_to(query))
        }
    }

    fn q() -> Message {
        Message::query(1, Question::new("www.test".parse().unwrap(), RecordType::A))
    }

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);

    #[test]
    fn no_faults_passes_everything_through() {
        let (mut inj, handle) = FaultInjector::new(Counting::default(), 7);
        for _ in 0..10 {
            assert!(inj.query(SERVER, &q(), SimTime::ZERO).is_some());
        }
        let stats = handle.stats();
        assert_eq!(stats.passed, 10);
        assert_eq!(stats.total(), 10);
        assert_eq!(inj.into_inner().calls, 10);
    }

    #[test]
    fn total_loss_drops_everything_without_touching_inner() {
        let (mut inj, handle) = FaultInjector::new(Counting::default(), 7);
        handle.set_loss(1.0);
        for _ in 0..10 {
            assert!(inj.query(SERVER, &q(), SimTime::ZERO).is_none());
        }
        assert_eq!(handle.stats().dropped_by_loss, 10);
        assert_eq!(inj.into_inner().calls, 0);
    }

    #[test]
    fn loss_sequence_is_deterministic_per_seed() {
        let run = |seed| {
            let (mut inj, handle) = FaultInjector::new(Counting::default(), seed);
            handle.set_loss(0.4);
            (0..100)
                .map(|_| inj.query(SERVER, &q(), SimTime::ZERO).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn blackout_applies_per_server_and_expires() {
        let (mut inj, handle) = FaultInjector::new(Counting::default(), 7);
        let other = Ipv4Addr::new(10, 99, 5, 1);
        handle.blackout(&[SERVER], Duration::from_millis(80));
        assert!(inj.query(SERVER, &q(), SimTime::ZERO).is_none());
        assert!(inj.query(other, &q(), SimTime::ZERO).is_some());
        std::thread::sleep(Duration::from_millis(100));
        assert!(inj.query(SERVER, &q(), SimTime::ZERO).is_some());
        let stats = handle.stats();
        assert_eq!(stats.dropped_by_blackout, 1);
        assert_eq!(stats.passed, 2);
    }

    fn q_for(name: &str, rtype: RecordType) -> Message {
        Message::query(1, Question::new(name.parse().unwrap(), rtype))
    }

    #[test]
    fn zone_scoped_drop_hits_only_the_victim_zone() {
        let (mut inj, handle) = FaultInjector::new(Counting::default(), 7);
        handle.drop_zone("victim.test".parse().unwrap());
        assert!(inj
            .query(
                SERVER,
                &q_for("www.victim.test", RecordType::A),
                SimTime::ZERO
            )
            .is_none());
        assert!(inj
            .query(SERVER, &q_for("victim.test", RecordType::A), SimTime::ZERO)
            .is_none());
        assert!(inj
            .query(
                SERVER,
                &q_for("www.other.test", RecordType::A),
                SimTime::ZERO
            )
            .is_some());
        let stats = handle.stats();
        assert_eq!(stats.dropped_by_scope, 2);
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.total(), 3);
        assert_eq!(inj.into_inner().calls, 1);
    }

    #[test]
    fn qtype_scoped_drop_spares_other_types() {
        let (mut inj, handle) = FaultInjector::new(Counting::default(), 7);
        handle.drop_zone_qtype("victim.test".parse().unwrap(), RecordType::Aaaa);
        assert!(inj
            .query(
                SERVER,
                &q_for("www.victim.test", RecordType::Aaaa),
                SimTime::ZERO
            )
            .is_none());
        assert!(inj
            .query(
                SERVER,
                &q_for("www.victim.test", RecordType::A),
                SimTime::ZERO
            )
            .is_some());
        assert_eq!(handle.stats().dropped_by_scope, 1);
    }

    #[test]
    fn scoped_drops_leave_the_loss_sequence_unchanged() {
        let run = |scoped: bool| {
            let (mut inj, handle) = FaultInjector::new(Counting::default(), 42);
            handle.set_loss(0.4);
            if scoped {
                handle.drop_zone("scoped.test".parse().unwrap());
                // Scoped queries short-circuit before the coin…
                assert!(inj
                    .query(
                        SERVER,
                        &q_for("x.scoped.test", RecordType::A),
                        SimTime::ZERO
                    )
                    .is_none());
            }
            // …so the unscoped sequence draws the same coins either way.
            (0..50)
                .map(|_| inj.query(SERVER, &q(), SimTime::ZERO).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn clear_lifts_all_faults() {
        let (mut inj, handle) = FaultInjector::new(Counting::default(), 7);
        handle.set_loss(1.0);
        handle.blackout(&[SERVER], Duration::from_secs(3600));
        assert!(inj.query(SERVER, &q(), SimTime::ZERO).is_none());
        handle.clear();
        assert!(inj.query(SERVER, &q(), SimTime::ZERO).is_some());
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1]")]
    fn out_of_range_loss_rejected() {
        let (_inj, handle) = FaultInjector::new(Counting::default(), 7);
        handle.set_loss(1.5);
    }
}
