/root/repo/target/release/examples/quickstart-8adcf9bce4f7a9fa.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8adcf9bce4f7a9fa: examples/quickstart.rs

examples/quickstart.rs:
