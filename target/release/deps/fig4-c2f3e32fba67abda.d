/root/repo/target/release/deps/fig4-c2f3e32fba67abda.d: crates/dns-bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-c2f3e32fba67abda: crates/dns-bench/src/bin/fig4.rs

crates/dns-bench/src/bin/fig4.rs:
