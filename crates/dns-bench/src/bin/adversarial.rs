//! Regenerates the adversarial survival head-to-head: NXNSAttack
//! delegation-bomb and water-torture floods against the paper's
//! mitigation schemes, with and without MaxFetch(k) and flood-defense
//! hardening. See DESIGN.md for the scenario description.

use dns_bench::experiments::adversarial;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    adversarial(&mut lab, &TraceSpec::TRC1);
    lab.emit_manifest();
}
