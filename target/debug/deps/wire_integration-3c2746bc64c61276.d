/root/repo/target/debug/deps/wire_integration-3c2746bc64c61276.d: crates/dns-auth/tests/wire_integration.rs

/root/repo/target/debug/deps/wire_integration-3c2746bc64c61276: crates/dns-auth/tests/wire_integration.rs

crates/dns-auth/tests/wire_integration.rs:
