/root/repo/target/debug/deps/dns_dig-49bac9f6ea453bd6.d: crates/dns-netd/src/bin/dns-dig.rs

/root/repo/target/debug/deps/dns_dig-49bac9f6ea453bd6: crates/dns-netd/src/bin/dns-dig.rs

crates/dns-netd/src/bin/dns-dig.rs:
