/root/repo/target/debug/deps/probe_timing-9b7be062254e88f6.d: crates/dns-bench/src/bin/probe_timing.rs Cargo.toml

/root/repo/target/debug/deps/libprobe_timing-9b7be062254e88f6.rmeta: crates/dns-bench/src/bin/probe_timing.rs Cargo.toml

crates/dns-bench/src/bin/probe_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
