/root/repo/target/debug/deps/trace_tool-6785b513df4cdb34.d: crates/dns-bench/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-6785b513df4cdb34: crates/dns-bench/src/bin/trace_tool.rs

crates/dns-bench/src/bin/trace_tool.rs:
