/root/repo/target/debug/deps/fig8-9a419ac17493306f.d: crates/dns-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-9a419ac17493306f: crates/dns-bench/src/bin/fig8.rs

crates/dns-bench/src/bin/fig8.rs:
