/root/repo/target/debug/deps/dns_dig-5a010429592ad026.d: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

/root/repo/target/debug/deps/libdns_dig-5a010429592ad026.rmeta: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

crates/dns-netd/src/bin/dns-dig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
