//! Randomized equivalence between the amortized expiry bookkeeping (lazy
//! min-heaps + maintained counters) and a naive full-scan model.
//!
//! Both caches promise that, at any monotone sequence of observation times,
//! `fresh_*` counts equal what a retain-scan over all live entries would
//! report. The heap discipline (lazy-deleted pairs, re-inserts with equal or
//! different expiries, tombstones that must survive uncounting) is exactly
//! the kind of bookkeeping that rots silently, so we drive randomized
//! insert/expire schedules against a model that stores nothing but
//! `(expiry, record-count)` pairs and scans on every probe.

use dns_core::{Name, RData, Record, RecordType, RrSet, SimTime, Ttl};
use dns_resolver::{Credibility, InfraCache, InfraSource, NegativeKind, RecordCache};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A small pool so random ops collide on the same keys often.
fn pool_name(idx: usize) -> Name {
    format!("z{idx}.example").parse().unwrap()
}

fn a_set(name: &Name, records: usize, ttl: Ttl) -> RrSet {
    let recs: Vec<Record> = (0..records)
        .map(|i| {
            Record::new(
                name.clone(),
                ttl,
                RData::A(Ipv4Addr::new(192, 0, 2, i as u8 + 1)),
            )
        })
        .collect();
    RrSet::from_records(&recs).unwrap()
}

/// One step of a randomized schedule. Times advance by `dt` before the op.
#[derive(Debug, Clone)]
enum RecordOp {
    Insert {
        name: usize,
        records: usize,
        ttl_secs: u32,
        credibility: Credibility,
    },
    InsertNegative {
        name: usize,
        ttl_secs: u32,
    },
    /// Purge, then compare every counter against the scan model.
    Sample,
}

fn arb_credibility() -> impl Strategy<Value = Credibility> {
    prop_oneof![
        Just(Credibility::Additional),
        Just(Credibility::NonAuthAuthority),
        Just(Credibility::AuthAuthority),
        Just(Credibility::AuthAnswer),
    ]
}

fn arb_record_op() -> impl Strategy<Value = (u32, RecordOp)> {
    let op = prop_oneof![
        (0usize..8, 1usize..=3, 0u32..90, arb_credibility()).prop_map(
            |(name, records, ttl_secs, credibility)| RecordOp::Insert {
                name,
                records,
                ttl_secs,
                credibility,
            }
        ),
        (0usize..8, 0u32..90)
            .prop_map(|(name, ttl_secs)| RecordOp::InsertNegative { name, ttl_secs }),
        Just(RecordOp::Sample),
    ];
    (0u32..40, op)
}

/// The naive model: everything a retain-scan implementation would store.
#[derive(Default)]
struct RecordModel {
    /// key → (expires_at, record count, credibility)
    positives: HashMap<(usize, RecordType), (SimTime, usize, Credibility)>,
    negatives: HashMap<(usize, RecordType), SimTime>,
}

impl RecordModel {
    /// Same credibility rule as `RecordCache::insert`: a fresh entry of
    /// strictly higher credibility is never overwritten.
    fn insert(
        &mut self,
        name: usize,
        records: usize,
        ttl_secs: u32,
        credibility: Credibility,
        now: SimTime,
    ) -> bool {
        let key = (name, RecordType::A);
        if let Some(&(exp, _, cred)) = self.positives.get(&key) {
            if now < exp && cred > credibility {
                return false;
            }
        }
        let exp = Ttl::from_secs(ttl_secs).expires_at(now);
        self.positives.insert(key, (exp, records, credibility));
        true
    }

    /// Retain-scan purge: drop everything expired at or before `now`,
    /// returning how many entries (positive + negative) went.
    fn purge(&mut self, now: SimTime) -> usize {
        let before = self.positives.len() + self.negatives.len();
        self.positives.retain(|_, &mut (exp, _, _)| now < exp);
        self.negatives.retain(|_, &mut exp| now < exp);
        before - self.positives.len() - self.negatives.len()
    }

    fn fresh_record_count(&self) -> usize {
        self.positives.values().map(|&(_, n, _)| n).sum()
    }
}

proptest! {
    /// `RecordCache`'s amortized counters match the retain-scan model on
    /// arbitrary monotone insert/expire schedules.
    #[test]
    fn record_cache_matches_scan_model(ops in proptest::collection::vec(arb_record_op(), 1..60)) {
        let mut cache = RecordCache::new();
        let mut model = RecordModel::default();
        let mut now = SimTime::ZERO;

        for (dt, op) in ops {
            now += dns_core::SimDuration::from_secs(dt as u64);
            match op {
                RecordOp::Insert { name, records, ttl_secs, credibility } => {
                    let set = a_set(&pool_name(name), records, Ttl::from_secs(ttl_secs));
                    let stored = cache.insert(set, now, credibility);
                    let model_stored = model.insert(name, records, ttl_secs, credibility, now);
                    prop_assert_eq!(stored, model_stored);
                }
                RecordOp::InsertNegative { name, ttl_secs } => {
                    cache.insert_negative(
                        pool_name(name),
                        RecordType::A,
                        NegativeKind::NxDomain,
                        Ttl::from_secs(ttl_secs),
                        now,
                    );
                    model
                        .negatives
                        .insert((name, RecordType::A), Ttl::from_secs(ttl_secs).expires_at(now));
                }
                RecordOp::Sample => {
                    prop_assert_eq!(cache.purge_expired(now), model.purge(now));
                    prop_assert_eq!(cache.fresh_len(now), model.positives.len());
                    prop_assert_eq!(cache.fresh_record_count(now), model.fresh_record_count());
                    prop_assert_eq!(cache.len(), model.positives.len());
                    // Per-key lookups agree with the model's freshness view.
                    for idx in 0..8 {
                        let name = pool_name(idx);
                        let hit = cache.get(&name, RecordType::A, now).is_some();
                        let model_hit = model
                            .positives
                            .get(&(idx, RecordType::A))
                            .is_some_and(|&(exp, _, _)| now < exp);
                        prop_assert_eq!(hit, model_hit);
                        let neg = cache.get_negative(&name, RecordType::A, now).is_some();
                        let model_neg = model
                            .negatives
                            .get(&(idx, RecordType::A))
                            .is_some_and(|&exp| now < exp);
                        prop_assert_eq!(neg, model_neg);
                    }
                }
            }
        }
        // Final settlement at a time past every possible expiry.
        let end = now + dns_core::SimDuration::from_secs(120);
        cache.purge_expired(end);
        model.purge(end);
        prop_assert_eq!(cache.fresh_len(end), 0);
        prop_assert_eq!(cache.fresh_record_count(end), 0);
    }
}

/// One step of a randomized infrastructure schedule.
#[derive(Debug, Clone)]
enum InfraOp {
    Install {
        zone: usize,
        ns_count: usize,
        glue_count: usize,
        ttl_secs: u32,
    },
    /// Attach an out-of-bailiwick address for `ns{ns}` of `zone`.
    AddAddress {
        zone: usize,
        ns: usize,
    },
    Sample,
}

fn arb_infra_op() -> impl Strategy<Value = (u32, InfraOp)> {
    let op = prop_oneof![
        (0usize..6, 1usize..=3, 0usize..=3, 0u32..90).prop_map(
            |(zone, ns_count, glue_count, ttl_secs)| InfraOp::Install {
                zone,
                ns_count,
                glue_count: glue_count.min(ns_count),
                ttl_secs,
            }
        ),
        (0usize..6, 0usize..3).prop_map(|(zone, ns)| InfraOp::AddAddress { zone, ns }),
        Just(InfraOp::Sample),
    ];
    (0u32..40, op)
}

fn ns_name(zone: usize, ns: usize) -> Name {
    format!("ns{ns}.z{zone}.example").parse().unwrap()
}

/// Model entry mirroring exactly what freshness accounting can observe.
struct InfraModelEntry {
    expires_at: SimTime,
    ns_names: Vec<usize>,
    addrs: Vec<usize>,
}

proptest! {
    /// `InfraCache`'s amortized fresh counters match a retain-scan model,
    /// including re-installs over tombstones and post-install address
    /// attachment.
    #[test]
    fn infra_cache_matches_scan_model(ops in proptest::collection::vec(arb_infra_op(), 1..60)) {
        let mut cache = InfraCache::new();
        let mut model: HashMap<usize, InfraModelEntry> = HashMap::new();
        let mut now = SimTime::ZERO;

        for (dt, op) in ops {
            now += dns_core::SimDuration::from_secs(dt as u64);
            match op {
                InfraOp::Install { zone, ns_count, glue_count, ttl_secs } => {
                    let ns: Vec<Name> = (0..ns_count).map(|i| ns_name(zone, i)).collect();
                    let glue: Vec<(Name, Ipv4Addr)> = (0..glue_count)
                        .map(|i| (ns_name(zone, i), Ipv4Addr::new(10, 0, zone as u8, i as u8)))
                        .collect();
                    // Child-sourced with refresh on always commits (there
                    // are no root hints in this universe), matching the
                    // model's unconditional replace.
                    let installed = cache.install(
                        pool_name(zone),
                        ns,
                        glue,
                        Ttl::from_secs(ttl_secs),
                        now,
                        InfraSource::Child,
                        true,
                    );
                    prop_assert!(installed);
                    model.insert(zone, InfraModelEntry {
                        expires_at: Ttl::from_secs(ttl_secs).expires_at(now),
                        ns_names: (0..ns_count).collect(),
                        addrs: (0..glue_count).collect(),
                    });
                }
                InfraOp::AddAddress { zone, ns } => {
                    let pair = vec![(ns_name(zone, ns), Ipv4Addr::new(10, 1, zone as u8, ns as u8))];
                    cache.add_addresses(&pool_name(zone), &pair);
                    if let Some(entry) = model.get_mut(&zone) {
                        if entry.ns_names.contains(&ns) && !entry.addrs.contains(&ns) {
                            entry.addrs.push(ns);
                        }
                    }
                }
                InfraOp::Sample => {
                    let fresh_zones =
                        model.values().filter(|e| now < e.expires_at).count();
                    let fresh_records: usize = model
                        .values()
                        .filter(|e| now < e.expires_at)
                        .map(|e| e.ns_names.len() + e.addrs.len())
                        .sum();
                    prop_assert_eq!(cache.fresh_zone_count(now), fresh_zones);
                    prop_assert_eq!(cache.fresh_record_count(now), fresh_records);
                    // Tombstones persist: every installed zone stays listed.
                    prop_assert_eq!(cache.len(), model.len());
                }
            }
        }
        let end = now + dns_core::SimDuration::from_secs(120);
        prop_assert_eq!(cache.fresh_zone_count(end), 0);
        prop_assert_eq!(cache.fresh_record_count(end), 0);
        prop_assert_eq!(cache.len(), model.len());
    }
}
