//! Resource records: types, classes, RDATA and RRsets.

use crate::{Name, SimTime, Ttl};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record type codes (RFC 1035 §3.2.2 and successors).
///
/// The subset implemented here covers everything the paper's experiments
/// exercise: address records, the infrastructure `NS` record, `SOA` for zone
/// apexes, plus the common application types found in real traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordType {
    /// IPv4 host address (code 1).
    A,
    /// Authoritative name server (code 2) — an *infrastructure* record.
    Ns,
    /// Canonical name alias (code 5).
    Cname,
    /// Start of authority (code 6).
    Soa,
    /// Domain name pointer (code 12).
    Ptr,
    /// Mail exchange (code 15).
    Mx,
    /// Text record (code 16).
    Txt,
    /// IPv6 host address (code 28).
    Aaaa,
    /// Delegation signer (code 43) — a DNSSEC *infrastructure* record
    /// stored at the parent side of a zone cut (paper §6 notes the
    /// refresh/renewal/long-TTL techniques extend to these).
    Ds,
    /// DNSSEC zone key (code 48).
    Dnskey,
}

impl RecordType {
    /// All supported types, in code order.
    pub const ALL: [RecordType; 10] = [
        RecordType::A,
        RecordType::Ns,
        RecordType::Cname,
        RecordType::Soa,
        RecordType::Ptr,
        RecordType::Mx,
        RecordType::Txt,
        RecordType::Aaaa,
        RecordType::Ds,
        RecordType::Dnskey,
    ];

    /// The 16-bit wire code.
    pub const fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Ds => 43,
            RecordType::Dnskey => 48,
        }
    }

    /// Inverse of [`RecordType::code`]; `None` for unsupported codes.
    pub const fn from_code(code: u16) -> Option<RecordType> {
        match code {
            1 => Some(RecordType::A),
            2 => Some(RecordType::Ns),
            5 => Some(RecordType::Cname),
            6 => Some(RecordType::Soa),
            12 => Some(RecordType::Ptr),
            15 => Some(RecordType::Mx),
            16 => Some(RecordType::Txt),
            28 => Some(RecordType::Aaaa),
            43 => Some(RecordType::Ds),
            48 => Some(RecordType::Dnskey),
            _ => None,
        }
    }

    /// Whether records of this type can be *infrastructure records* in the
    /// paper's sense (`NS`, and the address records that serve as glue).
    pub const fn is_infrastructure_candidate(self) -> bool {
        matches!(
            self,
            RecordType::Ns | RecordType::A | RecordType::Aaaa | RecordType::Ds | RecordType::Dnskey
        )
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Ptr => "PTR",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
            RecordType::Ds => "DS",
            RecordType::Dnskey => "DNSKEY",
        };
        f.write_str(s)
    }
}

/// DNS class. Only `IN` is used by the experiments; `CH` is included for
/// completeness of the wire codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RecordClass {
    /// The Internet class (code 1).
    #[default]
    In,
    /// Chaos class (code 3).
    Ch,
}

impl RecordClass {
    /// The 16-bit wire code.
    pub const fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Ch => 3,
        }
    }

    /// Inverse of [`RecordClass::code`].
    pub const fn from_code(code: u16) -> Option<RecordClass> {
        match code {
            1 => Some(RecordClass::In),
            3 => Some(RecordClass::Ch),
            _ => None,
        }
    }
}

impl fmt::Display for RecordClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecordClass::In => "IN",
            RecordClass::Ch => "CH",
        })
    }
}

/// Typed RDATA for the supported record types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name of an authoritative server for the owner zone.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Start-of-authority fields.
    Soa {
        /// Primary master server name.
        mname: Name,
        /// Responsible mailbox, encoded as a name.
        rname: Name,
        /// Zone serial number.
        serial: u32,
        /// Secondary refresh interval, seconds.
        refresh: u32,
        /// Retry interval, seconds.
        retry: u32,
        /// Expiry upper bound, seconds.
        expire: u32,
        /// Negative-caching TTL, seconds.
        minimum: u32,
    },
    /// Reverse-mapping pointer target.
    Ptr(Name),
    /// Mail exchange preference and host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// Mail server host name.
        exchange: Name,
    },
    /// Free-form text (single character-string on the wire).
    Txt(String),
    /// Delegation signer: identifies the child zone's key from the parent
    /// side. The digest is a synthetic 32-bit stand-in for the real hash
    /// (this workspace simulates DNSSEC structure, not cryptography).
    Ds {
        /// Tag of the child key this DS commits to.
        key_tag: u16,
        /// Synthetic digest of the child's public key.
        digest: u32,
    },
    /// DNSSEC zone key with a synthetic 32-bit public key.
    Dnskey {
        /// Key identifier echoed by the matching DS.
        key_tag: u16,
        /// Synthetic public key material.
        public_key: u32,
    },
}

/// The synthetic digest function connecting a [`RData::Dnskey`] to the
/// [`RData::Ds`] that commits to it (an FNV-style mix standing in for the
/// real cryptographic hash).
pub const fn synthetic_key_digest(public_key: u32) -> u32 {
    let mut h = public_key ^ 0x811C_9DC5;
    h = h.wrapping_mul(0x0100_0193);
    h ^= h >> 15;
    h = h.wrapping_mul(0x2C1B_3C6D);
    h ^= h >> 12;
    h
}

impl RData {
    /// The record type this RDATA belongs to.
    pub const fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Soa { .. } => RecordType::Soa,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Ds { .. } => RecordType::Ds,
            RData::Dnskey { .. } => RecordType::Dnskey,
        }
    }

    /// The target name carried by name-bearing RDATA (`NS`, `CNAME`, `PTR`,
    /// `MX`); `None` for address and text data.
    pub fn target_name(&self) -> Option<&Name> {
        match self {
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => Some(n),
            RData::Mx { exchange, .. } => Some(exchange),
            _ => None,
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => write!(
                f,
                "{mname} {rname} {serial} {refresh} {retry} {expire} {minimum}"
            ),
            RData::Ptr(n) => write!(f, "{n}"),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(s) => write!(f, "{s:?}"),
            RData::Ds { key_tag, digest } => write!(f, "{key_tag} {digest:08x}"),
            RData::Dnskey {
                key_tag,
                public_key,
            } => write!(f, "{key_tag} {public_key:08x}"),
        }
    }
}

/// A single resource record: owner name, class, TTL and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    name: Name,
    class: RecordClass,
    ttl: Ttl,
    rdata: RData,
}

impl Record {
    /// Creates an `IN`-class record.
    pub fn new(name: Name, ttl: Ttl, rdata: RData) -> Self {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// Creates a record with an explicit class.
    pub fn with_class(name: Name, class: RecordClass, ttl: Ttl, rdata: RData) -> Self {
        Record {
            name,
            class,
            ttl,
            rdata,
        }
    }

    /// Owner name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Record class.
    pub fn class(&self) -> RecordClass {
        self.class
    }

    /// Time to live.
    pub fn ttl(&self) -> Ttl {
        self.ttl
    }

    /// Replaces the TTL, returning the modified record. Used by the
    /// long-TTL scheme when overriding infrastructure-record TTLs.
    pub fn with_ttl(mut self, ttl: Ttl) -> Self {
        self.ttl = ttl;
        self
    }

    /// Typed RDATA.
    pub fn rdata(&self) -> &RData {
        &self.rdata
    }

    /// Record type, derived from the RDATA.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// Cache key for this record's RRset.
    pub fn key(&self) -> RrKey {
        RrKey {
            name: self.name.clone(),
            rtype: self.rtype(),
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rtype(),
            self.rdata
        )
    }
}

/// Identity of an RRset: owner name plus record type (class is implicitly
/// `IN` throughout the experiments).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RrKey {
    /// Owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
}

impl RrKey {
    /// Creates a key.
    pub fn new(name: Name, rtype: RecordType) -> Self {
        RrKey { name, rtype }
    }
}

/// Written out (rather than derived) so it provably matches the
/// `dyn RrKeyView` hash below — the contract `Borrow`-based map probing
/// relies on.
impl Hash for RrKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.rtype.hash(state);
    }
}

/// Borrowed view of an RRset key, so caches can probe
/// `HashMap<RrKey, _>` / `BTreeMap<RrKey, _>` by `(&Name, RecordType)`
/// without cloning the name into a throwaway [`RrKey`]:
///
/// ```rust
/// # fn main() -> Result<(), dns_core::DnsError> {
/// use dns_core::{Name, RecordType, RrKey, RrKeyView};
/// use std::collections::HashMap;
///
/// let name: Name = "www.ucla.edu".parse()?;
/// let mut map = HashMap::new();
/// map.insert(RrKey::new(name.clone(), RecordType::A), 7u32);
/// // Lookup without constructing an RrKey:
/// let hit = map.get(&(&name, RecordType::A) as &dyn RrKeyView);
/// assert_eq!(hit, Some(&7));
/// # Ok(())
/// # }
/// ```
///
/// `Hash`/`Eq`/`Ord` on `dyn RrKeyView` are defined on `(name, rtype)` in
/// that order, identical to `RrKey`'s own implementations, which makes the
/// `Borrow<dyn RrKeyView> for RrKey` impl lawful.
pub trait RrKeyView {
    /// Owner name.
    fn name(&self) -> &Name;
    /// Record type.
    fn rtype(&self) -> RecordType;
}

impl RrKeyView for RrKey {
    fn name(&self) -> &Name {
        &self.name
    }
    fn rtype(&self) -> RecordType {
        self.rtype
    }
}

impl RrKeyView for (&Name, RecordType) {
    fn name(&self) -> &Name {
        self.0
    }
    fn rtype(&self) -> RecordType {
        self.1
    }
}

impl Hash for dyn RrKeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name().hash(state);
        self.rtype().hash(state);
    }
}

impl PartialEq for dyn RrKeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.rtype() == other.rtype() && self.name() == other.name()
    }
}

impl Eq for dyn RrKeyView + '_ {}

impl PartialOrd for dyn RrKeyView + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for dyn RrKeyView + '_ {
    fn cmp(&self, other: &Self) -> Ordering {
        self.name()
            .cmp(other.name())
            .then_with(|| self.rtype().cmp(&other.rtype()))
    }
}

impl<'a> Borrow<dyn RrKeyView + 'a> for RrKey {
    fn borrow(&self) -> &(dyn RrKeyView + 'a) {
        self
    }
}

impl fmt::Display for RrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.rtype)
    }
}

/// A set of records sharing owner name and type (RFC 2181 §5), the unit of
/// caching.
///
/// All records in the set share one TTL (per RFC 2181 §5.2 the TTLs of an
/// RRset must match; we normalise to the minimum on construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrSet {
    key: RrKey,
    ttl: Ttl,
    rdatas: Vec<RData>,
}

impl RrSet {
    /// Builds an RRset from one or more records of identical name/type.
    ///
    /// Records whose name or type differ from the first record are ignored;
    /// the TTL is the minimum across the set.
    ///
    /// Returns `None` when `records` is empty.
    pub fn from_records(records: &[Record]) -> Option<Self> {
        let first = records.first()?;
        let key = first.key();
        let mut ttl = first.ttl();
        let mut rdatas = Vec::new();
        for r in records {
            if r.key() == key {
                ttl = if r.ttl() < ttl { r.ttl() } else { ttl };
                if !rdatas.contains(r.rdata()) {
                    rdatas.push(r.rdata().clone());
                }
            }
        }
        Some(RrSet { key, ttl, rdatas })
    }

    /// Creates an RRset directly.
    pub fn new(key: RrKey, ttl: Ttl, rdatas: Vec<RData>) -> Self {
        RrSet { key, ttl, rdatas }
    }

    /// Identity of the set.
    pub fn key(&self) -> &RrKey {
        &self.key
    }

    /// Owner name.
    pub fn name(&self) -> &Name {
        &self.key.name
    }

    /// Record type.
    pub fn rtype(&self) -> RecordType {
        self.key.rtype
    }

    /// Shared TTL.
    pub fn ttl(&self) -> Ttl {
        self.ttl
    }

    /// Replaces the TTL.
    pub fn with_ttl(mut self, ttl: Ttl) -> Self {
        self.ttl = ttl;
        self
    }

    /// The RDATA values.
    pub fn rdatas(&self) -> &[RData] {
        &self.rdatas
    }

    /// Number of records in the set.
    pub fn len(&self) -> usize {
        self.rdatas.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rdatas.is_empty()
    }

    /// Expands back into individual [`Record`]s.
    pub fn to_records(&self) -> Vec<Record> {
        self.rdatas
            .iter()
            .map(|rd| Record::new(self.key.name.clone(), self.ttl, rd.clone()))
            .collect()
    }

    /// Absolute expiry for a copy received at `at`.
    pub fn expires_at(&self, at: SimTime) -> SimTime {
        self.ttl.expires_at(at)
    }
}

impl fmt::Display for RrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} x{}", self.key, self.ttl, self.rdatas.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn type_codes_roundtrip() {
        for t in RecordType::ALL {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(999), None);
    }

    #[test]
    fn class_codes_roundtrip() {
        for c in [RecordClass::In, RecordClass::Ch] {
            assert_eq!(RecordClass::from_code(c.code()), Some(c));
        }
        assert_eq!(RecordClass::from_code(0), None);
    }

    #[test]
    fn rdata_reports_its_type() {
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).rtype(), RecordType::A);
        assert_eq!(RData::Ns(name("ns1.edu")).rtype(), RecordType::Ns);
        assert_eq!(
            RData::Mx {
                preference: 10,
                exchange: name("mx.example.com"),
            }
            .rtype(),
            RecordType::Mx
        );
    }

    #[test]
    fn target_name_extraction() {
        assert_eq!(
            RData::Ns(name("ns1.edu")).target_name(),
            Some(&name("ns1.edu"))
        );
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).target_name(), None);
    }

    #[test]
    fn infrastructure_candidates() {
        assert!(RecordType::Ns.is_infrastructure_candidate());
        assert!(RecordType::A.is_infrastructure_candidate());
        assert!(!RecordType::Txt.is_infrastructure_candidate());
    }

    #[test]
    fn rrset_normalises_ttl_to_minimum() {
        let nm = name("ucla.edu");
        let recs = vec![
            Record::new(
                nm.clone(),
                Ttl::from_hours(4),
                RData::Ns(name("ns1.ucla.edu")),
            ),
            Record::new(
                nm.clone(),
                Ttl::from_hours(2),
                RData::Ns(name("ns2.ucla.edu")),
            ),
        ];
        let set = RrSet::from_records(&recs).unwrap();
        assert_eq!(set.ttl(), Ttl::from_hours(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn rrset_dedups_and_filters_foreign_records() {
        let nm = name("ucla.edu");
        let ns = RData::Ns(name("ns1.ucla.edu"));
        let recs = vec![
            Record::new(nm.clone(), Ttl::from_hours(1), ns.clone()),
            Record::new(nm.clone(), Ttl::from_hours(1), ns.clone()),
            // Different owner: must be excluded.
            Record::new(name("mit.edu"), Ttl::from_hours(1), ns.clone()),
            // Different type: must be excluded.
            Record::new(
                nm.clone(),
                Ttl::from_hours(1),
                RData::A(Ipv4Addr::LOCALHOST),
            ),
        ];
        let set = RrSet::from_records(&recs).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.rtype(), RecordType::Ns);
    }

    #[test]
    fn rrset_from_empty_is_none() {
        assert!(RrSet::from_records(&[]).is_none());
    }

    #[test]
    fn rrset_roundtrips_to_records() {
        let nm = name("ucla.edu");
        let set = RrSet::new(
            RrKey::new(nm.clone(), RecordType::Ns),
            Ttl::from_days(1),
            vec![
                RData::Ns(name("ns1.ucla.edu")),
                RData::Ns(name("ns2.ucla.edu")),
            ],
        );
        let recs = set.to_records();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.name() == &nm));
        assert_eq!(RrSet::from_records(&recs).unwrap(), set);
    }

    #[test]
    fn record_display_is_zone_file_like() {
        let r = Record::new(
            name("www.ucla.edu"),
            Ttl::from_hours(4),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        assert_eq!(r.to_string(), "www.ucla.edu. 4h IN A 192.0.2.1");
    }
}
