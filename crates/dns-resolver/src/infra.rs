//! The infrastructure-record cache: per-zone NS + glue entries, the data
//! structure the paper's resilience schemes operate on.
//!
//! Unlike the generic [`crate::RecordCache`], entries here are *per zone*
//! (one entry bundles the zone's NS set with its servers' addresses), carry
//! the renewal *credit*, and keep expired tombstones around long enough to
//! measure the paper's Figure-3 "time gap" between IRR expiry and the next
//! use of the zone.

use crate::RenewalPolicy;
use dns_core::{Name, SimDuration, SimTime, Ttl};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// Where a cached infrastructure entry was learned from. Child copies are
/// more credible than parent copies (RFC 2181 §5.4.1); root hints never
/// expire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InfraSource {
    /// Referral data from the parent zone.
    Parent,
    /// Data from the zone's own authoritative servers.
    Child,
    /// Compiled-in root hints.
    RootHints,
}

/// Cached infrastructure records for one zone: its NS names, their
/// addresses, and the caching/renewal metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct InfraEntry {
    /// Zone apex.
    pub zone: Name,
    /// Names of the zone's authoritative servers.
    pub ns_names: Vec<Name>,
    /// Known `(server name, address)` pairs (from glue or answers).
    pub addrs: Vec<(Name, Ipv4Addr)>,
    /// TTL the entry was installed with (after any cap).
    pub ttl: Ttl,
    /// Absolute expiry ([`SimTime::MAX`] for root hints).
    pub expires_at: SimTime,
    /// Provenance of the current copy.
    pub source: InfraSource,
    /// Remaining renewal credit (see [`RenewalPolicy`]).
    pub credit: u32,
    /// DS material for this zone, learned from the parent's referral —
    /// the DNSSEC infrastructure records of paper §6. Shares the entry's
    /// lifetime, so refresh/renewal/long-TTL extend it too.
    pub ds: Vec<(u16, u32)>,
    /// Last time this zone's delegation was confirmed by the *parent*
    /// (referral data). Refresh/renewal keep entries alive from the child
    /// side indefinitely; the parent-recheck deployment safeguard (paper
    /// §6) bounds how long that may go unverified.
    pub last_parent_contact: SimTime,
    /// Whether the expiry tombstone has already produced a gap sample.
    gap_recorded: bool,
    /// Whether this entry is currently included in the cache's maintained
    /// fresh-occupancy counters (cleared by the expiry heap when due).
    counted: bool,
}

impl InfraEntry {
    /// Whether the entry is fresh at `now`.
    pub fn is_fresh(&self, now: SimTime) -> bool {
        now < self.expires_at
    }

    /// Addresses usable for contacting the zone, in installation order.
    pub fn server_addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.addrs.iter().map(|&(_, a)| a)
    }

    /// Individual records this entry represents (NS entries + address
    /// entries), for memory accounting.
    pub fn record_count(&self) -> usize {
        self.ns_names.len() + self.addrs.len()
    }
}

/// A Figure-3 gap sample: a zone's IRRs expired, and the zone was next used
/// `gap` later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapSample {
    /// The zone whose IRRs expired.
    pub zone: Name,
    /// Time from expiry to next use.
    pub gap: SimDuration,
    /// The IRR TTL in force when the entry expired.
    pub ttl: Ttl,
}

/// The per-zone infrastructure cache.
#[derive(Debug, Clone, Default)]
pub struct InfraCache {
    entries: HashMap<Name, InfraEntry>,
    /// Renewal schedule: `(expiry, zone)` pairs for finite entries. Stale
    /// pairs (entry refreshed since scheduling) are skipped on pop.
    schedule: BTreeSet<(SimTime, Name)>,
    gap_samples: Vec<GapSample>,
    /// Occupancy expiry min-heap, lazy-deleted like the renewal schedule:
    /// a popped pair only uncounts the entry if it still expires at that
    /// instant. Unlike eviction in `RecordCache`, expired entries stay in
    /// the map as tombstones (Figure 3 needs them) — only their
    /// contribution to the fresh counters is retired.
    expiry: BinaryHeap<Reverse<(SimTime, Name)>>,
    /// Zones counted fresh as of the last advance.
    fresh_zones: usize,
    /// Infrastructure records (NS + address) across counted zones.
    fresh_records: usize,
}

impl InfraCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        InfraCache::default()
    }

    /// Installs the never-expiring root hints.
    pub fn install_root_hints(&mut self, servers: &[(Name, Ipv4Addr)]) {
        let entry = InfraEntry {
            zone: Name::root(),
            ns_names: servers.iter().map(|(n, _)| n.clone()).collect(),
            addrs: servers.to_vec(),
            ttl: Ttl::MAX,
            expires_at: SimTime::MAX,
            source: InfraSource::RootHints,
            credit: 0,
            ds: Vec::new(),
            last_parent_contact: SimTime::MAX,
            gap_recorded: true,
            counted: true,
        };
        // Hints never expire, so they are counted once and never pushed
        // onto the expiry heap.
        self.fresh_zones += 1;
        self.fresh_records += entry.record_count();
        if let Some(old) = self.entries.insert(Name::root(), entry) {
            if old.counted {
                self.fresh_zones -= 1;
                self.fresh_records -= old.record_count();
            }
        }
    }

    /// Looks up the entry for an exact zone (fresh or tombstoned).
    pub fn get(&self, zone: &Name) -> Option<&InfraEntry> {
        self.entries.get(zone)
    }

    /// The deepest ancestor zone of `name` (including `name` itself) with a
    /// fresh entry that has at least one server address.
    ///
    /// Root hints guarantee this returns `Some` once installed.
    pub fn deepest_fresh_ancestor(&self, name: &Name, now: SimTime) -> Option<&InfraEntry> {
        self.deepest_usable_ancestor(name, now, None)
    }

    /// Like [`InfraCache::deepest_fresh_ancestor`], but additionally skips
    /// entries whose delegation has not been confirmed by the parent for
    /// longer than `max_parent_age` — the paper's §6 safeguard that lets
    /// parents reclaim delegations from non-cooperative former owners.
    /// Root hints are exempt.
    pub fn deepest_usable_ancestor(
        &self,
        name: &Name,
        now: SimTime,
        max_parent_age: Option<SimDuration>,
    ) -> Option<&InfraEntry> {
        name.ancestors().find_map(|z| {
            self.entries.get(&z).filter(|e| {
                if !e.is_fresh(now) || e.addrs.is_empty() {
                    return false;
                }
                match max_parent_age {
                    Some(limit) if e.source != InfraSource::RootHints => {
                        now - e.last_parent_contact <= limit
                    }
                    _ => true,
                }
            })
        })
    }

    /// Installs or updates a zone's infrastructure records.
    ///
    /// `refresh` selects the paper's TTL-refresh behaviour: when `true`, a
    /// child-sourced copy arriving while a child-sourced entry is still
    /// fresh resets the expiry; when `false` (vanilla), the duplicate copy
    /// is ignored and the original expiry stands.
    ///
    /// Credibility rules applied in both modes:
    /// * a child copy replaces a fresh parent copy (RFC 2181),
    /// * a parent copy never replaces any fresh entry,
    /// * anything replaces an expired entry,
    /// * root hints are never replaced.
    ///
    /// Returns `true` when the entry was (re)installed or refreshed.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        &mut self,
        zone: Name,
        ns_names: Vec<Name>,
        addrs: Vec<(Name, Ipv4Addr)>,
        ttl: Ttl,
        now: SimTime,
        source: InfraSource,
        refresh: bool,
    ) -> bool {
        if ns_names.is_empty() {
            return false;
        }
        let mut credit = 0;
        // A parent-sourced copy confirms the delegation now; a child copy
        // inherits the last confirmation time (first-learned entries start
        // the clock at installation).
        let mut last_parent_contact = now;
        // Inspect the existing entry (immutably) and decide what to do.
        let existing = match self.entries.get(&zone) {
            Some(e) => {
                if e.source == InfraSource::RootHints {
                    return false;
                }
                let same_servers = {
                    let mut a = e.ns_names.clone();
                    let mut b = ns_names.clone();
                    a.sort();
                    b.sort();
                    a == b
                };
                Some((
                    e.is_fresh(now),
                    e.source,
                    e.expires_at,
                    e.credit,
                    e.last_parent_contact,
                    same_servers,
                    e.ds.clone(),
                ))
            }
            None => None,
        };
        let mut ds = Vec::new();
        if let Some((
            was_fresh,
            old_source,
            old_expiry,
            old_credit,
            old_parent_contact,
            same,
            old_ds,
        )) = existing
        {
            if was_fresh {
                let replace = match (old_source, source) {
                    // Child data replaces parent data…
                    (InfraSource::Parent, InfraSource::Child) => true,
                    // …and refreshes itself only when the scheme is on.
                    (InfraSource::Child, InfraSource::Child) => refresh,
                    // Parent data never displaces fresh data. A repeat
                    // parent copy while a parent copy is fresh is the same
                    // data; refreshing it is also gated on the scheme.
                    (InfraSource::Parent, InfraSource::Parent) => refresh,
                    // A fresh child copy resists parent data with the same
                    // NS set (RFC 2181 ranking) — but the parent copy still
                    // *confirms* the delegation for the §6 recheck clock.
                    // A *different* parent NS set means the delegation
                    // changed (e.g. the zone was reclaimed): parent wins.
                    (InfraSource::Child, InfraSource::Parent) => {
                        if same {
                            if let Some(entry) = self.entries.get_mut(&zone) {
                                entry.last_parent_contact = now;
                            }
                            return false;
                        }
                        true
                    }
                    (InfraSource::RootHints, _) | (_, InfraSource::RootHints) => false,
                };
                if !replace {
                    return false;
                }
            } else {
                // Reinstalling after expiry: record the Figure-3 gap.
                self.note_gap(&zone, now);
            }
            // Credit survives expiry — the paper's renewal policies
            // decrement it per renewal, not per expiry.
            credit = old_credit;
            // DS material survives reinstalls (only the parent can change
            // it; see `set_ds`).
            ds = old_ds;
            if source != InfraSource::Parent {
                last_parent_contact = old_parent_contact;
            }
            self.schedule.remove(&(old_expiry, zone.clone()));
        }
        let expires_at = ttl.expires_at(now);
        self.schedule.insert((expires_at, zone.clone()));
        let counted = now < expires_at;
        if counted {
            self.expiry.push(Reverse((expires_at, zone.clone())));
        }
        let entry = InfraEntry {
            zone: zone.clone(),
            ns_names,
            addrs,
            ttl,
            expires_at,
            source,
            credit,
            ds,
            last_parent_contact,
            gap_recorded: false,
            counted,
        };
        if counted {
            self.fresh_zones += 1;
            self.fresh_records += entry.record_count();
        }
        if let Some(old) = self.entries.insert(zone, entry) {
            if old.counted {
                self.fresh_zones -= 1;
                self.fresh_records -= old.record_count();
            }
        }
        true
    }

    /// Retires the counter contribution of every entry whose expiry is at
    /// or before `now`. Entries themselves stay in the map as tombstones;
    /// cost is O(log n) per expired entry rather than a full scan.
    fn advance_expiry(&mut self, now: SimTime) {
        while self
            .expiry
            .peek()
            .is_some_and(|Reverse((at, _))| *at <= now)
        {
            let Reverse((at, zone)) = self.expiry.pop().expect("peeked");
            if let Some(entry) = self.entries.get_mut(&zone) {
                // A refreshed entry has a different expiry: the stale pair
                // is skipped and its newer pair governs the uncount.
                if entry.counted && entry.expires_at == at {
                    entry.counted = false;
                    self.fresh_zones -= 1;
                    self.fresh_records -= entry.record_count();
                }
            }
        }
    }

    /// Notes a demand use of `zone` at `now`: records a pending gap sample
    /// if the entry is an unconsumed tombstone, and (when a renewal policy
    /// is active) grants credit.
    pub fn record_use(&mut self, zone: &Name, now: SimTime, policy: Option<&RenewalPolicy>) {
        self.note_gap(zone, now);
        if let (Some(policy), Some(entry)) = (policy, self.entries.get_mut(zone)) {
            if entry.source != InfraSource::RootHints {
                entry.credit = policy.credit_on_use(entry.credit, entry.ttl);
            }
        }
    }

    /// Consumes one renewal credit for `zone`, returning the entry snapshot
    /// to renew from, or `None` when the zone has no credit (or no entry).
    pub fn consume_renewal_credit(&mut self, zone: &Name) -> Option<InfraEntry> {
        let entry = self.entries.get_mut(zone)?;
        if entry.credit == 0 || entry.source == InfraSource::RootHints {
            return None;
        }
        entry.credit -= 1;
        Some(entry.clone())
    }

    /// The next scheduled expiry at or before `upto` whose entry still
    /// expires at that instant and has renewal credit. Stale schedule pairs
    /// are discarded as encountered.
    pub fn next_renewal_due(&mut self, upto: SimTime) -> Option<(SimTime, Name)> {
        while let Some((at, zone)) = self.schedule.first().cloned() {
            if at > upto {
                return None;
            }
            self.schedule.remove(&(at, zone.clone()));
            if let Some(entry) = self.entries.get(&zone) {
                if entry.expires_at == at && entry.credit > 0 {
                    return Some((at, zone));
                }
            }
        }
        None
    }

    /// Earliest scheduled expiry with positive credit (peek, no mutation of
    /// entries; stale pairs are discarded).
    pub fn peek_renewal_due(&mut self) -> Option<SimTime> {
        while let Some((at, zone)) = self.schedule.first().cloned() {
            match self.entries.get(&zone) {
                Some(entry) if entry.expires_at == at && entry.credit > 0 => {
                    return Some(at);
                }
                Some(entry) if entry.expires_at == at => return self.peek_after(at),
                _ => {
                    self.schedule.remove(&(at, zone));
                }
            }
        }
        None
    }

    fn peek_after(&self, after: SimTime) -> Option<SimTime> {
        self.schedule
            .iter()
            .find(|(at, zone)| {
                *at >= after
                    && self
                        .entries
                        .get(zone)
                        .is_some_and(|e| e.expires_at == *at && e.credit > 0)
            })
            .map(|&(at, _)| at)
    }

    fn note_gap(&mut self, zone: &Name, now: SimTime) {
        if let Some(entry) = self.entries.get_mut(zone) {
            if !entry.is_fresh(now) && !entry.gap_recorded {
                entry.gap_recorded = true;
                self.gap_samples.push(GapSample {
                    zone: zone.clone(),
                    gap: now - entry.expires_at,
                    ttl: entry.ttl,
                });
            }
        }
    }

    /// Drains the Figure-3 gap samples collected so far.
    pub fn take_gap_samples(&mut self) -> Vec<GapSample> {
        std::mem::take(&mut self.gap_samples)
    }

    /// Records the DS material the parent published for `zone`. Called by
    /// the resolver when a referral carries DS records (paper §6: DNSSEC
    /// infrastructure records are cached with the other IRRs).
    pub fn set_ds(&mut self, zone: &Name, ds: Vec<(u16, u32)>) {
        if let Some(entry) = self.entries.get_mut(zone) {
            if entry.source != InfraSource::RootHints && !ds.is_empty() {
                entry.ds = ds;
            }
        }
    }

    /// Moves `addr` to the front of a zone's server list. The resolver
    /// calls this after a failover succeeds, so later queries try the
    /// known-responsive server first instead of re-paying timeouts on a
    /// dead one ("the next server in the IRR is queried" — paper §4; once
    /// one answers, prefer it).
    pub fn promote_address(&mut self, zone: &Name, addr: Ipv4Addr) {
        if let Some(entry) = self.entries.get_mut(zone) {
            if let Some(pos) = entry.addrs.iter().position(|&(_, a)| a == addr) {
                if pos > 0 {
                    let pair = entry.addrs.remove(pos);
                    entry.addrs.insert(0, pair);
                }
            }
        }
    }

    /// Attaches freshly learned addresses to an existing entry (used when a
    /// server name was resolved out-of-bailiwick, so the original referral
    /// carried no glue). Unknown server names and duplicates are ignored.
    pub fn add_addresses(&mut self, zone: &Name, pairs: &[(Name, Ipv4Addr)]) {
        if let Some(entry) = self.entries.get_mut(zone) {
            for (ns, addr) in pairs {
                if entry.ns_names.contains(ns) && !entry.addrs.iter().any(|(n, _)| n == ns) {
                    entry.addrs.push((ns.clone(), *addr));
                    if entry.counted {
                        self.fresh_records += 1;
                    }
                }
            }
        }
    }

    /// Number of zones with fresh entries at `now` (maintained counter
    /// behind the expiry heap; `now` must not move backwards).
    pub fn fresh_zone_count(&mut self, now: SimTime) -> usize {
        self.advance_expiry(now);
        self.fresh_zones
    }

    /// Total infrastructure records across fresh entries at `now`
    /// (maintained counter; `now` must not move backwards).
    pub fn fresh_record_count(&mut self, now: SimTime) -> usize {
        self.advance_expiry(now);
        self.fresh_records
    }

    /// Total entries including tombstones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops tombstones that expired more than `retention` before `now`
    /// and have already been sampled. Returns how many were dropped.
    pub fn purge_tombstones(&mut self, now: SimTime, retention: SimDuration) -> usize {
        // Retire due counter contributions first so every entry this scan
        // drops is already uncounted (dropped entries are stale by
        // definition). Their leftover heap pairs pop onto missing map
        // entries later and are skipped.
        self.advance_expiry(now);
        let before = self.entries.len();
        self.entries
            .retain(|_, e| e.is_fresh(now) || !e.gap_recorded || now - e.expires_at <= retention);
        before - self.entries.len()
    }
}

impl fmt::Display for InfraCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "infra cache ({} zones)", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    fn cache_with_root() -> InfraCache {
        let mut c = InfraCache::new();
        c.install_root_hints(&[(name("a.root-servers.net"), ip(4))]);
        c
    }

    fn install_ucla(c: &mut InfraCache, now: SimTime, source: InfraSource, refresh: bool) -> bool {
        c.install(
            name("ucla.edu"),
            vec![name("ns1.ucla.edu")],
            vec![(name("ns1.ucla.edu"), ip(1))],
            Ttl::from_hours(12),
            now,
            source,
            refresh,
        )
    }

    #[test]
    fn root_hints_never_expire_or_get_replaced() {
        let mut c = cache_with_root();
        let entry = c
            .deepest_fresh_ancestor(&name("anything.com"), SimTime::from_days(400))
            .unwrap();
        assert!(entry.zone.is_root());
        // A parent/child copy cannot displace the hints.
        assert!(!c.install(
            Name::root(),
            vec![name("evil.example")],
            vec![(name("evil.example"), ip(66))],
            Ttl::from_days(7),
            SimTime::ZERO,
            InfraSource::Child,
            true,
        ));
    }

    #[test]
    fn deepest_fresh_ancestor_prefers_deeper_zone() {
        let mut c = cache_with_root();
        c.install(
            name("edu"),
            vec![name("ns.edu")],
            vec![(name("ns.edu"), ip(2))],
            Ttl::from_days(2),
            SimTime::ZERO,
            InfraSource::Parent,
            false,
        );
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, false);
        let e = c
            .deepest_fresh_ancestor(&name("www.ucla.edu"), SimTime::from_hours(1))
            .unwrap();
        assert_eq!(e.zone, name("ucla.edu"));
        // After ucla's 12h TTL, falls back to edu.
        let e = c
            .deepest_fresh_ancestor(&name("www.ucla.edu"), SimTime::from_hours(13))
            .unwrap();
        assert_eq!(e.zone, name("edu"));
    }

    #[test]
    fn entries_without_addresses_are_skipped() {
        let mut c = cache_with_root();
        c.install(
            name("edu"),
            vec![name("ns.edu")],
            vec![], // NS known but no address
            Ttl::from_days(2),
            SimTime::ZERO,
            InfraSource::Parent,
            false,
        );
        let e = c
            .deepest_fresh_ancestor(&name("www.ucla.edu"), SimTime::ZERO)
            .unwrap();
        assert!(e.zone.is_root());
    }

    #[test]
    fn vanilla_child_copy_does_not_refresh() {
        let mut c = cache_with_root();
        assert!(install_ucla(
            &mut c,
            SimTime::ZERO,
            InfraSource::Child,
            false
        ));
        // A later duplicate child copy is ignored without refresh.
        assert!(!install_ucla(
            &mut c,
            SimTime::from_hours(6),
            InfraSource::Child,
            false
        ));
        let e = c.get(&name("ucla.edu")).unwrap();
        assert_eq!(e.expires_at, SimTime::from_hours(12));
    }

    #[test]
    fn refresh_resets_expiry_on_child_copy() {
        let mut c = cache_with_root();
        assert!(install_ucla(
            &mut c,
            SimTime::ZERO,
            InfraSource::Child,
            true
        ));
        assert!(install_ucla(
            &mut c,
            SimTime::from_hours(6),
            InfraSource::Child,
            true
        ));
        let e = c.get(&name("ucla.edu")).unwrap();
        assert_eq!(e.expires_at, SimTime::from_hours(18));
    }

    #[test]
    fn child_replaces_fresh_parent_but_not_vice_versa() {
        let mut c = cache_with_root();
        assert!(install_ucla(
            &mut c,
            SimTime::ZERO,
            InfraSource::Parent,
            false
        ));
        assert!(install_ucla(
            &mut c,
            SimTime::from_hours(1),
            InfraSource::Child,
            false
        ));
        assert_eq!(c.get(&name("ucla.edu")).unwrap().source, InfraSource::Child);
        // Fresh child entry resists parent data.
        assert!(!install_ucla(
            &mut c,
            SimTime::from_hours(2),
            InfraSource::Parent,
            false
        ));
        assert_eq!(c.get(&name("ucla.edu")).unwrap().source, InfraSource::Child);
    }

    #[test]
    fn anything_replaces_expired_entry() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, false);
        assert!(install_ucla(
            &mut c,
            SimTime::from_days(1),
            InfraSource::Parent,
            false
        ));
        assert_eq!(
            c.get(&name("ucla.edu")).unwrap().source,
            InfraSource::Parent
        );
    }

    #[test]
    fn gap_recorded_once_per_expiry() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, false);
        // Expires at 12h; used again at 15h → gap of 3h.
        c.record_use(&name("ucla.edu"), SimTime::from_hours(15), None);
        c.record_use(&name("ucla.edu"), SimTime::from_hours(16), None);
        let samples = c.take_gap_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].gap, SimDuration::from_hours(3));
        assert_eq!(samples[0].ttl, Ttl::from_hours(12));
        assert!(c.take_gap_samples().is_empty());
    }

    #[test]
    fn gap_also_recorded_when_reinstalled_after_expiry() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, false);
        install_ucla(&mut c, SimTime::from_hours(20), InfraSource::Parent, false);
        let samples = c.take_gap_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].gap, SimDuration::from_hours(8));
    }

    #[test]
    fn credit_flows_through_policy_and_renewal() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true);
        let policy = RenewalPolicy::lru(2);
        c.record_use(&name("ucla.edu"), SimTime::from_hours(1), Some(&policy));
        assert_eq!(c.get(&name("ucla.edu")).unwrap().credit, 2);

        let snap = c.consume_renewal_credit(&name("ucla.edu")).unwrap();
        assert_eq!(snap.credit, 1); // snapshot reflects decremented value
        assert_eq!(c.get(&name("ucla.edu")).unwrap().credit, 1);
        assert!(c.consume_renewal_credit(&name("ucla.edu")).is_some());
        assert!(c.consume_renewal_credit(&name("ucla.edu")).is_none());
    }

    #[test]
    fn credit_survives_reinstall_after_expiry() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true);
        let policy = RenewalPolicy::lfu(3);
        c.record_use(&name("ucla.edu"), SimTime::from_hours(1), Some(&policy));
        // Entry expires at 12h; reinstalled at 20h.
        install_ucla(&mut c, SimTime::from_hours(20), InfraSource::Parent, true);
        assert_eq!(c.get(&name("ucla.edu")).unwrap().credit, 3);
    }

    #[test]
    fn renewal_schedule_pops_due_entries_in_order() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true); // expires 12h
        c.install(
            name("mit.edu"),
            vec![name("ns.mit.edu")],
            vec![(name("ns.mit.edu"), ip(9))],
            Ttl::from_hours(6),
            SimTime::ZERO,
            InfraSource::Child,
            true,
        ); // expires 6h
        let policy = RenewalPolicy::lru(1);
        c.record_use(&name("ucla.edu"), SimTime::from_mins(1), Some(&policy));
        c.record_use(&name("mit.edu"), SimTime::from_mins(1), Some(&policy));

        assert_eq!(c.peek_renewal_due(), Some(SimTime::from_hours(6)));
        let (at, zone) = c.next_renewal_due(SimTime::from_days(1)).unwrap();
        assert_eq!((at, zone), (SimTime::from_hours(6), name("mit.edu")));
        let (at, zone) = c.next_renewal_due(SimTime::from_days(1)).unwrap();
        assert_eq!((at, zone), (SimTime::from_hours(12), name("ucla.edu")));
        assert!(c.next_renewal_due(SimTime::from_days(1)).is_none());
    }

    #[test]
    fn schedule_skips_zones_without_credit() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true);
        // No record_use → no credit → nothing due.
        assert!(c.next_renewal_due(SimTime::from_days(2)).is_none());
        assert_eq!(c.peek_renewal_due(), None);
    }

    #[test]
    fn refresh_invalidates_old_schedule_entry() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true);
        let policy = RenewalPolicy::lru(1);
        c.record_use(&name("ucla.edu"), SimTime::from_mins(1), Some(&policy));
        // Refresh at 6h pushes expiry to 18h; the 12h schedule entry is
        // stale and must not fire.
        install_ucla(&mut c, SimTime::from_hours(6), InfraSource::Child, true);
        let (at, _) = c.next_renewal_due(SimTime::from_days(1)).unwrap();
        assert_eq!(at, SimTime::from_hours(18));
    }

    #[test]
    fn matching_parent_copy_confirms_without_replacing() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true);
        // Same NS set from the parent at hour 3: entry untouched, but the
        // parent-contact clock resets.
        assert!(!install_ucla(
            &mut c,
            SimTime::from_hours(3),
            InfraSource::Parent,
            true
        ));
        let e = c.get(&name("ucla.edu")).unwrap();
        assert_eq!(e.source, InfraSource::Child);
        assert_eq!(e.expires_at, SimTime::from_hours(12));
        assert_eq!(e.last_parent_contact, SimTime::from_hours(3));
    }

    #[test]
    fn changed_parent_delegation_replaces_fresh_child_entry() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, true);
        // The parent now lists a different server: delegation reclaimed.
        assert!(c.install(
            name("ucla.edu"),
            vec![name("ns9.ucla.edu")],
            vec![(name("ns9.ucla.edu"), ip(9))],
            Ttl::from_hours(12),
            SimTime::from_hours(3),
            InfraSource::Parent,
            true,
        ));
        let e = c.get(&name("ucla.edu")).unwrap();
        assert_eq!(e.ns_names, vec![name("ns9.ucla.edu")]);
        assert_eq!(e.source, InfraSource::Parent);
    }

    #[test]
    fn parent_staleness_gates_usability() {
        let mut c = cache_with_root();
        // Child-sourced entry confirmed by parent at t=0 only.
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Parent, true);
        install_ucla(&mut c, SimTime::from_secs(1), InfraSource::Child, true);
        let probe = name("www.ucla.edu");
        let limit = Some(SimDuration::from_hours(4));
        // Within the limit the deep entry is used…
        let e = c
            .deepest_usable_ancestor(&probe, SimTime::from_hours(3), limit)
            .unwrap();
        assert_eq!(e.zone, name("ucla.edu"));
        // …after it, resolution falls back to the root (forcing a walk
        // through the parent).
        let e = c
            .deepest_usable_ancestor(&probe, SimTime::from_hours(5), limit)
            .unwrap();
        assert!(e.zone.is_root());
        // Without a limit the entry stays usable until TTL expiry.
        let e = c
            .deepest_usable_ancestor(&probe, SimTime::from_hours(5), None)
            .unwrap();
        assert_eq!(e.zone, name("ucla.edu"));
    }

    #[test]
    fn occupancy_counts() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, false);
        // Root (1 ns + 1 addr) + ucla (1 ns + 1 addr).
        assert_eq!(c.fresh_zone_count(SimTime::from_hours(1)), 2);
        assert_eq!(c.fresh_record_count(SimTime::from_hours(1)), 4);
        assert_eq!(c.fresh_zone_count(SimTime::from_days(1)), 1);
    }

    #[test]
    fn purge_tombstones_respects_retention_and_sampling() {
        let mut c = cache_with_root();
        install_ucla(&mut c, SimTime::ZERO, InfraSource::Child, false);
        // Expired but unsampled: retained regardless of age.
        assert_eq!(
            c.purge_tombstones(SimTime::from_days(30), SimDuration::from_days(1)),
            0
        );
        c.record_use(&name("ucla.edu"), SimTime::from_days(30), None);
        assert_eq!(
            c.purge_tombstones(SimTime::from_days(60), SimDuration::from_days(1)),
            1
        );
        assert!(c.get(&name("ucla.edu")).is_none());
    }
}
