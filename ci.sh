#!/usr/bin/env sh
# Repo gate: formatting, lints, the full test suite, and an end-to-end
# smoke run of one figure binary on a tiny workload.
#
#   ./ci.sh            # everything (a few minutes)
#   ./ci.sh smoke      # just the figure smoke run
set -eu

smoke() {
    echo "== tracked BENCH files present and gated =="
    # The perf trajectory is tracked in-repo; a missing file means a bench
    # was added without committing its baseline (or one was deleted).
    for f in BENCH_resolve.json BENCH_scale.json BENCH_stale.json; do
        test -s "$f" || { echo "tracked bench file missing: $f" >&2; exit 1; }
    done
    # Scale-axis gates on the tracked full run: every schema field
    # present, replay memory bounded at 100k zones, and RSS flat when the
    # query count grows 10x at 1M zones (the trace is never materialized).
    for field in bench schema_version queries_per_scale \
        zones_10k zones_100k zones_1m \
        arena_bytes_10k arena_bytes_100k arena_bytes_1m \
        interned_names_1m heap_bytes_1m build_secs_1m \
        gen_qps_10k gen_qps_100k gen_qps_1m \
        gen_allocs_per_query_1m \
        peak_rss_kb_10k peak_rss_kb_100k peak_rss_kb_1m \
        rss_growth_kb_10x_queries sweep_queries sweep_wall_secs \
        sweep_peak_rss_kb; do
        grep -q "\"$field\"" BENCH_scale.json \
            || { echo "BENCH_scale.json missing field: $field" >&2; exit 1; }
    done
    awk -F': *' '/"peak_rss_kb_100k"/ { v = $2 + 0 }
        END { if (v <= 0 || v >= 120000) {
            print "BENCH_scale.json: peak_rss_kb_100k out of budget (" v " KiB, budget 120000)" > "/dev/stderr"; exit 1 } }' \
        BENCH_scale.json
    awk -F': *' '/"rss_growth_kb_10x_queries"/ { v = $2 + 0 }
        END { if (v >= 20000) {
            print "BENCH_scale.json: streaming 10x queries grew RSS by " v " KiB (gate 20000)" > "/dev/stderr"; exit 1 } }' \
        BENCH_scale.json
    # Serve-stale gates on the tracked full run: the stale path must fire
    # (and only when enabled), and it must actually cut the blackout
    # failure fraction vs vanilla.
    for field in bench schema_version scale vanilla_sr_failed_pct \
        stale_sr_failed_pct vanilla_stale_served stale_served \
        stale_expired_unserved refresh_ahead prefetch_issued \
        prefetch_hits prefetch_wasted stale_msg_overhead_pct \
        torture_legit_failed_pct_vanilla torture_legit_failed_pct_stale; do
        grep -q "\"$field\"" BENCH_stale.json \
            || { echo "BENCH_stale.json missing field: $field" >&2; exit 1; }
    done
    awk -F': *' '/"vanilla_stale_served"/ { v = $2 + 0 }
        END { if (v != 0) {
            print "BENCH_stale.json: stale counters fired in a vanilla scheme (" v ")" > "/dev/stderr"; exit 1 } }' \
        BENCH_stale.json
    awk -F': *' '/"stale_served"/ && !/vanilla/ { v = $2 + 0 }
        END { if (v <= 0) {
            print "BENCH_stale.json: serve-stale scheme never served stale" > "/dev/stderr"; exit 1 } }' \
        BENCH_stale.json
    awk -F': *' '/"vanilla_sr_failed_pct"/ { van = $2 + 0 }
        /"stale_sr_failed_pct"/ { st = $2 + 0 }
        END { if (!(st < van)) {
            print "BENCH_stale.json: serve-stale did not cut blackout failures (" st " vs " van ")" > "/dev/stderr"; exit 1 } }' \
        BENCH_stale.json

    echo "== smoke: bench_scale --smoke (streamed scale sweep) =="
    # Reduced zone counts (1k/10k/50k), same code path: interned
    # namespace build, streamed generation, the 10x-queries RSS probe and
    # an end-to-end streamed attack sweep.
    scale_out=$(mktemp -d)
    DNS_BENCH_OUT="$scale_out/scale.json" \
        cargo run --release -p dns-bench --bin bench_scale --offline -- --smoke
    test -s "$scale_out/scale.json" || { echo "missing scale.json" >&2; exit 1; }
    for field in zones_1k zones_10k zones_50k gen_qps_50k \
        peak_rss_kb_50k rss_growth_kb_10x_queries sweep_queries \
        sweep_peak_rss_kb; do
        grep -q "\"$field\"" "$scale_out/scale.json" \
            || { echo "scale.json missing field: $field" >&2; exit 1; }
    done
    awk -F': *' '/"gen_qps_50k"/ { v = $2 + 0 }
        END { if (v <= 0) { print "scale.json: gen_qps_50k not positive" > "/dev/stderr"; exit 1 } }' \
        "$scale_out/scale.json"
    rm -rf "$scale_out"

    echo "== smoke: fig4 on a tiny trace =="
    out=$(mktemp -d)
    DNS_REPRO_SCALE=0.05 DNS_REPRO_OUT="$out" \
        cargo run --release -p dns-bench --bin fig4 --offline
    for f in fig4_sr fig4_cs run_manifest; do
        test -s "$out/$f.csv" || { echo "missing $out/$f.csv" >&2; exit 1; }
    done
    rm -rf "$out"

    echo "== smoke: bench_resolve on a tiny trace =="
    # Replays a reduced seeded trace through the full simulation and checks
    # that the emitted perf baseline is well-formed: every schema field
    # present, qps positive, and the hot paths still allocation-free.
    bench_out=$(mktemp -d)
    DNS_BENCH_SCALE=0.05 DNS_BENCH_OUT="$bench_out/bench.json" \
        cargo run --release -p dns-bench --bin bench_resolve --offline
    test -s "$bench_out/bench.json" || { echo "missing bench.json" >&2; exit 1; }
    for field in bench schema_version scheme trace scale queries wall_secs \
        qps allocs_per_query bytes_per_query name_clone_parent_allocs_per_op \
        warm_get_allocs_per_op wire_qps wire_allocs_per_query peak_rss_kb \
        mt_qps_1 mt_qps_2 mt_qps_4 mt_qps_8 \
        mt_allocs_per_query_1 mt_allocs_per_query_2 \
        mt_allocs_per_query_4 mt_allocs_per_query_8; do
        grep -q "\"$field\"" "$bench_out/bench.json" \
            || { echo "bench.json missing field: $field" >&2; exit 1; }
    done
    awk -F': *' '/"qps"/ { qps = $2 + 0 }
        END { if (qps <= 0) { print "bench.json: qps not positive" > "/dev/stderr"; exit 1 } }' \
        "$bench_out/bench.json"
    for mt in wire_qps mt_qps_1 mt_qps_2 mt_qps_4 mt_qps_8; do
        awk -F': *' -v f="\"$mt\"" '$0 ~ f { v = $2 + 0 }
            END { if (v <= 0) { print f ": not positive" > "/dev/stderr"; exit 1 } }' \
            "$bench_out/bench.json"
    done
    # wire_allocs_per_query gates the fast lane: a wire-cache hit must be
    # served with zero allocations end to end (parse, key, patch, copy).
    for probe in name_clone_parent_allocs_per_op warm_get_allocs_per_op \
        wire_allocs_per_query; do
        awk -F': *' -v probe="\"$probe\"" '$0 ~ probe { v = $2 + 0 }
            END { if (v != 0) { print probe ": hot path allocates" > "/dev/stderr"; exit 1 } }' \
            "$bench_out/bench.json"
    done
    rm -rf "$bench_out"

    echo "== smoke: netd playground under 10% injected loss =="
    # Boots the loopback internet, resolves through the retry policy with
    # deterministic 10% packet loss, then through a root/TLD blackout;
    # the binary exits non-zero if any scripted resolution deviates. All
    # traffic rides the batched PacketIo worker loop, and the script
    # asserts a repeat hot query is served by the wire fast lane. The
    # --trace flag exercises the per-query explain path, and the script
    # ends by fetching the CHAOS TXT metrics snapshot over the wire.
    DNS_PLAYGROUND_LOSS=0.1 DNS_PLAYGROUND_SEED=7 \
        cargo run --release -p dns-netd --bin dns-playground --offline -- --trace

    echo "== smoke: netd playground, sharded worker pool =="
    # The same scripted tour resolved by 4 workers over one 4-shard
    # cache with single-flight coalescing — the concurrent resolver
    # core on real sockets.
    cargo run --release -p dns-netd --bin dns-playground --offline -- --shards 4

    echo "== smoke: observability exposition =="
    # The live exposition integration test: worker pool on loopback,
    # queries including a blackout-induced SERVFAIL, the CHAOS TXT
    # snapshot reconciled against the daemon's own counters, and the
    # Prometheus text rendering validated by the dns-obs checker.
    cargo test --release -q --offline -p dns-netd --test obs

    echo "== smoke: adversarial survival gates (NXNS + water torture) =="
    # One NXNS delegation-bomb sweep and one water-torture sweep, each
    # against an undefended and a MaxFetch(2)+negcap hardened resolver:
    # asserts the undefended resolver shows real amplification (> 5x),
    # MaxFetch(2) cuts it at least 5x with legitimate failures within
    # 1pp of the attack-free baseline, the negative-cache budget holds
    # under flood without evicting positives, and the sweep is
    # thread-count independent.
    cargo test --release -q --offline -p dns-sim --test adversarial

    echo "== smoke: adversarial head-to-head binary on a tiny trace =="
    adv_out=$(mktemp -d)
    DNS_REPRO_SCALE=0.05 DNS_REPRO_OUT="$adv_out" \
        cargo run --release -p dns-bench --bin adversarial --offline
    for f in adversarial run_manifest; do
        test -s "$adv_out/$f.csv" || { echo "missing $adv_out/$f.csv" >&2; exit 1; }
    done
    # The manifest rows carry the defense counters.
    head -1 "$adv_out/run_manifest.csv" | grep -q "fetches_clamped" \
        || { echo "run_manifest.csv missing defense columns" >&2; exit 1; }
    rm -rf "$adv_out"

    echo "== smoke: wire fast lane (0x20 echo, EDNS0, batched loopback) =="
    # The fast-lane integration suite: casing echo + wire-cache hits over
    # real UDP, OPT-bearing queries answered with the OPT stripped, and
    # the batched worker loop driven through LoopbackHub under fault
    # injection (blackout answered from compiled bytes).
    cargo test --release -q --offline -p dns-netd --test wire_fast_lane

    echo "== smoke: serve-stale head-to-head on a tiny trace =="
    # The stale binary at reduced scale: blackout grid, overhead replay
    # and the water-torture cross-check, plus the fresh JSON re-passing
    # the same gates as the tracked baseline (stale fires only when
    # enabled, and cuts the blackout failure fraction).
    stale_out=$(mktemp -d)
    DNS_REPRO_SCALE=0.05 DNS_REPRO_OUT="$stale_out" \
        DNS_BENCH_OUT="$stale_out/stale.json" \
        cargo run --release -p dns-bench --bin stale --offline
    for f in stale_failure stale_overhead stale_adversarial run_manifest; do
        test -s "$stale_out/$f.csv" || { echo "missing $stale_out/$f.csv" >&2; exit 1; }
    done
    # The manifest rows carry the serve-stale counters.
    head -1 "$stale_out/run_manifest.csv" | grep -q "stale_served" \
        || { echo "run_manifest.csv missing stale columns" >&2; exit 1; }
    awk -F': *' '/"vanilla_stale_served"/ { v = $2 + 0 }
        END { if (v != 0) {
            print "stale.json: stale counters fired in a vanilla scheme" > "/dev/stderr"; exit 1 } }' \
        "$stale_out/stale.json"
    awk -F': *' '/"stale_served"/ && !/vanilla/ { v = $2 + 0 }
        END { if (v <= 0) {
            print "stale.json: serve-stale scheme never served stale" > "/dev/stderr"; exit 1 } }' \
        "$stale_out/stale.json"
    awk -F': *' '/"vanilla_sr_failed_pct"/ { van = $2 + 0 }
        /"stale_sr_failed_pct"/ { st = $2 + 0 }
        END { if (!(st < van)) {
            print "stale.json: serve-stale did not cut blackout failures" > "/dev/stderr"; exit 1 } }' \
        "$stale_out/stale.json"
    rm -rf "$stale_out"

    echo "== smoke: serve-stale suites (props, golden transcript, live) =="
    # Property laws (window boundary, TTL clamp, stale-off step-identity),
    # the pinned serve-stale trace transcript, and the live suite: wire
    # fast lane vs stale slow path byte-equivalence plus the loopback
    # water-torture flood with CHAOS/Prometheus reconciliation.
    cargo test --release -q --offline -p dns-resolver --test stale_props
    cargo test --release -q --offline --test stale_golden
    cargo test --release -q --offline -p dns-netd --test stale_live

    echo "smoke OK"
}

if [ "${1:-}" = "smoke" ]; then
    smoke
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== clippy lock hygiene (resolver concurrency core) =="
# The shard/inflight code must never hold a lock across an await-like
# suspension or wrap lock-free-able state in a mutex; gate the resolver
# crate on clippy's lock-hygiene lints specifically.
cargo clippy -p dns-resolver --all-targets --offline -- -D warnings \
    -D clippy::await_holding_lock \
    -D clippy::mutex_atomic

echo "== cargo test =="
cargo test -q --offline

smoke
