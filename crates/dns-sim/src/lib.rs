//! Trace-driven DNS simulator with DDoS attack injection.
//!
//! This crate glues the workspace together into the paper's experimental
//! apparatus:
//!
//! * [`ServerFarm`] — every authoritative server of a generated
//!   [`Universe`](dns_trace::Universe), sharing zone data behind `Arc`,
//! * [`AttackScenario`] / [`CompiledAttack`] — black-outs of zone sets over
//!   time intervals (the headline scenario targets the root and all TLDs
//!   at the start of day 7),
//! * [`SimNet`] — the [`Upstream`](dns_resolver::Upstream) implementation
//!   that routes resolver queries to the farm, subject to the attack,
//! * [`Simulation`] — replays a [`Trace`](dns_trace::Trace) through a
//!   [`CachingServer`](dns_resolver::CachingServer), interleaving renewal
//!   events, occupancy sampling and metric snapshots,
//! * [`experiment`] — schemes, outcome types and the paper's constants,
//! * [`sweep`] — the parallel experiment engine: an [`ExperimentSpec`]
//!   fans (trace × scheme) run units over scoped worker threads, shares
//!   one farm per long-TTL setting via `Arc`, collects results in stable
//!   spec order (so output is thread-count independent) and records a
//!   [`RunManifest`] of per-unit accounting.
//!
//! # Example
//!
//! ```rust
//! use dns_sim::{AttackScenario, SimConfig, Simulation};
//! use dns_trace::{TraceSpec, UniverseSpec};
//! use dns_core::{SimDuration, SimTime};
//! use dns_resolver::ResolverConfig;
//!
//! let universe = UniverseSpec::small().build(7);
//! let trace = TraceSpec::demo().scaled(0.05).generate(&universe, 7);
//!
//! let mut sim = Simulation::new(&universe, trace, SimConfig::new(ResolverConfig::vanilla()));
//! sim.set_attack(
//!     AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(6))
//!         .compile(&universe),
//! );
//! sim.run_to_end();
//! assert!(sim.metrics().queries_in > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod attack;
pub mod damage;
mod driver;
pub mod experiment;
mod farm;
pub mod gap;
mod network;
mod rss;
pub mod sweep;

pub use adversary::{
    AdversaryKind, AdversarySpec, CompiledAdversary, MergedStream, ADVERSARY_CLIENT,
};
pub use attack::{AttackScenario, Blackout, CompiledAttack};
pub use driver::{scheme_label, AdversaryStats, SimConfig, SimReport, Simulation};
pub use farm::ServerFarm;
pub use network::{NetworkStats, SimNet};
pub use rss::peak_rss_kb;
pub use sweep::{ExperimentSpec, GapOutcome, RunManifest, StreamSource, SweepOutcome, UnitRecord};
