//! Property-based tests for cache semantics and policy arithmetic.

use dns_core::{Name, RData, Record, RrSet, SimTime, Ttl};
use dns_resolver::{
    Credibility, InfraCache, InfraSource, NegativeKind, RecordCache, RenewalPolicy,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ttl() -> impl Strategy<Value = Ttl> {
    (1u32..=7 * 86_400).prop_map(Ttl::from_secs)
}

fn arb_credibility() -> impl Strategy<Value = Credibility> {
    prop_oneof![
        Just(Credibility::Additional),
        Just(Credibility::NonAuthAuthority),
        Just(Credibility::AuthAuthority),
        Just(Credibility::AuthAnswer),
    ]
}

fn arb_policy() -> impl Strategy<Value = RenewalPolicy> {
    prop_oneof![
        (1u32..=10).prop_map(RenewalPolicy::lru),
        (1u32..=10).prop_map(RenewalPolicy::lfu),
        (1u32..=10).prop_map(RenewalPolicy::adaptive_lru),
        (1u32..=10).prop_map(RenewalPolicy::adaptive_lfu),
    ]
}

fn owner(i: u8) -> Name {
    format!("h{i}.zone.test").parse().unwrap()
}

fn a_set(i: u8, ttl: Ttl, last: u8) -> RrSet {
    let rec = Record::new(owner(i), ttl, RData::A(Ipv4Addr::new(192, 0, 2, last)));
    RrSet::from_records(&[rec]).unwrap()
}

proptest! {
    /// A cached entry is visible strictly before its expiry and invisible
    /// at or after it.
    #[test]
    fn record_cache_expiry_boundary(ttl in arb_ttl(), at in 0u64..1_000_000) {
        let mut cache = RecordCache::new();
        let now = SimTime::from_secs(at);
        cache.insert(a_set(1, ttl, 1), now, Credibility::AuthAnswer);
        let last_fresh = SimTime::from_secs(at + u64::from(ttl.as_secs()) - 1);
        let expired = SimTime::from_secs(at + u64::from(ttl.as_secs()));
        prop_assert!(cache.get(&owner(1), dns_core::RecordType::A, last_fresh).is_some());
        prop_assert!(cache.get(&owner(1), dns_core::RecordType::A, expired).is_none());
    }

    /// After any sequence of inserts, the surviving entry is the one from
    /// the most recent insert whose credibility was not lower than the
    /// then-current fresh entry.
    #[test]
    fn record_cache_credibility_order(
        inserts in proptest::collection::vec((arb_credibility(), 1u8..=200), 1..20)
    ) {
        let mut cache = RecordCache::new();
        let ttl = Ttl::from_days(7); // never expires during the test
        let mut expected: Option<(Credibility, u8)> = None;
        for (i, (cred, payload)) in inserts.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            let stored = cache.insert(a_set(1, ttl, *payload), now, *cred);
            let should_store = match expected {
                Some((prev_cred, _)) => *cred >= prev_cred,
                None => true,
            };
            prop_assert_eq!(stored, should_store);
            if should_store {
                expected = Some((*cred, *payload));
            }
        }
        let (_, payload) = expected.unwrap();
        let entry = cache
            .get(&owner(1), dns_core::RecordType::A, SimTime::from_secs(inserts.len() as u64))
            .unwrap();
        prop_assert_eq!(entry.set.rdatas(), &[RData::A(Ipv4Addr::new(192, 0, 2, payload))]);
    }

    /// LRU always sets exactly its credit; LFU is capped and monotone in
    /// the current credit.
    #[test]
    fn policy_credit_laws(policy in arb_policy(), current in 0u32..100, ttl in arb_ttl()) {
        let next = policy.credit_on_use(current, ttl);
        match policy {
            RenewalPolicy::Lru { credit } => prop_assert_eq!(next, credit),
            RenewalPolicy::Lfu { max_credit, credit } => {
                prop_assert!(next <= max_credit);
                prop_assert!(next >= current.min(max_credit));
                prop_assert!(next >= credit.min(max_credit));
            }
            RenewalPolicy::AdaptiveLru { days } => {
                // Extra time ≈ days: credit × TTL within one TTL of target.
                let extra = u64::from(next) * u64::from(ttl.as_secs());
                let target = u64::from(days) * 86_400;
                prop_assert!(extra >= target, "extra {extra} target {target}");
                prop_assert!(extra < target + u64::from(ttl.as_secs()));
            }
            RenewalPolicy::AdaptiveLfu { .. } => {
                prop_assert!(next >= 1); // always at least one renewal
            }
        }
    }

    /// Adaptive credits shrink as TTLs grow (same extra wall-clock time).
    #[test]
    fn adaptive_credit_antitone_in_ttl(days in 1u32..10, a in 60u32..86_400, b in 60u32..86_400) {
        let policy = RenewalPolicy::adaptive_lru(days);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            policy.credit_on_use(0, Ttl::from_secs(lo))
                >= policy.credit_on_use(0, Ttl::from_secs(hi))
        );
    }

    /// The infra cache's renewal schedule only fires entries that are due
    /// and funded, in non-decreasing time order.
    #[test]
    fn infra_schedule_fires_in_order(
        zone_ttls in proptest::collection::vec((1u8..=50, 60u32..86_400), 1..30)
    ) {
        let mut cache = InfraCache::new();
        cache.install_root_hints(&[("a.root".parse().unwrap(), Ipv4Addr::new(198, 41, 0, 4))]);
        let policy = RenewalPolicy::lru(1);
        for (i, ttl) in &zone_ttls {
            let zone: Name = format!("z{i}.test").parse().unwrap();
            cache.install(
                zone.clone(),
                vec![format!("ns.z{i}.test").parse().unwrap()],
                vec![(format!("ns.z{i}.test").parse().unwrap(), Ipv4Addr::new(10, 0, 0, *i))],
                Ttl::from_secs(*ttl),
                SimTime::ZERO,
                InfraSource::Child,
                false,
            );
            cache.record_use(&zone, SimTime::from_secs(1), Some(&policy));
        }
        let mut last = SimTime::ZERO;
        let mut fired = std::collections::HashSet::new();
        while let Some((due, zone)) = cache.next_renewal_due(SimTime::from_days(2)) {
            prop_assert!(due >= last, "schedule must be ordered");
            last = due;
            prop_assert!(fired.insert(zone.clone()), "each zone fires once (credit 1)");
            let entry = cache.consume_renewal_credit(&zone);
            prop_assert!(entry.is_some());
        }
        // Every distinct installed zone fired exactly once.
        let distinct: std::collections::HashSet<u8> =
            zone_ttls.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(fired.len(), distinct.len());
    }

    /// The negative-cache budget is a hard invariant: after any insert
    /// sequence, entry and byte budgets hold, the byte ledger matches the
    /// live entry set, and eviction counters are reported truthfully.
    #[test]
    fn negative_budget_never_exceeded(
        entry_budget in 1usize..24,
        inserts in proptest::collection::vec((1u8..=200, 1u32..=3_600, 0u64..600), 1..120)
    ) {
        let mut cache = RecordCache::new();
        cache.set_negative_budget(Some(entry_budget), None);
        let mut now = 0u64;
        for (i, ttl, dt) in inserts {
            now += dt;
            let out = cache.insert_negative(
                owner(i),
                dns_core::RecordType::A,
                NegativeKind::NxDomain,
                Ttl::from_secs(ttl),
                SimTime::from_secs(now),
            );
            prop_assert!(cache.negative_len() <= entry_budget);
            // A budget of at least one entry always keeps the newest
            // insert: pressure evicts soonest-expiring entries, and the
            // new entry only goes when nothing else is left to evict.
            prop_assert!(out.stored || out.evicted_pressure > 0);
            prop_assert_eq!(
                out.stored,
                cache
                    .get_negative(&owner(i), dns_core::RecordType::A, SimTime::from_secs(now))
                    .is_some()
            );
        }
    }

    /// Negative-cache pressure never evicts positive records: a flood of
    /// fresh NXDOMAIN entries under a tiny budget leaves every unexpired
    /// positive entry untouched.
    #[test]
    fn negative_pressure_never_evicts_unexpired_positives(
        entry_budget in 1usize..8,
        positives in proptest::collection::vec(1u8..=40, 1..20),
        flood in proptest::collection::vec(100u8..=250, 1..80)
    ) {
        let mut cache = RecordCache::new();
        cache.set_negative_budget(Some(entry_budget), None);
        let ttl = Ttl::from_days(7);
        for &i in &positives {
            cache.insert(a_set(i, ttl, i), SimTime::ZERO, Credibility::AuthAnswer);
        }
        let positive_len = cache.len();
        for (t, &i) in flood.iter().enumerate() {
            cache.insert_negative(
                owner(i),
                dns_core::RecordType::Aaaa,
                NegativeKind::NxDomain,
                Ttl::from_secs(300),
                SimTime::from_secs(t as u64),
            );
        }
        prop_assert_eq!(cache.len(), positive_len);
        let now = SimTime::from_secs(flood.len() as u64);
        for &i in &positives {
            prop_assert!(
                cache.get(&owner(i), dns_core::RecordType::A, now).is_some(),
                "positive entry {} lost under negative pressure", i
            );
        }
    }

    /// Gap samples are emitted at most once per expiry and always
    /// non-negative.
    #[test]
    fn gap_samples_once_per_expiry(uses in proptest::collection::vec(0u64..200_000, 1..20)) {
        let mut cache = InfraCache::new();
        let zone: Name = "z.test".parse().unwrap();
        cache.install(
            zone.clone(),
            vec!["ns.z.test".parse().unwrap()],
            vec![("ns.z.test".parse().unwrap(), Ipv4Addr::new(10, 0, 0, 1))],
            Ttl::from_secs(3_600),
            SimTime::ZERO,
            InfraSource::Child,
            false,
        );
        let mut sorted = uses.clone();
        sorted.sort_unstable();
        for t in sorted {
            cache.record_use(&zone, SimTime::from_secs(t), None);
        }
        let samples = cache.take_gap_samples();
        prop_assert!(samples.len() <= 1);
    }
}
