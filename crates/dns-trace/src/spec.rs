//! Preset trace specifications mirroring Table 1.

use crate::{Trace, Universe, WorkloadBuilder};
use std::fmt;

/// A named trace preset. The six presets `TRC1`–`TRC6` mirror the shape of
/// the paper's Table 1: five one-week university traces of widely varying
/// size plus one one-month trace, with client populations spanning two
/// orders of magnitude.
///
/// Absolute sizes are scaled to keep a full experiment sweep tractable on
/// one machine while preserving the ratios that matter (queries per client
/// per day, trace-to-trace spread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Trace label.
    pub name: &'static str,
    /// Days of traffic.
    pub days: u64,
    /// Client population.
    pub clients: u32,
    /// Total stub-resolver queries.
    pub total_queries: u64,
}

impl TraceSpec {
    /// `TRC1` — mid-sized university, one week.
    pub const TRC1: TraceSpec = TraceSpec {
        name: "TRC1",
        days: 7,
        clients: 120,
        total_queries: 150_000,
    };
    /// `TRC2` — large client population, one week.
    pub const TRC2: TraceSpec = TraceSpec {
        name: "TRC2",
        days: 7,
        clients: 1_300,
        total_queries: 350_000,
    };
    /// `TRC3` — small campus, one week.
    pub const TRC3: TraceSpec = TraceSpec {
        name: "TRC3",
        days: 7,
        clients: 200,
        total_queries: 110_000,
    };
    /// `TRC4` — the heaviest one-week load.
    pub const TRC4: TraceSpec = TraceSpec {
        name: "TRC4",
        days: 7,
        clients: 2_900,
        total_queries: 500_000,
    };
    /// `TRC5` — mid-sized, one week.
    pub const TRC5: TraceSpec = TraceSpec {
        name: "TRC5",
        days: 7,
        clients: 700,
        total_queries: 220_000,
    };
    /// `TRC6` — the one-month trace used for the memory-overhead series
    /// (Figure 12).
    pub const TRC6: TraceSpec = TraceSpec {
        name: "TRC6",
        days: 30,
        clients: 400,
        total_queries: 600_000,
    };

    /// The five one-week traces evaluated in Figures 4–11.
    pub fn weekly() -> [TraceSpec; 5] {
        [
            TraceSpec::TRC1,
            TraceSpec::TRC2,
            TraceSpec::TRC3,
            TraceSpec::TRC4,
            TraceSpec::TRC5,
        ]
    }

    /// All six traces (Table 1).
    pub fn all() -> [TraceSpec; 6] {
        [
            TraceSpec::TRC1,
            TraceSpec::TRC2,
            TraceSpec::TRC3,
            TraceSpec::TRC4,
            TraceSpec::TRC5,
            TraceSpec::TRC6,
        ]
    }

    /// A tiny spec for documentation examples and smoke tests.
    pub fn demo() -> TraceSpec {
        TraceSpec {
            name: "DEMO",
            days: 7,
            clients: 10,
            total_queries: 20_000,
        }
    }

    /// A scaled copy: all volumes multiplied by `factor` (clients and
    /// queries), used for quick experiment previews.
    pub fn scaled(&self, factor: f64) -> TraceSpec {
        TraceSpec {
            name: self.name,
            days: self.days,
            clients: ((self.clients as f64 * factor).ceil() as u32).max(1),
            total_queries: ((self.total_queries as f64 * factor).ceil() as u64).max(1),
        }
    }

    /// The workload builder this spec describes — the entry point for
    /// streaming replay ([`WorkloadBuilder::stream`]) and cursor resume
    /// ([`WorkloadBuilder::resume`]).
    pub fn workload(&self) -> WorkloadBuilder {
        WorkloadBuilder::new(self.name, self.days, self.clients, self.total_queries)
    }

    /// Generates the trace over `universe` with the given seed.
    pub fn generate(&self, universe: &Universe, seed: u64) -> Trace {
        self.workload().generate(universe, seed)
    }
}

impl fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}d, {} clients, {} queries)",
            self.name, self.days, self.clients, self.total_queries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseSpec;

    #[test]
    fn presets_cover_the_papers_shape() {
        let all = TraceSpec::all();
        assert_eq!(all.len(), 6);
        assert!(all.iter().take(5).all(|t| t.days == 7));
        assert_eq!(all[5].days, 30);
        // Client spread of more than an order of magnitude.
        let min = all.iter().map(|t| t.clients).min().unwrap();
        let max = all.iter().map(|t| t.clients).max().unwrap();
        assert!(max / min >= 10);
    }

    #[test]
    fn scaled_reduces_volume() {
        let s = TraceSpec::TRC4.scaled(0.1);
        assert_eq!(s.clients, 290);
        assert_eq!(s.total_queries, 50_000);
        assert_eq!(s.days, 7);
    }

    #[test]
    fn generate_produces_matching_trace() {
        let u = UniverseSpec::small().build(7);
        let t = TraceSpec::demo().scaled(0.1).generate(&u, 5);
        assert_eq!(t.days, 7);
        assert_eq!(t.queries.len(), 2_000);
        assert!(t.is_sorted());
    }
}
