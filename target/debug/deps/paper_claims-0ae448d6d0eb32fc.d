/root/repo/target/debug/deps/paper_claims-0ae448d6d0eb32fc.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-0ae448d6d0eb32fc: tests/paper_claims.rs

tests/paper_claims.rs:
