//! Query traces and their Table-1 statistics.

use dns_core::{Name, Question, SimTime};
use std::collections::HashSet;
use std::fmt;

/// One stub-resolver query as captured in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEvent {
    /// When the stub resolver asked.
    pub at: SimTime,
    /// Client (stub resolver) identifier.
    pub client: u32,
    /// The question asked.
    pub question: Question,
}

/// A multi-day query workload for one caching server.
///
/// Queries are ordered by timestamp; the simulator replays them in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace label (`TRC1` … `TRC6`).
    pub name: String,
    /// Trace length in days.
    pub days: u64,
    /// Number of distinct clients behind the caching server.
    pub clients: u32,
    /// The query stream, sorted by `at`.
    pub queries: Vec<QueryEvent>,
}

impl Trace {
    /// Computes the Table-1 statistics for this trace.
    ///
    /// The owning zone of each queried name is taken to be its parent
    /// domain, which holds for every name the generator emits (all data
    /// names sit directly below their zone apex, and apex MX queries map
    /// to the apex itself).
    pub fn stats(&self) -> TraceStats {
        let mut names: HashSet<&Name> = HashSet::new();
        let mut zones: HashSet<Name> = HashSet::new();
        let mut clients: HashSet<u32> = HashSet::new();
        for q in &self.queries {
            clients.insert(q.client);
            if names.insert(&q.question.name) {
                let zone = q.question.name.parent().unwrap_or_else(Name::root);
                zones.insert(zone);
            }
        }
        TraceStats {
            name: self.name.clone(),
            days: self.days,
            clients: clients.len(),
            requests_in: self.queries.len() as u64,
            distinct_names: names.len(),
            distinct_zones: zones.len(),
        }
    }

    /// Queries whose timestamp lies in `[from, to)`.
    pub fn queries_between(&self, from: SimTime, to: SimTime) -> &[QueryEvent] {
        let start = self.queries.partition_point(|q| q.at < from);
        let end = self.queries.partition_point(|q| q.at < to);
        &self.queries[start..end]
    }

    /// Whether timestamps are non-decreasing (replay invariant).
    pub fn is_sorted(&self) -> bool {
        self.queries.windows(2).all(|w| w[0].at <= w[1].at)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} days, {} clients, {} queries)",
            self.name,
            self.days,
            self.clients,
            self.queries.len()
        )
    }
}

/// The row Table 1 reports for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Trace label.
    pub name: String,
    /// Duration in days.
    pub days: u64,
    /// Distinct clients that actually appear in the trace.
    pub clients: usize,
    /// Stub-resolver queries ("requests in").
    pub requests_in: u64,
    /// Distinct names queried.
    pub distinct_names: usize,
    /// Distinct zones queried.
    pub distinct_zones: usize,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}d, {} clients, {} requests, {} names, {} zones",
            self.name,
            self.days,
            self.clients,
            self.requests_in,
            self.distinct_names,
            self.distinct_zones
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::RecordType;

    fn ev(at_secs: u64, client: u32, name: &str) -> QueryEvent {
        QueryEvent {
            at: SimTime::from_secs(at_secs),
            client,
            question: Question::new(name.parse().unwrap(), RecordType::A),
        }
    }

    fn sample() -> Trace {
        Trace {
            name: "T".into(),
            days: 1,
            clients: 3,
            queries: vec![
                ev(10, 0, "www.a.com"),
                ev(20, 1, "www.a.com"),
                ev(30, 0, "www.b.com"),
                ev(40, 2, "host1.a.com"),
            ],
        }
    }

    #[test]
    fn stats_count_distincts() {
        let s = sample().stats();
        assert_eq!(s.requests_in, 4);
        assert_eq!(s.clients, 3);
        assert_eq!(s.distinct_names, 3);
        assert_eq!(s.distinct_zones, 2); // a.com, b.com
    }

    #[test]
    fn queries_between_is_half_open() {
        let t = sample();
        let window = t.queries_between(SimTime::from_secs(20), SimTime::from_secs(40));
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].at, SimTime::from_secs(20));
    }

    #[test]
    fn sortedness_check() {
        let mut t = sample();
        assert!(t.is_sorted());
        t.queries.swap(0, 3);
        assert!(!t.is_sorted());
    }

    #[test]
    fn empty_window_is_empty() {
        let t = sample();
        assert!(t
            .queries_between(SimTime::from_secs(100), SimTime::from_secs(200))
            .is_empty());
    }
}
