//! The resolver's view of the network.

use dns_core::{Message, SimTime};
use std::net::Ipv4Addr;

/// Transport abstraction between the caching server and authoritative
/// servers.
///
/// The resolver addresses servers by IPv4 address only; the implementation
/// decides what (if anything) answers. The simulator implements this over
/// its virtual network and attack schedule; a production binding would
/// implement it over UDP sockets.
///
/// Returning `None` models an unanswered query (server dead, blacked out by
/// an attack, or packet lost) — the resolver counts it as a failed outgoing
/// query and tries the next server.
pub trait Upstream {
    /// Sends `query` to `server` at virtual time `now`; `None` on timeout.
    fn query(&mut self, server: Ipv4Addr, query: &Message, now: SimTime) -> Option<Message>;

    /// Pauses for `millis` before the caller's next retry (backoff).
    ///
    /// The default does nothing, which is correct for virtual-time
    /// implementations — the simulator owns the clock and a backoff has no
    /// observable effect there. Real-socket implementations sleep, so the
    /// retry policy actually paces traffic on the wire. Keeping the wait
    /// inside the trait lets [`crate::CachingServer`] run one retry loop
    /// for both worlds.
    fn wait(&mut self, _millis: u64) {}
}

impl<U: Upstream + ?Sized> Upstream for &mut U {
    fn query(&mut self, server: Ipv4Addr, query: &Message, now: SimTime) -> Option<Message> {
        (**self).query(server, query, now)
    }

    fn wait(&mut self, millis: u64) {
        (**self).wait(millis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Question, RecordType};

    struct Echo;
    impl Upstream for Echo {
        fn query(&mut self, _server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
            Some(Message::response_to(query))
        }
    }

    #[test]
    fn mut_ref_forwarding() {
        fn takes_upstream<U: Upstream>(mut u: U) -> bool {
            let q = Message::query(1, Question::new("a.b".parse().unwrap(), RecordType::A));
            u.query(Ipv4Addr::LOCALHOST, &q, SimTime::ZERO).is_some()
        }
        let mut echo = Echo;
        assert!(takes_upstream(&mut echo));
        assert!(takes_upstream(echo));
    }
}
