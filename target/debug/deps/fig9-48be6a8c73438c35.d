/root/repo/target/debug/deps/fig9-48be6a8c73438c35.d: crates/dns-bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-48be6a8c73438c35.rmeta: crates/dns-bench/src/bin/fig9.rs Cargo.toml

crates/dns-bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
