/root/repo/target/debug/deps/fig5-3f90fd3e7b880b37.d: crates/dns-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-3f90fd3e7b880b37: crates/dns-bench/src/bin/fig5.rs

crates/dns-bench/src/bin/fig5.rs:
