//! The parallel experiment engine behind every figure and table.
//!
//! An [`ExperimentSpec`] declares a sweep — the cartesian product of
//! traces and [`Scheme`]s, each run through the paper's attack
//! methodology and/or a full-trace overhead measurement — and
//! [`ExperimentSpec::run`] executes it:
//!
//! * **Shared inputs.** One immutable [`Universe`] reference and one
//!   pre-built [`ServerFarm`] per distinct long-TTL setting are shared by
//!   every run via [`Arc`]; nothing is cloned or rebuilt per run.
//! * **Scoped workers.** Run units execute on `std::thread::scope`
//!   worker threads. `DNS_SIM_THREADS` pins the worker count
//!   (`DNS_SIM_THREADS=1` forces the sequential path); unset, the engine
//!   uses every available core.
//! * **Stable order.** Results are collected into slots indexed by spec
//!   order, so the outcome vectors — and therefore every CSV derived
//!   from them — are identical no matter how many threads ran.
//! * **Run manifest.** Each sweep records per-unit wall clock, queries
//!   replayed, events processed, cache-occupancy peak, worker id and
//!   seed; see [`RunManifest`].
//!
//! ```rust
//! use dns_sim::sweep::ExperimentSpec;
//! use dns_sim::experiment::{paper_durations, Scheme, ATTACK_START_DAY};
//! use dns_core::SimTime;
//! use dns_trace::{TraceSpec, UniverseSpec};
//!
//! let universe = UniverseSpec::small().build(7);
//! let trace = TraceSpec::demo().scaled(0.05).generate(&universe, 7);
//! let outcome = ExperimentSpec::new(&universe)
//!     .trace(trace)
//!     .scheme(Scheme::vanilla())
//!     .attack(SimTime::from_days(ATTACK_START_DAY), &paper_durations())
//!     .run();
//! assert_eq!(outcome.attacks.len(), 4);
//! assert_eq!(outcome.manifest.units.len(), 1);
//! ```

use crate::adversary::{merge_into_tail, AdversarySpec, MergedStream};
use crate::experiment::{AdversarialOutcome, AttackOutcome, OverheadOutcome, Scheme};
use crate::{AttackScenario, ServerFarm, Simulation};
use dns_core::{SimDuration, SimTime, Ttl};
use dns_obs::LogHistogram;
use dns_resolver::GapSample;
use dns_stats::{manifest_table, ManifestRow, Table};
use dns_trace::{Trace, TraceSpec, Universe, UniverseTargets};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable pinning the worker-thread count (`1` forces the
/// sequential path; unset means one worker per available core).
pub const THREADS_ENV: &str = "DNS_SIM_THREADS";

/// A declarative sweep over traces × schemes, sharing one universe and
/// one farm per long-TTL setting across all runs.
pub struct ExperimentSpec<'a> {
    universe: &'a Universe,
    traces: Vec<Arc<Trace>>,
    stream_traces: Vec<StreamSource>,
    schemes: Vec<Scheme>,
    attack: Option<(SimTime, Vec<SimDuration>)>,
    adversaries: Vec<(AdversarySpec, SimTime, SimDuration)>,
    overhead: Option<SimDuration>,
    gaps: bool,
    farms: HashMap<Option<Ttl>, Arc<ServerFarm>>,
    threads: Option<usize>,
    seed: u64,
}

impl<'a> ExperimentSpec<'a> {
    /// Starts a spec over `universe` with no traces, schemes or
    /// measurements yet.
    pub fn new(universe: &'a Universe) -> Self {
        ExperimentSpec {
            universe,
            traces: Vec::new(),
            stream_traces: Vec::new(),
            schemes: Vec::new(),
            attack: None,
            adversaries: Vec::new(),
            overhead: None,
            gaps: false,
            farms: HashMap::new(),
            threads: None,
            seed: 0,
        }
    }

    /// Adds one trace (owned traces and `Arc<Trace>` both work; sweeps
    /// never clone the underlying queries).
    pub fn trace(mut self, trace: impl Into<Arc<Trace>>) -> Self {
        self.traces.push(trace.into());
        self
    }

    /// Adds many traces.
    pub fn traces<T: Into<Arc<Trace>>>(mut self, traces: impl IntoIterator<Item = T>) -> Self {
        self.traces.extend(traces.into_iter().map(Into::into));
        self
    }

    /// Adds a streamed trace: units replay it straight from the seeded
    /// generator ([`dns_trace::TraceStream`]) with per-unit streaming
    /// and bounded (one-event) lookahead — the trace is never
    /// materialized, so replay memory is `O(zones)` at any query count.
    /// Outcomes are byte-identical to replaying
    /// `spec.generate(universe, seed)`. Streamed traces order after all
    /// materialized traces in spec order.
    pub fn stream_trace(mut self, spec: TraceSpec, seed: u64) -> Self {
        self.stream_traces.push(StreamSource { spec, seed });
        self
    }

    /// Adds one scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds many schemes.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = Scheme>) -> Self {
        self.schemes.extend(schemes);
        self
    }

    /// Enables the paper's §5.1 attack measurement: warm to
    /// `attack_start`, then black out the root + all TLDs once per
    /// duration, measuring failure ratios inside each window. One
    /// warm-up per (trace, scheme) is shared by all durations.
    pub fn attack(mut self, attack_start: SimTime, durations: &[SimDuration]) -> Self {
        self.attack = Some((attack_start, durations.to_vec()));
        self
    }

    /// Adds an adversarial measurement: warm to `start`, then replay the
    /// window `[start, start + duration)` twice from the warmed state —
    /// once with legitimate traffic only (baseline) and once with
    /// `adversary`'s flood merged in — producing one
    /// [`AdversarialOutcome`] per (trace, scheme). Streamed traces stay
    /// streamed: the flood is composed through
    /// [`MergedStream`](crate::adversary::MergedStream) with bounded
    /// lookahead. May be called repeatedly to sweep several adversaries.
    pub fn adversarial(
        mut self,
        adversary: AdversarySpec,
        start: SimTime,
        duration: SimDuration,
    ) -> Self {
        self.adversaries.push((adversary, start, duration));
        self
    }

    /// Enables the no-attack overhead measurement (Table 2 / Figure 12),
    /// sampling cache occupancy every `sample_every`.
    pub fn overhead(mut self, sample_every: SimDuration) -> Self {
        self.overhead = Some(sample_every);
        self
    }

    /// Enables the Figure-3 gap measurement: a full no-attack replay
    /// collecting the gap between each infrastructure record's expiry
    /// and the next query to its zone.
    pub fn gaps(mut self) -> Self {
        self.gaps = true;
        self
    }

    /// Seeds the farm cache with a pre-built farm for `long_ttl`.
    /// Schemes whose long-TTL setting has no entry get a farm built (and
    /// shared) on demand at [`ExperimentSpec::run`].
    pub fn farm(mut self, long_ttl: Option<Ttl>, farm: Arc<ServerFarm>) -> Self {
        self.farms.insert(long_ttl, farm);
        self
    }

    /// Pins the worker-thread count, overriding `DNS_SIM_THREADS`.
    /// `1` forces the sequential path.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the seed recorded in the manifest and used for any
    /// randomised network behaviour (reserved; replay itself is
    /// deterministic).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn resolved_threads_hint(&self) -> usize {
        let configured = self.threads.or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        });
        configured
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }

    /// Executes the sweep and collects outcomes in stable spec order
    /// (trace-major, then scheme, then attack duration), independent of
    /// the worker count.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no traces, no schemes, or neither an
    /// attack nor an overhead measurement — an empty sweep is a bug in
    /// the caller, not a valid experiment.
    pub fn run(self) -> SweepOutcome {
        assert!(
            !self.traces.is_empty() || !self.stream_traces.is_empty(),
            "ExperimentSpec needs at least one trace"
        );
        assert!(
            !self.schemes.is_empty(),
            "ExperimentSpec needs at least one scheme"
        );
        assert!(
            self.attack.is_some()
                || self.overhead.is_some()
                || self.gaps
                || !self.adversaries.is_empty(),
            "ExperimentSpec needs .attack(..), .adversarial(..), .overhead(..) and/or .gaps()"
        );

        let threads_hint = self.resolved_threads_hint();

        // Build (or adopt) one farm per distinct long-TTL setting.
        let mut farms = self.farms;
        for scheme in &self.schemes {
            farms
                .entry(scheme.long_ttl)
                .or_insert_with(|| Arc::new(ServerFarm::build(self.universe, scheme.long_ttl)));
        }

        // Unit list in spec order (materialized traces first, then
        // streamed); each unit is one (trace, scheme, kind) cell and
        // owns only Arcs + Copy data, so units move into worker threads
        // freely.
        let sources: Vec<TraceRef> = self
            .traces
            .iter()
            .map(|t| TraceRef::Mat(Arc::clone(t)))
            .chain(self.stream_traces.iter().cloned().map(TraceRef::Stream))
            .collect();
        let mut units: Vec<Unit> = Vec::new();
        for source in &sources {
            for scheme in &self.schemes {
                let farm = Arc::clone(&farms[&scheme.long_ttl]);
                if let Some((start, durations)) = &self.attack {
                    units.push(Unit {
                        source: source.clone(),
                        scheme: *scheme,
                        farm: Arc::clone(&farm),
                        kind: UnitKind::Attack {
                            start: *start,
                            durations: durations.clone(),
                        },
                    });
                }
                for (adversary, start, duration) in &self.adversaries {
                    units.push(Unit {
                        source: source.clone(),
                        scheme: *scheme,
                        farm: Arc::clone(&farm),
                        kind: UnitKind::Adversarial {
                            adversary: *adversary,
                            start: *start,
                            duration: *duration,
                        },
                    });
                }
                if let Some(sample_every) = self.overhead {
                    units.push(Unit {
                        source: source.clone(),
                        scheme: *scheme,
                        farm: Arc::clone(&farm),
                        kind: UnitKind::Overhead { sample_every },
                    });
                }
                if self.gaps {
                    units.push(Unit {
                        source: source.clone(),
                        scheme: *scheme,
                        farm,
                        kind: UnitKind::Gaps,
                    });
                }
            }
        }

        let threads = threads_hint.min(units.len().max(1));
        let universe = self.universe;
        let seed = self.seed;
        let started = Instant::now();

        let mut results: Vec<Option<UnitResult>> = if threads == 1 {
            units
                .iter()
                .map(|u| Some(run_unit(u, universe, seed, 0)))
                .collect()
        } else {
            // Work-stealing by atomic index: workers pull the next unit
            // and write its result into the slot matching its spec
            // position, so assembly below never depends on timing.
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<UnitResult>>> =
                units.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for worker in 0..threads {
                    let next = &next;
                    let slots = &slots;
                    let units = &units;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units.get(i) else { break };
                        let result = run_unit(unit, universe, seed, worker);
                        *slots[i].lock().unwrap() = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap())
                .collect()
        };

        let total_wall = started.elapsed();
        let mut attacks = Vec::new();
        let mut adversarial = Vec::new();
        let mut overheads = Vec::new();
        let mut gaps = Vec::new();
        let mut records = Vec::with_capacity(results.len());
        for (unit, result) in results.iter_mut().enumerate() {
            let mut result = result.take().expect("every unit slot is filled");
            result.record.unit = unit;
            attacks.append(&mut result.attacks);
            adversarial.extend(result.adversarial.take());
            overheads.extend(result.overhead.take());
            gaps.extend(result.gaps.take());
            records.push(result.record);
        }
        SweepOutcome {
            attacks,
            adversarial,
            overheads,
            gaps,
            manifest: RunManifest {
                threads,
                total_wall,
                units: records,
            },
        }
    }
}

/// Everything a sweep produces: outcome vectors in stable spec order
/// plus the run manifest.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One entry per (trace, scheme, duration), trace-major — empty
    /// unless [`ExperimentSpec::attack`] was set.
    pub attacks: Vec<AttackOutcome>,
    /// One entry per (trace, scheme, adversary), trace-major — empty
    /// unless [`ExperimentSpec::adversarial`] was called.
    pub adversarial: Vec<AdversarialOutcome>,
    /// One entry per (trace, scheme), trace-major — empty unless
    /// [`ExperimentSpec::overhead`] was set.
    pub overheads: Vec<OverheadOutcome>,
    /// One entry per (trace, scheme), trace-major — empty unless
    /// [`ExperimentSpec::gaps`] was set.
    pub gaps: Vec<GapOutcome>,
    /// Per-unit accounting for this sweep.
    pub manifest: RunManifest,
}

/// Gap samples from one full no-attack replay (Figure 3 input).
#[derive(Debug, Clone)]
pub struct GapOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Trace label.
    pub trace: String,
    /// Expiry-to-next-query gap samples collected over the replay.
    pub samples: Vec<GapSample>,
}

/// Accounting for one executed sweep.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole sweep.
    pub total_wall: Duration,
    /// Per-unit records in spec order.
    pub units: Vec<UnitRecord>,
}

impl RunManifest {
    /// Sum of per-unit wall clocks — the sequential cost estimate.
    pub fn unit_wall_sum(&self) -> Duration {
        self.units.iter().map(|u| u.wall).sum()
    }

    /// Estimated speedup over a sequential run of the same sweep
    /// (sum of unit wall clocks ÷ total wall clock).
    pub fn speedup_estimate(&self) -> f64 {
        let total = self.total_wall.as_secs_f64();
        if total == 0.0 {
            return 1.0;
        }
        self.unit_wall_sum().as_secs_f64() / total
    }

    /// The manifest rows in `dns-stats` form.
    pub fn rows(&self) -> Vec<ManifestRow> {
        self.units
            .iter()
            .map(|u| ManifestRow {
                unit: u.unit,
                kind: u.kind.to_string(),
                trace: u.trace.clone(),
                scheme: u.scheme.clone(),
                runs: u.runs,
                wall_ms: u.wall.as_millis() as u64,
                queries: u.queries,
                events: u.events,
                peak_records: u.peak_records,
                peak_rss_kb: u.peak_rss_kb,
                worker: u.worker,
                seed: u.seed,
                lat_p50_ms: u.latency.p50(),
                lat_p90_ms: u.latency.p90(),
                lat_p99_ms: u.latency.p99(),
                fetches_clamped: u.fetches_clamped,
                flood_suppressed: u.flood_suppressed,
                neg_evictions_pressure: u.neg_evictions_pressure,
                stale_served: u.stale_served,
                stale_expired_unserved: u.stale_expired_unserved,
                refresh_ahead: u.refresh_ahead,
                prefetch_issued: u.prefetch_issued,
                prefetch_hits: u.prefetch_hits,
                prefetch_wasted: u.prefetch_wasted,
            })
            .collect()
    }

    /// The manifest as a printable table (also the `run_manifest.csv`
    /// content via [`Table::to_csv`]).
    pub fn table(&self) -> Table {
        manifest_table(&self.rows())
    }

    /// One-line summary: thread count, wall clock and estimated speedup.
    pub fn summary(&self) -> String {
        format!(
            "{} units on {} thread(s): {:.1}s wall, {:.1}s unit total, est. speedup {:.2}x",
            self.units.len(),
            self.threads,
            self.total_wall.as_secs_f64(),
            self.unit_wall_sum().as_secs_f64(),
            self.speedup_estimate()
        )
    }
}

impl fmt::Display for RunManifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table().render())?;
        f.write_str(&self.summary())
    }
}

/// Per-unit accounting: what ran, where, and how much work it was.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// Position in spec order.
    pub unit: usize,
    /// Unit kind: `attack`, `overhead` or `gaps`.
    pub kind: &'static str,
    /// Trace label.
    pub trace: String,
    /// Scheme label.
    pub scheme: String,
    /// Simulation runs inside the unit (one per attack duration; 1 for
    /// overhead units).
    pub runs: usize,
    /// Wall-clock time spent on the unit.
    pub wall: Duration,
    /// Trace queries replayed (warm-up counted once).
    pub queries: u64,
    /// Resolver events processed: queries in + out, refreshes and
    /// renewals.
    pub events: u64,
    /// Peak cached-record count observed across the unit's runs.
    pub peak_records: u64,
    /// Process peak resident set (KiB, `VmHWM`) when the unit finished —
    /// a process-global high-water mark, recorded per unit so scale
    /// sweeps can assert replay never materialized the trace (see
    /// [`crate::peak_rss_kb`]).
    pub peak_rss_kb: u64,
    /// Worker thread that executed the unit.
    pub worker: usize,
    /// Seed recorded for the unit.
    pub seed: u64,
    /// Modelled resolution-latency distribution over the unit's
    /// measured windows (virtual ms; attack units merge their
    /// per-duration windows, full-trace units cover the whole replay).
    pub latency: LogHistogram,
    /// Distribution of total cached-record counts over the unit's
    /// occupancy samples.
    pub occupancy: LogHistogram,
    /// NS-address fetches clamped by MaxFetch(k) across the unit's runs.
    pub fetches_clamped: u64,
    /// Queries refused by flood damping across the unit's runs.
    pub flood_suppressed: u64,
    /// Negative-cache evictions under budget pressure across the unit's
    /// runs.
    pub neg_evictions_pressure: u64,
    /// Expired answers served from the stale window (RFC 8767) across
    /// the unit's runs.
    pub stale_served: u64,
    /// Failed lookups whose only stale candidate had aged past the
    /// serve-stale window.
    pub stale_expired_unserved: u64,
    /// Proactive refreshes issued ahead of expiry.
    pub refresh_ahead: u64,
    /// Predictive prefetches issued by the inter-arrival learner.
    pub prefetch_issued: u64,
    /// Prefetched names whose next query hit fresh cache.
    pub prefetch_hits: u64,
    /// Prefetched names whose next query still missed (wasted fetch).
    pub prefetch_wasted: u64,
}

enum UnitKind {
    Attack {
        start: SimTime,
        durations: Vec<SimDuration>,
    },
    Adversarial {
        adversary: AdversarySpec,
        start: SimTime,
        duration: SimDuration,
    },
    Overhead {
        sample_every: SimDuration,
    },
    Gaps,
}

impl UnitKind {
    fn label(&self) -> &'static str {
        match self {
            UnitKind::Attack { .. } => "attack",
            UnitKind::Adversarial { .. } => "adversarial",
            UnitKind::Overhead { .. } => "overhead",
            UnitKind::Gaps => "gaps",
        }
    }
}

/// A seeded, never-materialized trace: the sweep engine replays it
/// straight from the generator (see [`ExperimentSpec::stream_trace`]).
#[derive(Debug, Clone)]
pub struct StreamSource {
    /// The trace preset to stream.
    pub spec: TraceSpec,
    /// Generation seed — streaming `spec` with it is byte-identical to
    /// `spec.generate(universe, seed)`.
    pub seed: u64,
}

/// One trace as the unit executor sees it: materialized and shared, or
/// regenerated on demand from a seeded stream.
#[derive(Clone)]
enum TraceRef {
    Mat(Arc<Trace>),
    Stream(StreamSource),
}

impl TraceRef {
    fn name(&self) -> &str {
        match self {
            TraceRef::Mat(trace) => &trace.name,
            TraceRef::Stream(s) => s.spec.name,
        }
    }
}

struct Unit {
    source: TraceRef,
    scheme: Scheme,
    farm: Arc<ServerFarm>,
    kind: UnitKind,
}

struct UnitResult {
    attacks: Vec<AttackOutcome>,
    adversarial: Option<AdversarialOutcome>,
    overhead: Option<OverheadOutcome>,
    gaps: Option<GapOutcome>,
    record: UnitRecord,
}

/// Counts every event class the resolver processed.
fn event_count(m: &dns_resolver::ResolverMetrics) -> u64 {
    m.queries_in + m.queries_out + m.refreshes + m.renewals_sent
}

fn run_unit(unit: &Unit, universe: &Universe, seed: u64, worker: usize) -> UnitResult {
    let started = Instant::now();
    // Streaming units share one target table across the warm-up and
    // every resumed fork — the unit's only `O(zones)` allocation; the
    // stream itself holds just the current hour's arrival offsets.
    let targets = match &unit.source {
        TraceRef::Stream(_) => Some(UniverseTargets::new(universe)),
        TraceRef::Mat(_) => None,
    };
    let make_sim = |config| match &unit.source {
        TraceRef::Mat(trace) => {
            Simulation::shared(Arc::clone(&unit.farm), universe, Arc::clone(trace), config)
        }
        TraceRef::Stream(s) => Simulation::shared_streaming(
            Arc::clone(&unit.farm),
            universe,
            Box::new(
                s.spec
                    .workload()
                    .stream(targets.clone().expect("targets built for streams"), s.seed),
            ),
            config,
        ),
    };
    let mut attacks = Vec::new();
    let mut adversarial = None;
    let mut overhead = None;
    let mut gaps = None;
    let mut latency = LogHistogram::new();
    let mut occupancy_hist = LogHistogram::new();
    // Defense- and stale-counter totals over the unit's measured runs
    // (all zero when the scheme runs with defenses and serve-stale off —
    // the default).
    let mut fetches_clamped = 0u64;
    let mut flood_suppressed = 0u64;
    let mut neg_evictions_pressure = 0u64;
    let mut stale_served = 0u64;
    let mut stale_expired_unserved = 0u64;
    let mut refresh_ahead = 0u64;
    let mut prefetch_issued = 0u64;
    let mut prefetch_hits = 0u64;
    let mut prefetch_wasted = 0u64;
    let mut count_defense = |m: &dns_resolver::ResolverMetrics| {
        fetches_clamped += m.fetches_clamped;
        flood_suppressed += m.flood_suppressed;
        neg_evictions_pressure += m.neg_evictions_pressure;
        stale_served += m.stale_served;
        stale_expired_unserved += m.stale_expired_unserved;
        refresh_ahead += m.refresh_ahead;
        prefetch_issued += m.prefetch_issued;
        prefetch_hits += m.prefetch_hits;
        prefetch_wasted += m.prefetch_wasted;
    };
    let (runs, queries, events, peak_records) = match &unit.kind {
        UnitKind::Attack { start, durations } => {
            let mut warm = make_sim(unit.scheme.sim_config());
            warm.run_until(*start);
            let warm_processed = warm.processed() as u64;
            let warm_latency = warm.cs().latency_histogram().clone();
            let mut queries = warm_processed;
            let mut events = event_count(&warm.metrics());
            let warm_records = warm.cs_mut().occupancy(*start).total_records() as u64;
            occupancy_hist.record(warm_records);
            let mut peak = warm_records;
            for &duration in durations {
                // Materialized forks clone the warm state and keep
                // indexing the shared trace; streaming forks resume a
                // fresh stream at the warm-up's exact cursor.
                let mut sim = match &unit.source {
                    TraceRef::Mat(_) => warm.fork(),
                    TraceRef::Stream(s) => {
                        let cursor = warm.stream_cursor().expect("streaming sims carry cursors");
                        warm.fork_streaming(Box::new(s.spec.workload().resume(
                            targets.clone().expect("targets built for streams"),
                            s.seed,
                            &cursor,
                        )))
                    }
                };
                sim.set_attack(AttackScenario::root_and_tlds(*start, duration).compile(universe));
                let before = sim.metrics();
                let end = *start + duration;
                sim.run_until(end);
                let window = sim.metrics() - before;
                count_defense(&window);
                // Latency samples accumulated inside this window: the
                // forked histogram minus the shared warm-up prefix.
                let window_latency = sim.cs().latency_histogram().diff(&warm_latency);
                latency.merge(&window_latency);
                queries += sim.processed() as u64 - warm_processed;
                events += event_count(&window);
                let end_records = sim.cs_mut().occupancy(end).total_records() as u64;
                occupancy_hist.record(end_records);
                peak = peak.max(end_records);
                attacks.push(AttackOutcome {
                    scheme: unit.scheme.label(),
                    trace: unit.source.name().to_string(),
                    duration,
                    sr_failed_pct: window.failed_in_ratio() * 100.0,
                    cs_failed_pct: window.failed_out_ratio() * 100.0,
                    window,
                    latency: window_latency,
                });
            }
            (durations.len(), queries, events, peak)
        }
        UnitKind::Adversarial {
            adversary,
            start,
            duration,
        } => {
            let compiled = adversary.compile(universe);
            let mut warm = make_sim(unit.scheme.sim_config());
            warm.run_until(*start);
            let warm_processed = warm.processed() as u64;
            let warm_metrics = warm.metrics();
            let warm_latency = warm.cs().latency_histogram().clone();
            let warm_records = warm.cs_mut().occupancy(*start).total_records() as u64;
            occupancy_hist.record(warm_records);
            let mut peak = warm_records;
            let end = *start + *duration;

            // Baseline fork: the window with legitimate traffic only.
            let mut baseline = match &unit.source {
                TraceRef::Mat(_) => warm.fork(),
                TraceRef::Stream(s) => {
                    let cursor = warm.stream_cursor().expect("streaming sims carry cursors");
                    warm.fork_streaming(Box::new(s.spec.workload().resume(
                        targets.clone().expect("targets built for streams"),
                        s.seed,
                        &cursor,
                    )))
                }
            };
            baseline.run_until(end);
            let base_window = baseline.metrics() - warm_metrics;

            // Attacked fork: the same window with the flood merged in,
            // streamed with bounded lookahead for streamed sources.
            let mut attacked = match &unit.source {
                TraceRef::Mat(trace) => {
                    let tail = &trace.queries[warm.processed()..];
                    let merged = merge_into_tail(tail, &compiled, *start, end);
                    warm.fork_with_trace(Arc::new(Trace {
                        name: trace.name.clone(),
                        days: trace.days,
                        clients: trace.clients,
                        queries: merged,
                    }))
                }
                TraceRef::Stream(s) => {
                    let cursor = warm.stream_cursor().expect("streaming sims carry cursors");
                    let base = Box::new(s.spec.workload().resume(
                        targets.clone().expect("targets built for streams"),
                        s.seed,
                        &cursor,
                    ));
                    warm.fork_streaming(Box::new(MergedStream::new(base, &compiled, *start, end)))
                }
            };
            attacked.run_until(end);
            let atk_window = attacked.metrics() - warm_metrics;
            let adv = attacked.adversary_stats();
            count_defense(&base_window);
            count_defense(&atk_window);
            let window_latency = attacked.cs().latency_histogram().diff(&warm_latency);
            latency.merge(&window_latency);
            let end_records = attacked.cs_mut().occupancy(end).total_records() as u64;
            occupancy_hist.record(end_records);
            peak = peak.max(end_records);

            let legit_pct = |m: &dns_resolver::ResolverMetrics, sent: u64, failed: u64| {
                let total = m.queries_in.saturating_sub(sent);
                if total == 0 {
                    0.0
                } else {
                    m.failed_in.saturating_sub(failed) as f64 / total as f64 * 100.0
                }
            };
            adversarial = Some(AdversarialOutcome {
                scheme: unit.scheme.label(),
                trace: unit.source.name().to_string(),
                adversary: compiled.spec().label(),
                duration: *duration,
                attack_queries: adv.sent,
                base_upstream: base_window.queries_out,
                attacked_upstream: atk_window.queries_out,
                base_legit_failed_pct: legit_pct(&base_window, 0, 0),
                legit_failed_pct: legit_pct(&atk_window, adv.sent, adv.failed),
                fetches_clamped: atk_window.fetches_clamped,
                flood_suppressed: atk_window.flood_suppressed,
                neg_evictions_pressure: atk_window.neg_evictions_pressure,
                window: atk_window,
            });
            let queries = warm_processed + base_window.queries_in + atk_window.queries_in;
            let events =
                event_count(&warm_metrics) + event_count(&base_window) + event_count(&atk_window);
            (2, queries, events, peak)
        }
        UnitKind::Overhead { sample_every } => {
            let mut sim = make_sim(unit.scheme.sim_config().occupancy_every(*sample_every));
            sim.run_to_end();
            let metrics = sim.metrics();
            count_defense(&metrics);
            let peak = sim
                .occupancy()
                .iter()
                .map(|o| o.total_records() as u64)
                .max()
                .unwrap_or(0);
            for o in sim.occupancy() {
                occupancy_hist.record(o.total_records() as u64);
            }
            latency.merge(sim.cs().latency_histogram());
            let queries = sim.processed() as u64;
            overhead = Some(OverheadOutcome {
                scheme: unit.scheme.label(),
                trace: unit.source.name().to_string(),
                metrics,
                occupancy: sim.occupancy().to_vec(),
                latency: latency.clone(),
            });
            (1, queries, event_count(&metrics), peak)
        }
        UnitKind::Gaps => {
            let mut sim = make_sim(unit.scheme.sim_config());
            sim.run_to_end();
            let metrics = sim.metrics();
            count_defense(&metrics);
            let now = sim.now();
            let peak = sim.cs_mut().occupancy(now).total_records() as u64;
            occupancy_hist.record(peak);
            latency.merge(sim.cs().latency_histogram());
            let queries = sim.processed() as u64;
            gaps = Some(GapOutcome {
                scheme: unit.scheme.label(),
                trace: unit.source.name().to_string(),
                samples: sim.take_gap_samples(),
            });
            (1, queries, event_count(&metrics), peak)
        }
    };
    UnitResult {
        attacks,
        adversarial,
        overhead,
        gaps,
        record: UnitRecord {
            unit: 0, // patched to spec order during assembly
            kind: unit.kind.label(),
            trace: unit.source.name().to_string(),
            scheme: unit.scheme.label(),
            runs,
            wall: started.elapsed(),
            queries,
            events,
            peak_records,
            peak_rss_kb: crate::rss::peak_rss_kb(),
            worker,
            seed,
            latency,
            occupancy: occupancy_hist,
            fetches_clamped,
            flood_suppressed,
            neg_evictions_pressure,
            stale_served,
            stale_expired_unserved,
            refresh_ahead,
            prefetch_issued,
            prefetch_hits,
            prefetch_wasted,
        },
    }
}

// The engine moves simulations across scoped threads; keep that a
// compile-time guarantee instead of an accident of field types.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Simulation>();
    assert_send_sync::<ServerFarm>();
    assert_send_sync::<Trace>();
    assert_send_sync::<Universe>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{paper_durations, Scheme, ATTACK_START_DAY};
    use dns_resolver::RenewalPolicy;
    use dns_trace::{TraceSpec, UniverseSpec};

    fn setup() -> (Universe, Trace) {
        let u = UniverseSpec::small().build(7);
        let t = TraceSpec::demo().scaled(0.1).generate(&u, 5);
        (u, t)
    }

    fn spec<'a>(u: &'a Universe, t: &Trace) -> ExperimentSpec<'a> {
        ExperimentSpec::new(u)
            .trace(t.clone())
            .schemes([
                Scheme::vanilla(),
                Scheme::refresh(),
                Scheme::renewal(RenewalPolicy::lru(3)),
            ])
            .attack(SimTime::from_days(ATTACK_START_DAY), &paper_durations())
            .overhead(SimDuration::from_hours(12))
    }

    #[test]
    fn outcomes_arrive_in_spec_order() {
        let (u, t) = setup();
        let out = spec(&u, &t).threads(1).run();
        assert_eq!(out.attacks.len(), 3 * 4);
        assert_eq!(out.overheads.len(), 3);
        let labels: Vec<&str> = out.attacks.iter().map(|a| a.scheme.as_str()).collect();
        assert_eq!(labels[0], "vanilla");
        assert_eq!(labels[4], "refresh");
        assert_eq!(labels[8], "refresh+LRU_3");
        let durations: Vec<u64> = out.attacks[..4]
            .iter()
            .map(|a| a.duration.as_secs() / 3600)
            .collect();
        assert_eq!(durations, [3, 6, 12, 24]);
    }

    #[test]
    fn manifest_counts_the_work() {
        let (u, t) = setup();
        let out = spec(&u, &t).threads(2).run();
        let m = &out.manifest;
        assert_eq!(m.threads, 2);
        assert_eq!(m.units.len(), 6);
        // Spec order: per scheme, attack unit then overhead unit.
        assert_eq!(m.units[0].kind, "attack");
        assert_eq!(m.units[1].kind, "overhead");
        assert_eq!(m.units[0].runs, 4);
        assert_eq!(m.units[1].runs, 1);
        for unit in &m.units {
            assert!(unit.queries > 0);
            assert!(unit.events >= unit.queries);
            assert!(unit.peak_records > 0);
            assert!(unit.worker < 2);
        }
        // The table/CSV carries one row per unit.
        assert_eq!(m.table().len(), 6);
        assert!(m.summary().contains("6 units"));
    }

    #[test]
    fn manifest_counters_match_sequential_metrics() {
        let (u, t) = setup();
        let sample = SimDuration::from_hours(12);
        let out = ExperimentSpec::new(&u)
            .trace(t.clone())
            .scheme(Scheme::vanilla())
            .overhead(sample)
            .threads(1)
            .run();
        let mut sim = Simulation::new(
            &u,
            t,
            Scheme::vanilla().sim_config().occupancy_every(sample),
        );
        sim.run_to_end();
        let m = sim.metrics();
        let unit = &out.manifest.units[0];
        assert_eq!(unit.queries, sim.processed() as u64);
        assert_eq!(
            unit.events,
            m.queries_in + m.queries_out + m.refreshes + m.renewals_sent
        );
    }

    #[test]
    fn streamed_sweep_matches_materialized_sweep() {
        let u = UniverseSpec::small().build(7);
        let preset = TraceSpec::demo().scaled(0.1);
        let build = |spec: ExperimentSpec<'_>| {
            spec.schemes([Scheme::vanilla(), Scheme::refresh()])
                .attack(SimTime::from_days(ATTACK_START_DAY), &paper_durations())
                .overhead(SimDuration::from_hours(12))
                .threads(2)
                .run()
        };
        let mat = build(ExperimentSpec::new(&u).trace(preset.generate(&u, 5)));
        let streamed = build(ExperimentSpec::new(&u).stream_trace(preset, 5));

        assert_eq!(mat.attacks.len(), streamed.attacks.len());
        for (a, b) in mat.attacks.iter().zip(&streamed.attacks) {
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.window, b.window);
        }
        assert_eq!(mat.overheads.len(), streamed.overheads.len());
        for (a, b) in mat.overheads.iter().zip(&streamed.overheads) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.occupancy, b.occupancy);
        }
        for (a, b) in mat.manifest.units.iter().zip(&streamed.manifest.units) {
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.events, b.events);
            assert_eq!(a.peak_records, b.peak_records);
            assert!(b.peak_rss_kb > 0, "RSS recorded per unit");
        }
    }

    #[test]
    fn empty_specs_panic() {
        let (u, t) = setup();
        let r = std::panic::catch_unwind(|| {
            let _ = ExperimentSpec::new(&u).trace(t.clone()).run();
        });
        assert!(r.is_err(), "spec without schemes/measurements must panic");
    }
}
