//! Aligned plain-text and CSV table emission.

use std::fmt;

/// Column alignment for plain-text rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Flush left (labels).
    #[default]
    Left,
    /// Flush right (numbers).
    Right,
}

/// A simple table with a header row, used by every experiment binary to
/// print paper-style tables.
///
/// ```rust
/// use dns_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["trace", "failed %"]);
/// t.align(1, Align::Right);
/// t.row(vec!["TRC1".into(), "12.3".into()]);
/// let text = t.render();
/// assert!(text.contains("TRC1"));
/// assert!(t.to_csv().starts_with("trace,failed %\n"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-aligns every column except the first — the common shape for
    /// the paper's tables (label column + numeric columns).
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row, padding or truncating to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (each padded to the header width).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The header row.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table with a separator under the
    /// header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{cell:<width$}", width = widths[i])),
                    Align::Right => line.push_str(&format!("{cell:>width$}", width = widths[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let sep: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }

    /// Emits RFC-4180-style CSV (quoting cells that contain commas, quotes
    /// or newlines).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["trace", "clients", "failed %"]);
        t.numeric();
        t.row(vec!["TRC1".into(), "120".into(), "12.3".into()]);
        t.row(vec!["TRC2".into(), "3000".into(), "1.05".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Numeric columns right-aligned: the shorter number is padded.
        assert!(lines[2].contains(" 120"));
        assert!(lines[3].contains("3000"));
        // Header separator present.
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only".into()]);
        assert_eq!(t.rows[0].len(), 2);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["a,b".into(), "said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"said \"\"hi\"\"\""));
    }

    #[test]
    fn csv_header_first() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("trace,clients,failed %\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
    }
}
