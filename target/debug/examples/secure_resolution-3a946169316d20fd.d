/root/repo/target/debug/examples/secure_resolution-3a946169316d20fd.d: examples/secure_resolution.rs

/root/repo/target/debug/examples/secure_resolution-3a946169316d20fd: examples/secure_resolution.rs

examples/secure_resolution.rs:
