/root/repo/target/debug/deps/dns_playground-90d0950047179283.d: crates/dns-netd/src/bin/dns-playground.rs

/root/repo/target/debug/deps/dns_playground-90d0950047179283: crates/dns-netd/src/bin/dns-playground.rs

crates/dns-netd/src/bin/dns-playground.rs:
