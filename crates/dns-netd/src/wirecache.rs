//! Pre-serialized response cache: the daemon's wire fast lane.
//!
//! A [`WireCache`] maps `(lowercased question name, record type)` to the
//! *compiled wire bytes* of a previously-served response. A repeat query
//! for a hot name is answered without decoding the question into a
//! [`Message`], without touching the resolver, and without allocating:
//! the cached bytes are copied into the caller's send buffer and patched
//! in place — query ID, RD flag and the client's exact question casing
//! (0x20 randomization) come from the incoming datagram, and every TTL is
//! decremented by the seconds elapsed since the entry was compiled.
//!
//! Invalidation is tied to the *record* cache: an entry stores the
//! absolute expiry of the cache entries its answer was compiled from
//! (`CachingServer::answer_expiry`), and [`WireCache::serve`] refuses to
//! serve at or past that instant — a pre-serialized answer never outlives
//! the records behind it.
//!
//! [`Message`]: dns_core::Message

use dns_core::{wire, Name, RecordType, SimTime, MAX_LABEL_LEN, MAX_NAME_LEN};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// DNS header length in bytes.
const HDR: usize = 12;

/// Default byte budget for a daemon's wire cache: total compiled
/// response bytes, not entries — entries vary from ~30 bytes (one A
/// record) to [`wire::MAX_MESSAGE_LEN`], so an entry-count cap would
/// leave worst-case memory 16× the typical case.
pub const DEFAULT_WIRE_CACHE_BYTES: usize = 2 << 20;

/// Owned cache key: lowercase length-prefixed question-name bytes (the
/// wire encoding minus the trailing root zero — exactly
/// [`Name::as_suffix_bytes`]) plus the record-type code.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WireKey {
    qname: Box<[u8]>,
    rtype: u16,
}

/// Borrowed view of a [`WireKey`], so the hot path can probe the map with
/// `(&[u8], u16)` straight off the incoming datagram — no key allocation.
/// Same `Borrow<dyn Trait>` construction as `dns_core::RrKeyView`.
trait WireKeyView {
    fn qname(&self) -> &[u8];
    fn rtype(&self) -> u16;
}

impl WireKeyView for WireKey {
    fn qname(&self) -> &[u8] {
        &self.qname
    }
    fn rtype(&self) -> u16 {
        self.rtype
    }
}

impl WireKeyView for (&[u8], u16) {
    fn qname(&self) -> &[u8] {
        self.0
    }
    fn rtype(&self) -> u16 {
        self.1
    }
}

impl Hash for dyn WireKeyView + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.qname().hash(state);
        self.rtype().hash(state);
    }
}

impl PartialEq for dyn WireKeyView + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.rtype() == other.rtype() && self.qname() == other.qname()
    }
}

impl Eq for dyn WireKeyView + '_ {}

/// Must agree with `Hash for dyn WireKeyView` for `Borrow`-based probing
/// to be lawful.
impl Hash for WireKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self as &dyn WireKeyView).hash(state);
    }
}

impl<'a> Borrow<dyn WireKeyView + 'a> for WireKey {
    fn borrow(&self) -> &(dyn WireKeyView + 'a) {
        self
    }
}

/// One compiled response: wire bytes with the ID zeroed, the offset and
/// original value of every TTL field, and the lifetime bounds.
#[derive(Debug)]
struct WireEntry {
    bytes: Box<[u8]>,
    /// `(byte offset, TTL as compiled)` for every record in the message,
    /// section order.
    ttls: Box<[(u32, u32)]>,
    built_at: SimTime,
    /// Record-cache expiry of the answer's source entries (exclusive:
    /// serving stops once `now >= expires_at`).
    expires_at: SimTime,
}

/// The pre-serialized response cache. See the module docs.
///
/// Not internally synchronized — the daemon wraps it in a mutex shared by
/// its workers ([`crate::Resolved`]'s wire lane).
#[derive(Debug)]
pub struct WireCache {
    map: HashMap<WireKey, WireEntry>,
    /// Byte budget over the compiled response bytes of every entry.
    cap_bytes: usize,
    /// Sum of `bytes.len()` over the live entries.
    bytes: usize,
}

impl Default for WireCache {
    fn default() -> Self {
        WireCache::new(DEFAULT_WIRE_CACHE_BYTES)
    }
}

impl WireCache {
    /// An empty cache holding at most `cap_bytes` of compiled response
    /// bytes (raised to [`wire::MAX_MESSAGE_LEN`] so at least one entry
    /// of any size fits).
    pub fn new(cap_bytes: usize) -> WireCache {
        WireCache {
            map: HashMap::new(),
            cap_bytes: cap_bytes.max(wire::MAX_MESSAGE_LEN),
            bytes: 0,
        }
    }

    /// Entries currently stored (fresh or not yet reaped).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Compiled response bytes currently stored across every entry.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The byte budget the cache evicts down to.
    pub fn capacity_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Removes the entry for `key`, keeping the byte ledger in step.
    fn evict(&mut self, key: &(dyn WireKeyView + '_)) -> Option<WireEntry> {
        let entry = self.map.remove(key)?;
        self.bytes -= entry.bytes.len();
        Some(entry)
    }

    /// Compiles `(bytes, ttl_offsets)` — as produced by
    /// [`wire::encode_with_ttl_offsets`] — into a cache entry for
    /// `(name, rtype)`. The stored copy has its ID zeroed; serve-time
    /// patching fills in each client's. Returns `false` (and stores
    /// nothing) if an offset is out of bounds or the message is not a
    /// plausible response.
    pub fn insert(
        &mut self,
        name: &Name,
        rtype: RecordType,
        bytes: &[u8],
        ttl_offsets: &[u32],
        built_at: SimTime,
        expires_at: SimTime,
    ) -> bool {
        if bytes.len() < HDR || bytes.len() > wire::MAX_MESSAGE_LEN || built_at >= expires_at {
            return false;
        }
        let mut ttls = Vec::with_capacity(ttl_offsets.len());
        for &off in ttl_offsets {
            let Some(field) = bytes.get(off as usize..off as usize + 4) else {
                return false;
            };
            let orig = u32::from_be_bytes([field[0], field[1], field[2], field[3]]);
            ttls.push((off, orig));
        }
        let key = WireKey {
            qname: name.as_suffix_bytes().into(),
            rtype: rtype.code(),
        };
        self.evict(&key);
        // Over budget with the new entry: drop arbitrary entries until it
        // fits. Hot keys re-enter on their next slow-path answer, so
        // eviction precision doesn't pay here.
        while self.bytes + bytes.len() > self.cap_bytes {
            let Some(victim) = self.map.keys().next().cloned() else {
                break;
            };
            self.evict(&victim);
        }
        let mut stored = bytes.to_vec();
        stored[0] = 0;
        stored[1] = 0;
        self.bytes += stored.len();
        self.map.insert(
            key,
            WireEntry {
                bytes: stored.into_boxed_slice(),
                ttls: ttls.into_boxed_slice(),
                built_at,
                expires_at,
            },
        );
        true
    }

    /// Answers `query` from the cache, writing the patched response into
    /// `out` and returning its length — or `None` on miss or expiry
    /// (expired entries are reaped on the way out).
    ///
    /// `qname` is the *lowercased* question-name key (no trailing zero;
    /// see [`lowercase_key`]) and `query` the raw datagram it came from,
    /// whose ID, RD bit and original question casing are echoed. TTLs are
    /// patched to `compiled TTL - seconds since built`, saturating at 0.
    /// Allocation-free.
    pub fn serve(
        &mut self,
        qname: &[u8],
        rtype: u16,
        query: &[u8],
        now: SimTime,
        out: &mut [u8],
    ) -> Option<usize> {
        let view: &dyn WireKeyView = &(qname, rtype);
        if self.map.get(view).is_some_and(|e| now >= e.expires_at) {
            self.evict(view);
            return None;
        }
        let entry = self.map.get(view)?;
        let n = entry.bytes.len();
        if out.len() < n || query.len() < HDR + qname.len() {
            return None;
        }
        out[..n].copy_from_slice(&entry.bytes);
        // The client's ID, recursion-desired flag and exact question
        // spelling (0x20 case randomization) all come from its datagram.
        out[0..2].copy_from_slice(&query[0..2]);
        out[2] = (out[2] & !0x01) | (query[2] & 0x01);
        out[HDR..HDR + qname.len()].copy_from_slice(&query[HDR..HDR + qname.len()]);
        let elapsed = u32::try_from(now.since(entry.built_at).as_secs()).unwrap_or(u32::MAX);
        for &(off, orig) in entry.ttls.iter() {
            let ttl = orig.saturating_sub(elapsed);
            out[off as usize..off as usize + 4].copy_from_slice(&ttl.to_be_bytes());
        }
        Some(n)
    }

    /// Drops every entry expired at `now`; returns how many.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.map.len();
        self.map.retain(|_, e| now < e.expires_at);
        self.bytes = self.map.values().map(|e| e.bytes.len()).sum();
        before - self.map.len()
    }

    /// Drops the entry for `(name, rtype)`, if present.
    pub fn invalidate(&mut self, name: &Name, rtype: RecordType) -> bool {
        let view: &dyn WireKeyView = &(name.as_suffix_bytes(), rtype.code());
        self.evict(view).is_some()
    }
}

/// The question a fast-lane-eligible datagram carries, borrowed in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastQuery<'a> {
    /// Raw question-name bytes as sent (original casing, length-prefixed,
    /// no trailing zero).
    pub raw_name: &'a [u8],
    /// Question type code.
    pub rtype: u16,
    /// Question class code.
    pub class: u16,
}

/// Shallow-parses `query` just enough to decide fast-lane eligibility:
/// a plain QUERY question (QR/TC clear, opcode 0) with exactly one
/// question, nothing in the other sections (an EDNS0 OPT in additional
/// routes to the slow path, which strips it), an uncompressed question
/// name within RFC limits, and no trailing bytes. Returns the borrowed
/// question on success. Allocation-free.
pub fn fast_query(query: &[u8]) -> Option<FastQuery<'_>> {
    // Smallest well-formed query: header + root name + type + class.
    if query.len() < HDR + 5 {
        return None;
    }
    let flags = query[2];
    if flags & 0x80 != 0 || (flags >> 3) & 0x0f != 0 || flags & 0x02 != 0 {
        return None;
    }
    if query[4..6] != [0, 1] || query[6..12].iter().any(|&b| b != 0) {
        return None;
    }
    let mut pos = HDR;
    loop {
        let len = *query.get(pos)? as usize;
        if len == 0 {
            break;
        }
        if len > MAX_LABEL_LEN {
            // Compression pointer (or malformed length) in a question —
            // not fast-lane material.
            return None;
        }
        pos += 1 + len;
        if pos - HDR + 1 > MAX_NAME_LEN {
            return None;
        }
    }
    if pos + 1 + 4 != query.len() {
        return None;
    }
    Some(FastQuery {
        raw_name: &query[HDR..pos],
        rtype: u16::from_be_bytes([query[pos + 1], query[pos + 2]]),
        class: u16::from_be_bytes([query[pos + 3], query[pos + 4]]),
    })
}

/// Lowercases `raw_name` into `key` (cleared first), producing the probe
/// key [`WireCache::serve`] expects. Label *length* bytes are at most 63,
/// below `b'A'`, so blanket ASCII lowercasing never corrupts them. The
/// buffer is caller-owned scratch — reused across packets, so the steady
/// state allocates nothing.
pub fn lowercase_key(raw_name: &[u8], key: &mut Vec<u8>) {
    key.clear();
    key.extend(raw_name.iter().map(u8::to_ascii_lowercase));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Message, Question, RData, Record, Ttl};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// A two-record response (answer + additional) for `www.example.com A`
    /// with the given TTLs, plus its encoded bytes and TTL offsets.
    fn sample_response(id: u16, ttl_a: u32, ttl_extra: u32) -> (Message, Vec<u8>, Vec<u32>) {
        let q = Message::query(id, Question::new(name("www.example.com"), RecordType::A));
        let mut resp = Message::response_to(&q);
        resp.answers.push(Record::new(
            name("www.example.com"),
            Ttl::from_secs(ttl_a),
            RData::A(Ipv4Addr::new(192, 0, 2, 7)),
        ));
        resp.additionals.push(Record::new(
            name("ns.example.com"),
            Ttl::from_secs(ttl_extra),
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        let (bytes, offsets) = wire::encode_with_ttl_offsets(&resp).unwrap();
        (resp, bytes, offsets)
    }

    fn query_bytes(id: u16, spelled: &str) -> Vec<u8> {
        let q = Message::query(id, Question::new(name(spelled), RecordType::A));
        let mut bytes = wire::encode(&q).unwrap();
        // Re-impose mixed casing (Name lowercases on construction).
        let mut pos = 12;
        for label in spelled.split('.') {
            bytes[pos + 1..pos + 1 + label.len()].copy_from_slice(label.as_bytes());
            pos += 1 + label.len();
        }
        bytes
    }

    fn serve_into<'b>(
        cache: &mut WireCache,
        query: &[u8],
        now: SimTime,
        out: &'b mut [u8],
    ) -> Option<&'b [u8]> {
        let fq = fast_query(query).expect("test queries are fast-lane shaped");
        let mut key = Vec::new();
        lowercase_key(fq.raw_name, &mut key);
        let n = cache.serve(&key, fq.rtype, query, now, out)?;
        Some(&out[..n])
    }

    #[test]
    fn hit_patches_id_rd_casing_and_ttls() {
        let (_, bytes, offsets) = sample_response(0x1111, 300, 60);
        let mut cache = WireCache::new(16);
        let t0 = SimTime::from_secs(1000);
        assert!(cache.insert(
            &name("www.example.com"),
            RecordType::A,
            &bytes,
            &offsets,
            t0,
            t0 + dns_core::SimDuration::from_secs(300),
        ));
        let query = query_bytes(0xBEEF, "wWw.eXample.COM");
        let mut out = [0u8; wire::MAX_MESSAGE_LEN];
        let served = serve_into(
            &mut cache,
            &query,
            t0 + dns_core::SimDuration::from_secs(40),
            &mut out,
        )
        .expect("hot entry serves");

        assert_eq!(&served[0..2], &[0xBE, 0xEF], "client ID echoed");
        assert_eq!(served[2] & 0x01, 0x01, "client RD echoed");
        assert_eq!(
            &served[12..12 + 17],
            &query[12..12 + 17],
            "question spelled exactly as the client sent it"
        );
        let msg = wire::decode(served).unwrap();
        assert_eq!(msg.header.id, 0xBEEF);
        assert_eq!(msg.answers[0].ttl().as_secs(), 260, "300 - 40s elapsed");
        assert_eq!(msg.additionals[0].ttl().as_secs(), 20, "60 - 40s elapsed");
        assert_eq!(
            msg.answers[0].rdata(),
            &RData::A(Ipv4Addr::new(192, 0, 2, 7))
        );
    }

    #[test]
    fn expired_entries_are_never_served_and_get_reaped() {
        let (_, bytes, offsets) = sample_response(1, 300, 300);
        let mut cache = WireCache::new(16);
        let t0 = SimTime::ZERO;
        let expiry = SimTime::from_secs(120);
        cache.insert(
            &name("www.example.com"),
            RecordType::A,
            &bytes,
            &offsets,
            t0,
            expiry,
        );
        let query = query_bytes(7, "www.example.com");
        let mut out = [0u8; wire::MAX_MESSAGE_LEN];
        assert!(
            serve_into(&mut cache, &query, SimTime::from_secs(119), &mut out).is_some(),
            "one second before expiry still serves"
        );
        assert!(
            serve_into(&mut cache, &query, expiry, &mut out).is_none(),
            "expiry is exclusive: at expires_at the entry is dead"
        );
        assert!(cache.is_empty(), "expired entry reaped on access");
    }

    #[test]
    fn misses_and_invalidation() {
        let (_, bytes, offsets) = sample_response(1, 300, 300);
        let mut cache = WireCache::new(16);
        let t0 = SimTime::ZERO;
        let horizon = SimTime::from_secs(300);
        cache.insert(
            &name("www.example.com"),
            RecordType::A,
            &bytes,
            &offsets,
            t0,
            horizon,
        );
        let mut out = [0u8; wire::MAX_MESSAGE_LEN];

        // Same name, different type: miss.
        let mut q = wire::encode(&Message::query(
            2,
            Question::new(name("www.example.com"), RecordType::Aaaa),
        ))
        .unwrap();
        let fq = fast_query(&q).unwrap();
        let mut key = Vec::new();
        lowercase_key(fq.raw_name, &mut key);
        assert!(cache
            .serve(&key, fq.rtype, &q, SimTime::from_secs(1), &mut out)
            .is_none());

        // Different name: miss.
        q = query_bytes(3, "irc.example.com");
        assert!(serve_into(&mut cache, &q, SimTime::from_secs(1), &mut out).is_none());

        // Explicit invalidation kills the hot entry.
        q = query_bytes(4, "www.example.com");
        assert!(serve_into(&mut cache, &q, SimTime::from_secs(1), &mut out).is_some());
        assert!(cache.invalidate(&name("www.example.com"), RecordType::A));
        assert!(serve_into(&mut cache, &q, SimTime::from_secs(1), &mut out).is_none());
    }

    #[test]
    fn byte_budget_is_bounded() {
        let compiled = |i: usize| {
            let owner = name(&format!("h{i:02}.example.com"));
            let q = Message::query(i as u16, Question::new(owner.clone(), RecordType::A));
            let mut resp = Message::response_to(&q);
            // Fat answer sets so four entries genuinely exceed the
            // MAX_MESSAGE_LEN floor `new` clamps the budget up to.
            for j in 0..40u8 {
                resp.answers.push(Record::new(
                    owner.clone(),
                    Ttl::from_secs(300),
                    RData::A(Ipv4Addr::new(10, 0, j, i as u8)),
                ));
            }
            let (bytes, offsets) = wire::encode_with_ttl_offsets(&resp).unwrap();
            (owner, bytes, offsets)
        };
        // Budget exactly four fixed-width entries; `new` clamps up to one
        // max-size message, so probe the real capacity, not the argument.
        let entry_len = compiled(0).1.len();
        let mut cache = WireCache::new(4 * entry_len);
        let cap = cache.capacity_bytes();
        let t0 = SimTime::ZERO;
        let horizon = SimTime::from_secs(600);
        for i in 0..20 {
            let (owner, bytes, offsets) = compiled(i);
            assert!(cache.insert(&owner, RecordType::A, &bytes, &offsets, t0, horizon));
            assert!(cache.bytes() <= cap, "byte ledger respects the budget");
            assert_eq!(
                cache.bytes(),
                cache.len() * entry_len,
                "ledger equals the sum of stored entries"
            );
        }
        let full = cache.len();
        assert!((1..20).contains(&full), "budget forces eviction");

        // Re-inserting a present key replaces it without double counting.
        let (owner, bytes, offsets) = compiled(19);
        assert!(cache.insert(&owner, RecordType::A, &bytes, &offsets, t0, horizon));
        assert_eq!(cache.len(), full);
        assert_eq!(cache.bytes(), full * entry_len);

        assert!(cache.invalidate(&owner, RecordType::A));
        assert_eq!(cache.bytes(), (full - 1) * entry_len);
        assert_eq!(cache.purge_expired(horizon), full - 1);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn fast_query_eligibility() {
        let plain = wire::encode(&Message::query(
            9,
            Question::new(name("a.root-servers.net"), RecordType::A),
        ))
        .unwrap();
        let fq = fast_query(&plain).expect("plain query is eligible");
        assert_eq!(fq.rtype, RecordType::A.code());
        assert_eq!(fq.class, 1);
        assert_eq!(fq.raw_name.len(), "a.root-servers.net".len() + 1);

        // A response is not a query.
        let mut resp = plain.clone();
        resp[2] |= 0x80;
        assert!(fast_query(&resp).is_none());

        // Truncated flag, weird opcode, extra counts: all routed slow.
        let mut tc = plain.clone();
        tc[2] |= 0x02;
        assert!(fast_query(&tc).is_none());
        let mut op = plain.clone();
        op[2] |= 0x08; // opcode 1 (IQUERY)
        assert!(fast_query(&op).is_none());
        let mut arc = plain.clone();
        arc[11] = 1; // arcount=1 — e.g. an EDNS0 OPT follows
        assert!(fast_query(&arc).is_none());

        // Compression pointer in the question name.
        let mut ptr = plain.clone();
        ptr[12] = 0xC0;
        assert!(fast_query(&ptr).is_none());

        // Trailing junk after the question.
        let mut junk = plain.clone();
        junk.push(0);
        assert!(fast_query(&junk).is_none());

        // Too short to hold any question.
        assert!(fast_query(&plain[..12]).is_none());
    }

    proptest! {
        /// Satellite 4: TTL patching is a monotonic, non-underflowing
        /// decrement, and the served bytes are exactly the compiled
        /// response modulo ID and TTL fields.
        #[test]
        fn ttl_patching_is_sound(
            ttl_a in 1u32..=7200,
            ttl_extra in 0u32..=7200,
            lifetime in 1u64..=3600,
            probes in proptest::collection::vec(0u64..=4000, 1..8),
        ) {
            let (resp, bytes, offsets) = sample_response(0x2222, ttl_a, ttl_extra);
            let mut cache = WireCache::new(16);
            let t0 = SimTime::from_secs(50);
            let expiry = t0 + dns_core::SimDuration::from_secs(lifetime);
            prop_assert!(cache.insert(
                &name("www.example.com"), RecordType::A, &bytes, &offsets, t0, expiry,
            ));
            let query = query_bytes(0x3333, "www.example.com");
            let mut out = [0u8; wire::MAX_MESSAGE_LEN];

            let mut probes = probes;
            probes.sort_unstable();
            let mut last_ttls: Option<Vec<u32>> = None;
            for dt in probes {
                let now = t0 + dns_core::SimDuration::from_secs(dt);
                let served = serve_into(&mut cache, &query, now, &mut out);
                if now >= expiry {
                    prop_assert!(served.is_none(), "never served at/past record expiry");
                    continue;
                }
                let served = served.expect("fresh entry serves");
                let got = wire::decode(served).unwrap();

                // Byte equivalence modulo ID + TTLs: rewrite just those
                // fields in the compiled bytes and compare whole buffers.
                let mut expect = bytes.clone();
                expect[0..2].copy_from_slice(&query[0..2]);
                expect[2] = (expect[2] & !0x01) | (query[2] & 0x01);
                for &off in &offsets {
                    let off = off as usize;
                    let orig = u32::from_be_bytes(expect[off..off + 4].try_into().unwrap());
                    let patched = orig.saturating_sub(dt as u32);
                    expect[off..off + 4].copy_from_slice(&patched.to_be_bytes());
                }
                prop_assert_eq!(served, expect.as_slice());

                // Monotonic non-underflowing decrement.
                let ttls: Vec<u32> = got.all_records().map(|r| r.ttl().as_secs()).collect();
                prop_assert_eq!(ttls.len(), resp.record_count());
                prop_assert_eq!(ttls[0], ttl_a.saturating_sub(dt as u32));
                prop_assert_eq!(ttls[1], ttl_extra.saturating_sub(dt as u32));
                if let Some(prev) = last_ttls.take() {
                    for (new, old) in ttls.iter().zip(&prev) {
                        prop_assert!(new <= old, "TTLs only decrease over time");
                    }
                }
                last_ttls = Some(ttls);
            }
        }
    }
}
