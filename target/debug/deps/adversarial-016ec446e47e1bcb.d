/root/repo/target/debug/deps/adversarial-016ec446e47e1bcb.d: crates/dns-resolver/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-016ec446e47e1bcb: crates/dns-resolver/tests/adversarial.rs

crates/dns-resolver/tests/adversarial.rs:
