/root/repo/target/debug/deps/dns_netd-30e8284b5cc8179d.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/dns_netd-30e8284b5cc8179d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
