//! Live end-to-end tests: real UDP sockets, real threads, the same
//! resolver code the simulator evaluates.

use dns_core::{Rcode, RecordType, ResponseKind};
use dns_netd::{client, playground, Resolved, UdpUpstream};
use dns_resolver::{CachingServer, ResolverConfig};
use std::time::Duration;

fn timeout() -> Duration {
    Duration::from_secs(2)
}

fn resolver_for(net: &playground::Playground, config: ResolverConfig) -> Resolved {
    let upstream = UdpUpstream::with_route(Duration::from_millis(250), net.route_fn()).unwrap();
    let cs = CachingServer::new(config, net.hints.clone());
    Resolved::spawn(cs, upstream, "127.0.0.1:0").unwrap()
}

#[test]
fn full_recursive_resolution_over_udp() {
    let net = playground::boot().unwrap();
    let resolver = resolver_for(&net, ResolverConfig::vanilla());

    let resp = client::query(
        resolver.addr(),
        &"www.ucla.edu".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.kind(), ResponseKind::Answer);
    assert_eq!(resp.answers.len(), 1);
    assert!(resp.header.recursion_available);

    // Second query is served from cache — the authoritative daemons see
    // no additional traffic.
    let served_before: u64 = net.daemons.iter().map(|d| d.served()).sum();
    let resp = client::query(
        resolver.addr(),
        &"www.ucla.edu".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.kind(), ResponseKind::Answer);
    let served_after: u64 = net.daemons.iter().map(|d| d.served()).sum();
    assert_eq!(served_before, served_after, "cache hit must not hit authds");

    resolver.stop();
    net.stop();
}

#[test]
fn cname_and_nxdomain_over_udp() {
    let net = playground::boot().unwrap();
    let resolver = resolver_for(&net, ResolverConfig::vanilla());

    let resp = client::query(
        resolver.addr(),
        &"web.ucla.edu".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.answers.len(), 2); // CNAME + A

    let resp = client::query(
        resolver.addr(),
        &"missing.example.com".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.header.rcode, Rcode::NxDomain);

    resolver.stop();
    net.stop();
}

#[test]
fn cached_infrastructure_survives_live_daemon_kill() {
    let net = playground::boot().unwrap();
    let resolver = resolver_for(&net, ResolverConfig::with_refresh());

    // Prime the caches through the full hierarchy.
    let resp = client::query(
        resolver.addr(),
        &"www.ucla.edu".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.kind(), ResponseKind::Answer);

    // Kill the top-level daemons (root + both TLDs), keep the leaves.
    let routes = net.routes.clone();
    let mut survivors = Vec::new();
    for d in net.daemons {
        let is_top = routes
            .iter()
            .any(|(syn, sock)| *sock == d.addr() && syn.octets()[2] <= 2);
        if is_top {
            d.stop();
        } else {
            survivors.push(d);
        }
    }

    // Same-zone names still resolve via cached infrastructure (the data
    // record itself is cached; ask for a different name in the zone to
    // force an upstream query to the still-alive leaf daemon).
    let resp = client::query(
        resolver.addr(),
        &"web.ucla.edu".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(
        resp.kind(),
        ResponseKind::Answer,
        "cached IRRs must carry us"
    );

    // A branch never visited needs the dead root → SERVFAIL.
    let resp = client::query(
        resolver.addr(),
        &"www.example.com".parse().unwrap(),
        RecordType::A,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.header.rcode, Rcode::ServFail);

    resolver.stop();
    for d in survivors {
        d.stop();
    }
}

#[test]
fn ds_and_dnskey_queries_over_udp() {
    let net = playground::boot().unwrap();
    let resolver = resolver_for(&net, ResolverConfig::with_refresh());

    // DNSKEY is served by the signed child zone.
    let resp = client::query(
        resolver.addr(),
        &"cs.ucla.edu".parse().unwrap(),
        RecordType::Dnskey,
        timeout(),
    )
    .unwrap();
    assert_eq!(resp.kind(), ResponseKind::Answer);
    assert_eq!(resp.answers[0].rtype(), RecordType::Dnskey);

    resolver.stop();
    net.stop();
}
