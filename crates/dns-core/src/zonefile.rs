//! RFC 1035-style master-file parsing — the inverse of
//! [`Zone::to_zone_file`].
//!
//! The dialect is deliberately small but sufficient to round-trip every
//! zone this workspace produces:
//!
//! ```text
//! $ORIGIN example.com.
//! example.com. 1d IN NS ns1.example.com.
//! ns1.example.com. 1d IN A 192.0.2.1
//! www.example.com. 4h IN A 192.0.2.80
//! ; delegation: sub.example.com.
//! sub.example.com. 12h IN NS ns.sub.example.com.
//! ns.sub.example.com. 12h IN A 192.0.2.53
//! ```
//!
//! Names are absolute (a trailing dot is accepted and optional). TTLs are
//! either plain seconds or suffixed (`45s`, `30m`, `4h`, `2d`). Comments
//! start with `;`. Records owned by a name strictly below the apex whose
//! type is `NS` open a *delegation*; subsequent `A`/`DS` records for that
//! cut become its glue/DS set.

use crate::{Delegation, DnsError, Name, RData, Record, RecordType, Ttl, Zone, ZoneBuilder};
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Accumulated delegation pieces: NS targets, NS TTL, glue, DS records.
type CutParts = (Vec<Name>, Ttl, Vec<Record>, Vec<Record>);

/// Parses one zone from master-file text.
///
/// # Errors
///
/// Returns [`DnsError::InvalidZone`] describing the first malformed line,
/// a missing `$ORIGIN`, or structural problems (no NS at the apex).
pub fn parse_zone(text: &str) -> Result<Zone, DnsError> {
    // Pass 1: parse lines into records (order-independent classification
    // happens afterwards, since master files may list glue before NS).
    let mut origin: Option<Name> = None;
    let mut parsed: Vec<(usize, Record)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            origin = Some(parse_name(rest.trim(), lineno)?);
            continue;
        }
        if origin.is_none() {
            return Err(err(lineno, "record before $ORIGIN"));
        }
        parsed.push((lineno, parse_record(line, lineno)?));
    }
    let apex = origin.ok_or_else(|| DnsError::InvalidZone("missing $ORIGIN".to_string()))?;
    for (lineno, record) in &parsed {
        if !record.name().is_subdomain_of(&apex) {
            return Err(err(
                *lineno,
                format!("owner {} outside zone {apex}", record.name()),
            ));
        }
    }

    // Pass 2a: find the zone cuts (NS records owned strictly below the
    // apex, not below another cut) and the apex NS set.
    let mut apex_ns: Vec<Name> = Vec::new();
    let mut infra_ttl: Option<Ttl> = None;
    let mut cut_owners: Vec<Name> = Vec::new();
    for (_, record) in &parsed {
        if record.rtype() != RecordType::Ns {
            continue;
        }
        if record.name() == &apex {
            infra_ttl.get_or_insert(record.ttl());
            if let RData::Ns(target) = record.rdata() {
                apex_ns.push(target.clone());
            }
        } else if !cut_owners.contains(record.name()) {
            cut_owners.push(record.name().clone());
        }
    }
    // Cuts below other cuts belong to the child zone, not this one.
    let all_cuts = cut_owners.clone();
    cut_owners.retain(|c| !all_cuts.iter().any(|other| c.is_proper_subdomain_of(other)));
    let cut_of =
        |name: &Name| -> Option<Name> { name.ancestors().find(|a| cut_owners.contains(a)) };

    // Pass 2b: classify every record.
    let mut apex_dnskey: Option<(u16, u32)> = None;
    let mut glue_addrs: BTreeMap<Name, Ipv4Addr> = BTreeMap::new();
    let mut data: Vec<Record> = Vec::new();
    let mut cuts: BTreeMap<Name, CutParts> = BTreeMap::new();
    for owner in &cut_owners {
        cuts.insert(
            owner.clone(),
            (Vec::new(), Ttl::ZERO, Vec::new(), Vec::new()),
        );
    }
    for (lineno, record) in parsed {
        let owner = record.name().clone();
        match (record.rtype(), cut_of(&owner)) {
            // Glue for the apex's own servers wins over cut membership:
            // the root zone's servers live under `net.`, which the root
            // also delegates.
            (RecordType::A, _) if apex_ns.contains(&owner) => {
                if let RData::A(a) = record.rdata() {
                    glue_addrs.entry(owner).or_insert(*a);
                }
            }
            (RecordType::Ns, Some(cut)) if owner == cut => {
                let entry = cuts.get_mut(&cut).expect("cut exists");
                entry.1 = record.ttl();
                if let RData::Ns(target) = record.rdata() {
                    entry.0.push(target.clone());
                }
            }
            (RecordType::A, Some(cut)) => {
                cuts.get_mut(&cut).expect("cut exists").2.push(record);
            }
            (RecordType::Ds, Some(cut)) if owner == cut => {
                cuts.get_mut(&cut).expect("cut exists").3.push(record);
            }
            (_, Some(cut)) => {
                return Err(err(
                    lineno,
                    format!("record {owner} below delegation cut {cut}"),
                ));
            }
            (RecordType::Ns, None) => {} // apex NS, handled in pass 2a
            (RecordType::Dnskey, None) if owner == apex => {
                if let RData::Dnskey {
                    key_tag,
                    public_key,
                } = record.rdata()
                {
                    apex_dnskey = Some((*key_tag, *public_key));
                }
            }
            _ => data.push(record),
        }
    }

    let mut builder = ZoneBuilder::new(apex.clone());
    if let Some(ttl) = infra_ttl {
        builder = builder.infra_ttl(ttl);
    }
    for ns_name in &apex_ns {
        builder = builder.ns(
            ns_name.clone(),
            glue_addrs
                .get(ns_name)
                .copied()
                .unwrap_or(Ipv4Addr::UNSPECIFIED),
            infra_ttl.unwrap_or(Ttl::from_days(1)),
        );
    }
    if let Some((key_tag, public_key)) = apex_dnskey {
        builder = builder.dnskey(key_tag, public_key);
    }
    for record in data {
        builder = builder.record(record);
    }
    for (child, (ns_names, ns_ttl, glue, ds)) in cuts {
        builder = builder.delegate(Delegation {
            child,
            ns_names,
            ns_ttl,
            glue,
            ds,
        });
    }
    builder.build()
}

fn err(line: usize, detail: impl std::fmt::Display) -> DnsError {
    DnsError::InvalidZone(format!("line {line}: {detail}"))
}

fn parse_name(s: &str, line: usize) -> Result<Name, DnsError> {
    Name::parse(s).map_err(|e| err(line, format!("bad name {s:?}: {e}")))
}

fn parse_ttl(s: &str, line: usize) -> Result<Ttl, DnsError> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b's') => (&s[..s.len() - 1], 1),
        Some(b'm') => (&s[..s.len() - 1], 60),
        Some(b'h') => (&s[..s.len() - 1], 3_600),
        Some(b'd') => (&s[..s.len() - 1], 86_400),
        _ => (s, 1),
    };
    let value: u32 = digits
        .parse()
        .map_err(|_| err(line, format!("bad ttl {s:?}")))?;
    value
        .checked_mul(mult)
        .map(Ttl::from_secs)
        .ok_or_else(|| err(line, format!("ttl {s:?} overflows")))
}

/// Parses one record line: `<owner> <ttl> IN <TYPE> <rdata…>`.
fn parse_record(line: &str, lineno: usize) -> Result<Record, DnsError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 4 {
        return Err(err(lineno, "record needs owner, ttl, class and type"));
    }
    let owner = parse_name(fields[0], lineno)?;
    let ttl = parse_ttl(fields[1], lineno)?;
    if fields[2] != "IN" {
        return Err(err(lineno, format!("unsupported class {:?}", fields[2])));
    }
    let rdata_fields = &fields[4..];
    let one = |i: usize| -> Result<&str, DnsError> {
        rdata_fields
            .get(i)
            .copied()
            .ok_or_else(|| err(lineno, "missing rdata field"))
    };
    let rdata = match fields[3] {
        "A" => RData::A(
            one(0)?
                .parse::<Ipv4Addr>()
                .map_err(|e| err(lineno, format!("bad address: {e}")))?,
        ),
        "AAAA" => RData::Aaaa(
            one(0)?
                .parse::<Ipv6Addr>()
                .map_err(|e| err(lineno, format!("bad address: {e}")))?,
        ),
        "NS" => RData::Ns(parse_name(one(0)?, lineno)?),
        "CNAME" => RData::Cname(parse_name(one(0)?, lineno)?),
        "PTR" => RData::Ptr(parse_name(one(0)?, lineno)?),
        "MX" => RData::Mx {
            preference: one(0)?
                .parse()
                .map_err(|_| err(lineno, "bad MX preference"))?,
            exchange: parse_name(one(1)?, lineno)?,
        },
        "TXT" => RData::Txt(rdata_fields.join(" ").trim_matches('"').to_string()),
        "SOA" => RData::Soa {
            mname: parse_name(one(0)?, lineno)?,
            rname: parse_name(one(1)?, lineno)?,
            serial: one(2)?.parse().map_err(|_| err(lineno, "bad serial"))?,
            refresh: one(3)?.parse().map_err(|_| err(lineno, "bad refresh"))?,
            retry: one(4)?.parse().map_err(|_| err(lineno, "bad retry"))?,
            expire: one(5)?.parse().map_err(|_| err(lineno, "bad expire"))?,
            minimum: one(6)?.parse().map_err(|_| err(lineno, "bad minimum"))?,
        },
        "DS" => RData::Ds {
            key_tag: one(0)?.parse().map_err(|_| err(lineno, "bad key tag"))?,
            digest: u32::from_str_radix(one(1)?, 16)
                .map_err(|_| err(lineno, "bad digest (hex)"))?,
        },
        "DNSKEY" => RData::Dnskey {
            key_tag: one(0)?.parse().map_err(|_| err(lineno, "bad key tag"))?,
            public_key: u32::from_str_radix(one(1)?, 16)
                .map_err(|_| err(lineno, "bad key (hex)"))?,
        },
        other => return Err(err(lineno, format!("unsupported type {other:?}"))),
    };
    Ok(Record::new(owner, ttl, rdata))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
$ORIGIN ucla.edu.
ucla.edu. 1d IN NS ns1.ucla.edu.
ucla.edu. 1d IN NS ns2.ucla.edu.
ns1.ucla.edu. 1d IN A 192.0.2.1
ns2.ucla.edu. 1d IN A 192.0.2.2
www.ucla.edu. 4h IN A 192.0.2.80    ; the web server
web.ucla.edu. 4h IN CNAME www.ucla.edu.
ucla.edu. 4h IN MX 10 mail.ucla.edu.
mail.ucla.edu. 4h IN A 192.0.2.25
; delegation: cs.ucla.edu.
cs.ucla.edu. 12h IN NS ns.cs.ucla.edu.
ns.cs.ucla.edu. 12h IN A 192.0.2.53
";

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parses_a_full_zone() {
        let zone = parse_zone(SAMPLE).unwrap();
        assert_eq!(zone.apex(), &name("ucla.edu"));
        assert_eq!(zone.ns_names().len(), 2);
        assert_eq!(zone.infra_ttl(), Ttl::from_days(1));
        assert!(zone.lookup(&name("www.ucla.edu"), RecordType::A).is_some());
        assert!(zone
            .lookup(&name("web.ucla.edu"), RecordType::Cname)
            .is_some());
        assert!(zone.lookup(&name("ucla.edu"), RecordType::Mx).is_some());
        let d = zone.delegation(&name("cs.ucla.edu")).unwrap();
        assert_eq!(d.ns_names, vec![name("ns.cs.ucla.edu")]);
        assert_eq!(d.glue.len(), 1);
    }

    #[test]
    fn roundtrips_through_to_zone_file() {
        let zone = parse_zone(SAMPLE).unwrap();
        let text = zone.to_zone_file();
        let back = parse_zone(&text).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn ttl_suffixes() {
        assert_eq!(parse_ttl("300", 1).unwrap(), Ttl::from_secs(300));
        assert_eq!(parse_ttl("45s", 1).unwrap(), Ttl::from_secs(45));
        assert_eq!(parse_ttl("30m", 1).unwrap(), Ttl::from_mins(30));
        assert_eq!(parse_ttl("4h", 1).unwrap(), Ttl::from_hours(4));
        assert_eq!(parse_ttl("2d", 1).unwrap(), Ttl::from_days(2));
        assert!(parse_ttl("4x", 1).is_err());
        assert!(parse_ttl("99999999999d", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "$ORIGIN x.com.\nx.com. 1d IN NS ns.x.com.\nbroken line here\n";
        let e = parse_zone(bad).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
    }

    #[test]
    fn rejects_records_before_origin() {
        let e = parse_zone("x.com. 1d IN A 1.2.3.4\n").unwrap_err();
        assert!(e.to_string().contains("before $ORIGIN"), "{e}");
    }

    #[test]
    fn rejects_out_of_zone_owners() {
        let bad = "$ORIGIN x.com.\nx.com. 1d IN NS ns.x.com.\nwww.y.com. 1h IN A 1.2.3.4\n";
        assert!(parse_zone(bad).is_err());
    }

    #[test]
    fn rejects_data_below_delegation() {
        let bad = "$ORIGIN x.com.\nx.com. 1d IN NS ns.x.com.\n\
                   sub.x.com. 1h IN NS ns.sub.x.com.\n\
                   www.sub.x.com. 1h IN CNAME other.x.com.\n";
        let e = parse_zone(bad).unwrap_err();
        assert!(e.to_string().contains("below delegation"), "{e}");
    }

    #[test]
    fn signed_zone_roundtrip() {
        let text = "$ORIGIN s.com.\ns.com. 1d IN NS ns.s.com.\nns.s.com. 1d IN A 1.2.3.4\n\
                    s.com. 1d IN DNSKEY 257 feedf00d\n\
                    child.s.com. 1h IN NS ns.child.s.com.\n\
                    ns.child.s.com. 1h IN A 1.2.3.5\n\
                    child.s.com. 1h IN DS 9 deadbeef\n";
        let zone = parse_zone(text).unwrap();
        assert!(zone.lookup(&name("s.com"), RecordType::Dnskey).is_some());
        let d = zone.delegation(&name("child.s.com")).unwrap();
        assert_eq!(d.ds.len(), 1);
        let back = parse_zone(&zone.to_zone_file()).unwrap();
        assert_eq!(back, zone);
    }
}
