/root/repo/target/debug/deps/fig9-db4efdeade2066ac.d: crates/dns-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-db4efdeade2066ac: crates/dns-bench/src/bin/fig9.rs

crates/dns-bench/src/bin/fig9.rs:
