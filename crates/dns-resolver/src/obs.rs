//! Resolver-side observability: a latency histogram behind a
//! [`Registry`] and an optional per-query [`QueryTrace`].
//!
//! The resolver is clock-free, so resolution latency is *modelled* in
//! virtual milliseconds from the work a resolution performed: every
//! answered upstream query costs one round trip, every unanswered one a
//! full per-try timeout, and backoff waits count at face value (they
//! are already in milliseconds). The model runs on counter deltas the
//! resolver maintains anyway, so it is deterministic — the same trace
//! replayed on any thread count yields bit-identical histograms — and
//! allocation-free, preserving the hot-path guarantees from PR 3.
//!
//! Tracing is off by default; when off, the hooks in
//! [`crate::CachingServer`] reduce to a branch on an `Option`.

use dns_obs::{HistId, LogHistogram, QueryTrace, Registry};

/// Cost model translating resolution work into virtual milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Round-trip time charged per answered upstream query.
    pub rtt_ms: u64,
    /// Timeout charged per unanswered (or mismatched) upstream query.
    pub timeout_ms: u64,
}

impl Default for LatencyModel {
    /// 40 ms per round trip (typical resolver→authority RTT), 1000 ms
    /// per timeout (a stub-resolver per-try timeout).
    fn default() -> Self {
        LatencyModel {
            rtt_ms: 40,
            timeout_ms: 1_000,
        }
    }
}

impl LatencyModel {
    /// Virtual milliseconds for a resolution that sent `sent` upstream
    /// queries of which `lost` went unanswered, and waited `waited_ms`
    /// in retry backoff. A pure cache hit (all zeros) costs 0.
    pub fn latency_ms(&self, sent: u64, lost: u64, waited_ms: u64) -> u64 {
        let answered = sent.saturating_sub(lost);
        answered
            .saturating_mul(self.rtt_ms)
            .saturating_add(lost.saturating_mul(self.timeout_ms))
            .saturating_add(waited_ms)
    }
}

/// Observability state embedded in every [`crate::CachingServer`].
///
/// Clones with the server (the simulator forks servers at attack-window
/// boundaries), so per-window latency distributions fall out of
/// [`LogHistogram::diff`] exactly like counter windows fall out of
/// `ResolverMetrics` subtraction.
#[derive(Debug, Clone)]
pub struct ResolverObs {
    registry: Registry,
    resolve_latency: HistId,
    model: LatencyModel,
    trace: Option<QueryTrace>,
}

impl Default for ResolverObs {
    fn default() -> Self {
        ResolverObs::new()
    }
}

impl ResolverObs {
    /// Fresh observability state with tracing disabled.
    pub fn new() -> Self {
        let mut registry = Registry::new();
        let resolve_latency = registry.histogram(
            "resolve_latency_ms",
            "Modelled resolution latency in virtual milliseconds",
        );
        ResolverObs {
            registry,
            resolve_latency,
            model: LatencyModel::default(),
            trace: None,
        }
    }

    /// The active latency cost model.
    pub fn latency_model(&self) -> LatencyModel {
        self.model
    }

    /// Replaces the latency cost model (before running experiments).
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.model = model;
    }

    /// Records one resolution's modelled latency. Allocation-free.
    #[inline]
    pub fn record_latency(&mut self, ms: u64) {
        self.registry.observe(self.resolve_latency, ms);
    }

    /// The resolution-latency histogram accumulated so far.
    pub fn latency_histogram(&self) -> &LogHistogram {
        self.registry.hist(self.resolve_latency)
    }

    /// The underlying metric registry (for exposition).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Enables per-query tracing; each `resolve` call resets the trace,
    /// so after a resolution the trace describes that query.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(QueryTrace::default());
        }
    }

    /// Disables tracing and drops the trace buffer.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The trace of the most recent resolution, if tracing is enabled.
    pub fn trace(&self) -> Option<&QueryTrace> {
        self.trace.as_ref()
    }

    /// Mutable trace access for the resolver's event hooks.
    #[inline]
    pub(crate) fn trace_mut(&mut self) -> Option<&mut QueryTrace> {
        self.trace.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_charges_work() {
        let m = LatencyModel::default();
        assert_eq!(m.latency_ms(0, 0, 0), 0); // cache hit
        assert_eq!(m.latency_ms(2, 0, 0), 80); // two clean round trips
        assert_eq!(m.latency_ms(3, 2, 300), 40 + 2_000 + 300);
        // Deltas can never make `lost > sent` negative.
        assert_eq!(m.latency_ms(1, 5, 0), 5_000);
    }

    #[test]
    fn trace_toggles_and_latency_accumulates() {
        let mut obs = ResolverObs::new();
        assert!(obs.trace().is_none());
        obs.enable_trace();
        assert!(obs.trace().is_some());
        obs.disable_trace();
        assert!(obs.trace().is_none());

        obs.record_latency(40);
        obs.record_latency(2_340);
        let h = obs.latency_histogram();
        assert_eq!(h.count(), 2);
        assert!(h.p99() >= 2_340);
    }
}
