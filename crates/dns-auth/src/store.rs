//! Zone storage and longest-suffix zone selection.

use dns_core::{Name, Zone};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A collection of zones indexed by apex, with longest-match lookup.
///
/// Zones are stored behind [`Arc`] so that the several authoritative
/// servers of a zone (and a simulator hosting thousands of servers) can
/// share a single copy; [`ZoneStore::insert`] accepts both `Zone` and
/// `Arc<Zone>`.
///
/// A server that hosts both `edu` and `ucla.edu` must answer a query for
/// `www.ucla.edu` from the *deeper* zone; [`ZoneStore::find`] implements
/// that rule.
#[derive(Debug, Clone, Default)]
pub struct ZoneStore {
    zones: BTreeMap<Name, Arc<Zone>>,
}

impl ZoneStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ZoneStore::default()
    }

    /// Adds (or replaces) a zone, returning any previous zone at the same
    /// apex.
    pub fn insert(&mut self, zone: impl Into<Arc<Zone>>) -> Option<Arc<Zone>> {
        let zone = zone.into();
        self.zones.insert(zone.apex().clone(), zone)
    }

    /// Looks up a zone by exact apex.
    pub fn get(&self, apex: &Name) -> Option<&Zone> {
        self.zones.get(apex).map(Arc::as_ref)
    }

    /// Mutable access to a zone by exact apex (copy-on-write when the zone
    /// is shared with other stores).
    pub fn get_mut(&mut self, apex: &Name) -> Option<&mut Zone> {
        self.zones.get_mut(apex).map(Arc::make_mut)
    }

    /// The deepest zone whose apex is `name` or an ancestor of `name`.
    pub fn find(&self, name: &Name) -> Option<&Zone> {
        name.ancestors()
            .find_map(|a| self.zones.get(&a))
            .map(Arc::as_ref)
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether no zones are stored.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates over zones in apex order.
    pub fn iter(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values().map(Arc::as_ref)
    }
}

impl Extend<Zone> for ZoneStore {
    fn extend<T: IntoIterator<Item = Zone>>(&mut self, iter: T) {
        for z in iter {
            self.insert(z);
        }
    }
}

impl FromIterator<Zone> for ZoneStore {
    fn from_iter<T: IntoIterator<Item = Zone>>(iter: T) -> Self {
        let mut s = ZoneStore::new();
        s.extend(iter);
        s
    }
}

impl FromIterator<Arc<Zone>> for ZoneStore {
    fn from_iter<T: IntoIterator<Item = Arc<Zone>>>(iter: T) -> Self {
        let mut s = ZoneStore::new();
        for z in iter {
            s.insert(z);
        }
        s
    }
}

impl fmt::Display for ZoneStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone store ({} zones)", self.zones.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Ttl, ZoneBuilder};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn zone(apex: &str) -> Zone {
        let apex = name(apex);
        let ns = name("ns1").append(&apex).unwrap();
        ZoneBuilder::new(apex)
            .ns(ns, Ipv4Addr::new(192, 0, 2, 1), Ttl::from_days(1))
            .build()
            .unwrap()
    }

    #[test]
    fn find_prefers_deepest_zone() {
        let store: ZoneStore = [zone("edu"), zone("ucla.edu")].into_iter().collect();
        assert_eq!(
            store.find(&name("www.ucla.edu")).unwrap().apex(),
            &name("ucla.edu")
        );
        assert_eq!(store.find(&name("mit.edu")).unwrap().apex(), &name("edu"));
        assert!(store.find(&name("example.com")).is_none());
    }

    #[test]
    fn find_matches_apex_itself() {
        let store: ZoneStore = [zone("ucla.edu")].into_iter().collect();
        assert_eq!(
            store.find(&name("ucla.edu")).unwrap().apex(),
            &name("ucla.edu")
        );
    }

    #[test]
    fn root_zone_catches_everything() {
        let root = ZoneBuilder::new(Name::root())
            .ns(
                name("a.root-servers.net"),
                Ipv4Addr::new(198, 41, 0, 4),
                Ttl::from_days(7),
            )
            .build()
            .unwrap();
        let store: ZoneStore = [root].into_iter().collect();
        assert!(store.find(&name("anything.example.org")).is_some());
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut store = ZoneStore::new();
        assert!(store.insert(zone("ucla.edu")).is_none());
        assert!(store.insert(zone("ucla.edu")).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn shared_zones_are_not_deep_copied() {
        let shared = Arc::new(zone("ucla.edu"));
        let mut a = ZoneStore::new();
        let mut b = ZoneStore::new();
        a.insert(Arc::clone(&shared));
        b.insert(Arc::clone(&shared));
        // Three handles: ours plus one per store.
        assert_eq!(Arc::strong_count(&shared), 3);
    }

    #[test]
    fn get_mut_copies_on_write() {
        let shared = Arc::new(zone("ucla.edu"));
        let mut a = ZoneStore::new();
        let mut b = ZoneStore::new();
        a.insert(Arc::clone(&shared));
        b.insert(Arc::clone(&shared));
        a.get_mut(&name("ucla.edu"))
            .unwrap()
            .set_infra_ttl(Ttl::from_days(5));
        // `a` sees the new TTL, `b` keeps the original.
        assert_eq!(
            a.get(&name("ucla.edu")).unwrap().infra_ttl(),
            Ttl::from_days(5)
        );
        assert_eq!(
            b.get(&name("ucla.edu")).unwrap().infra_ttl(),
            Ttl::from_days(1)
        );
    }

    #[test]
    fn iter_in_apex_order_is_deterministic() {
        let store: ZoneStore = [zone("b.com"), zone("a.com")].into_iter().collect();
        let apexes: Vec<String> = store.iter().map(|z| z.apex().to_string()).collect();
        let mut sorted = apexes.clone();
        sorted.sort();
        assert_eq!(apexes, sorted);
    }
}
