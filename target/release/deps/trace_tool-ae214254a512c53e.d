/root/repo/target/release/deps/trace_tool-ae214254a512c53e.d: crates/dns-bench/src/bin/trace_tool.rs

/root/repo/target/release/deps/trace_tool-ae214254a512c53e: crates/dns-bench/src/bin/trace_tool.rs

crates/dns-bench/src/bin/trace_tool.rs:
