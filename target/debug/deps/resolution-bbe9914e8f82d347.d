/root/repo/target/debug/deps/resolution-bbe9914e8f82d347.d: crates/dns-resolver/tests/resolution.rs Cargo.toml

/root/repo/target/debug/deps/libresolution-bbe9914e8f82d347.rmeta: crates/dns-resolver/tests/resolution.rs Cargo.toml

crates/dns-resolver/tests/resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
