//! The cache-backend abstraction the resolver core is generic over.
//!
//! [`crate::CachingServer`] owns no caches directly; every record-cache,
//! negative-cache and infrastructure-cache access goes through a
//! [`CacheBackend`]. Two implementations ship:
//!
//! * [`LocalBackend`] — the historical single-threaded pair of
//!   [`RecordCache`] + [`InfraCache`], private to one server. This is the
//!   default type parameter, so existing code (and the deterministic
//!   experiment transcripts) are untouched.
//! * [`crate::ShardedCache`] — a clonable handle over lock-sharded caches
//!   shared by many servers/threads, with single-flight coalescing.
//!
//! Reads hand the caller a borrow *inside a closure* (`with_record`,
//! `with_infra`) rather than returning a reference: a sharded backend must
//! release its shard lock when the read ends, which a returned borrow
//! cannot express. The closure style keeps the borrowed-key
//! `(&Name, RecordType)` probe from PR 3 — no key allocation on the hot
//! path for either backend.

use crate::cache::{CacheEntry, Credibility, NegativeInsertOutcome, NegativeKind, RecordCache};
use crate::inflight::{Flight, FlightToken};
use crate::infra::{GapSample, InfraCache, InfraEntry, InfraSource};
use crate::RenewalPolicy;
use dns_core::{Name, RecordType, RrSet, SimDuration, SimTime, Ttl};
use std::net::Ipv4Addr;

/// Storage backend for a [`crate::CachingServer`]: the record cache, the
/// negative cache and the infrastructure cache behind one API.
///
/// All methods take `&mut self` — a shared backend handles its own
/// locking internally and hands out short-lived borrows through the
/// `with_*` closures. Implementations must keep the *semantics* of
/// [`RecordCache`] / [`InfraCache`] exactly: the deterministic experiment
/// transcripts are pinned against them.
pub trait CacheBackend {
    // --- record + negative cache --------------------------------------

    /// Looks up the fresh entry for `(name, rtype)` at `now` and passes it
    /// to `f`. The borrow ends when `f` returns.
    fn with_record<R>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(Option<&CacheEntry>) -> R,
    ) -> R;

    /// Absolute expiry of the fresh entry for `(name, rtype)` at `now`,
    /// if one exists. Provided in terms of [`CacheBackend::with_record`];
    /// backends need not override it.
    ///
    /// This is the invalidation hook for byte-level response caches
    /// layered above the resolver (the daemon's wire fast lane): a
    /// pre-serialized answer must never outlive the record-cache entries
    /// it was compiled from.
    fn record_expiry(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<SimTime> {
        self.with_record(name, rtype, now, |e| e.map(|e| e.expires_at))
    }

    /// Inserts an RRset under [`RecordCache::insert`]'s credibility rules.
    fn insert_record(&mut self, set: RrSet, now: SimTime, credibility: Credibility) -> bool;

    /// Fresh negative-cache lookup.
    fn negative(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<NegativeKind>;

    /// Stores a negative answer for `ttl`, enforcing any configured
    /// negative-cache budget (see [`Self::set_negative_budget`]).
    fn insert_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        ttl: Ttl,
        now: SimTime,
    ) -> NegativeInsertOutcome;

    /// Configures the negative-cache budget (entries/bytes; `None` =
    /// unbounded). A sharded backend divides the budget across shards.
    fn set_negative_budget(&mut self, entries: Option<usize>, bytes: Option<usize>);

    /// Configures how long expired positive entries remain resident for
    /// serve-stale lookups; `None` evicts at expiry (the historical
    /// behaviour, and the default for backends that never serve stale).
    fn set_stale_retention(&mut self, retention: Option<SimDuration>) {
        let _ = retention;
    }

    /// Looks up the expired-but-retained entry for `(name, rtype)` at
    /// `now` and passes it to `f`. A backend without stale retention
    /// always passes `None`; fresh entries never appear here (they are
    /// [`CacheBackend::with_record`]'s domain).
    fn with_stale_record<R>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(Option<&CacheEntry>) -> R,
    ) -> R {
        let _ = (name, rtype, now);
        f(None)
    }

    /// Negative entries currently stored (flood-pressure introspection).
    fn negative_entries(&mut self) -> usize;

    /// Evicts expired data entries; returns how many were evicted.
    fn purge_data(&mut self, now: SimTime) -> usize;

    /// Fresh positive RRsets at `now` (`now` must not move backwards).
    fn data_fresh_rrsets(&mut self, now: SimTime) -> usize;

    /// Individual records across fresh positive RRsets at `now`.
    fn data_fresh_records(&mut self, now: SimTime) -> usize;

    // --- infrastructure cache -----------------------------------------

    /// Seeds the root zone's entry from hard-coded hints.
    fn install_root_hints(&mut self, servers: &[(Name, Ipv4Addr)]);

    /// Looks up `zone`'s infrastructure entry (fresh or not) and passes it
    /// to `f`.
    fn with_infra<R>(&mut self, zone: &Name, f: impl FnOnce(Option<&InfraEntry>) -> R) -> R;

    /// The deepest ancestor zone of `name` that is fresh, has addresses
    /// and passes the parent-recheck bound — where iterative resolution
    /// starts.
    fn deepest_usable_zone(
        &mut self,
        name: &Name,
        now: SimTime,
        max_parent_age: Option<SimDuration>,
    ) -> Option<Name>;

    /// Installs or updates a zone's infrastructure records (see
    /// [`InfraCache::install`]).
    #[allow(clippy::too_many_arguments)]
    fn install_infra(
        &mut self,
        zone: Name,
        ns_names: Vec<Name>,
        addrs: Vec<(Name, Ipv4Addr)>,
        ttl: Ttl,
        now: SimTime,
        source: InfraSource,
        refresh: bool,
    ) -> bool;

    /// Notes demand-driven use of `zone` (renewal credit accounting).
    fn record_zone_use(&mut self, zone: &Name, now: SimTime, policy: Option<&RenewalPolicy>);

    /// Consumes one unit of `zone`'s renewal credit, returning a snapshot
    /// of the entry when credit was available.
    fn consume_renewal_credit(&mut self, zone: &Name) -> Option<InfraEntry>;

    /// Pops the next renewal due at or before `upto`.
    fn next_renewal_due(&mut self, upto: SimTime) -> Option<(SimTime, Name)>;

    /// Earliest pending renewal instant, if any.
    fn peek_renewal_due(&mut self) -> Option<SimTime>;

    /// Drains the Figure-3 gap samples collected so far.
    fn take_gap_samples(&mut self) -> Vec<GapSample>;

    /// Attaches DS records to `zone`'s entry.
    fn set_zone_ds(&mut self, zone: &Name, ds: Vec<(u16, u32)>);

    /// Moves `addr` to the front of `zone`'s server list.
    fn promote_zone_address(&mut self, zone: &Name, addr: Ipv4Addr);

    /// Adds learned `(server name, address)` pairs to `zone`'s entry.
    fn add_zone_addresses(&mut self, zone: &Name, pairs: &[(Name, Ipv4Addr)]);

    /// Drops consumed gap tombstones older than `retention`.
    fn purge_infra_tombstones(&mut self, now: SimTime, retention: SimDuration) -> usize;

    /// Zones with fresh infrastructure entries at `now`.
    fn infra_fresh_zones(&mut self, now: SimTime) -> usize;

    /// Individual infrastructure records across fresh zones at `now`.
    fn infra_fresh_records(&mut self, now: SimTime) -> usize;

    // --- single flight -------------------------------------------------

    /// Claims or joins the in-flight fetch for `(name, rtype)`.
    ///
    /// A backend without coalescing always returns
    /// `Flight::Lead(FlightToken::solo())`. A backend enforcing a
    /// per-zone inflight cap (see [`Self::set_zone_inflight_cap`]) may
    /// return [`Flight::Suppressed`] instead of opening a new flight.
    fn begin_flight(&mut self, name: &Name, rtype: RecordType) -> Flight {
        let _ = (name, rtype);
        Flight::Lead(FlightToken::solo())
    }

    /// Caps concurrent open flights per target-zone bucket; `None` =
    /// uncapped. Only meaningful for shared backends — a single-threaded
    /// backend never has more than one flight open.
    fn set_zone_inflight_cap(&mut self, cap: Option<u32>) {
        let _ = cap;
    }

    /// A snapshot of the backend's own observability registry (shard
    /// counters, coalescing counters), if it keeps one.
    fn obs_registry(&self) -> Option<dns_obs::Registry> {
        None
    }
}

/// The single-threaded backend: one [`RecordCache`] + one [`InfraCache`],
/// owned by exactly one [`crate::CachingServer`]. This is the default
/// backend and preserves the historical behaviour bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct LocalBackend {
    cache: RecordCache,
    infra: InfraCache,
}

impl LocalBackend {
    /// An empty backend.
    pub fn new() -> Self {
        LocalBackend::default()
    }

    /// Read access to the record cache (tests, metrics).
    pub fn record_cache(&self) -> &RecordCache {
        &self.cache
    }

    /// Read access to the infrastructure cache.
    pub fn infra_cache(&self) -> &InfraCache {
        &self.infra
    }
}

impl CacheBackend for LocalBackend {
    #[inline]
    fn with_record<R>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(Option<&CacheEntry>) -> R,
    ) -> R {
        f(self.cache.get(name, rtype, now))
    }

    #[inline]
    fn insert_record(&mut self, set: RrSet, now: SimTime, credibility: Credibility) -> bool {
        self.cache.insert(set, now, credibility)
    }

    #[inline]
    fn negative(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> Option<NegativeKind> {
        self.cache.get_negative(name, rtype, now)
    }

    #[inline]
    fn insert_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        ttl: Ttl,
        now: SimTime,
    ) -> NegativeInsertOutcome {
        self.cache.insert_negative(name, rtype, kind, ttl, now)
    }

    #[inline]
    fn set_negative_budget(&mut self, entries: Option<usize>, bytes: Option<usize>) {
        self.cache.set_negative_budget(entries, bytes);
    }

    #[inline]
    fn set_stale_retention(&mut self, retention: Option<SimDuration>) {
        self.cache.set_stale_retention(retention);
    }

    #[inline]
    fn with_stale_record<R>(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(Option<&CacheEntry>) -> R,
    ) -> R {
        f(self.cache.get_stale(name, rtype, now))
    }

    #[inline]
    fn negative_entries(&mut self) -> usize {
        self.cache.negative_len()
    }

    #[inline]
    fn purge_data(&mut self, now: SimTime) -> usize {
        self.cache.purge_expired(now)
    }

    #[inline]
    fn data_fresh_rrsets(&mut self, now: SimTime) -> usize {
        self.cache.fresh_len(now)
    }

    #[inline]
    fn data_fresh_records(&mut self, now: SimTime) -> usize {
        self.cache.fresh_record_count(now)
    }

    #[inline]
    fn install_root_hints(&mut self, servers: &[(Name, Ipv4Addr)]) {
        self.infra.install_root_hints(servers);
    }

    #[inline]
    fn with_infra<R>(&mut self, zone: &Name, f: impl FnOnce(Option<&InfraEntry>) -> R) -> R {
        f(self.infra.get(zone))
    }

    #[inline]
    fn deepest_usable_zone(
        &mut self,
        name: &Name,
        now: SimTime,
        max_parent_age: Option<SimDuration>,
    ) -> Option<Name> {
        self.infra
            .deepest_usable_ancestor(name, now, max_parent_age)
            .map(|e| e.zone.clone())
    }

    #[inline]
    fn install_infra(
        &mut self,
        zone: Name,
        ns_names: Vec<Name>,
        addrs: Vec<(Name, Ipv4Addr)>,
        ttl: Ttl,
        now: SimTime,
        source: InfraSource,
        refresh: bool,
    ) -> bool {
        self.infra
            .install(zone, ns_names, addrs, ttl, now, source, refresh)
    }

    #[inline]
    fn record_zone_use(&mut self, zone: &Name, now: SimTime, policy: Option<&RenewalPolicy>) {
        self.infra.record_use(zone, now, policy);
    }

    #[inline]
    fn consume_renewal_credit(&mut self, zone: &Name) -> Option<InfraEntry> {
        self.infra.consume_renewal_credit(zone)
    }

    #[inline]
    fn next_renewal_due(&mut self, upto: SimTime) -> Option<(SimTime, Name)> {
        self.infra.next_renewal_due(upto)
    }

    #[inline]
    fn peek_renewal_due(&mut self) -> Option<SimTime> {
        self.infra.peek_renewal_due()
    }

    #[inline]
    fn take_gap_samples(&mut self) -> Vec<GapSample> {
        self.infra.take_gap_samples()
    }

    #[inline]
    fn set_zone_ds(&mut self, zone: &Name, ds: Vec<(u16, u32)>) {
        self.infra.set_ds(zone, ds);
    }

    #[inline]
    fn promote_zone_address(&mut self, zone: &Name, addr: Ipv4Addr) {
        self.infra.promote_address(zone, addr);
    }

    #[inline]
    fn add_zone_addresses(&mut self, zone: &Name, pairs: &[(Name, Ipv4Addr)]) {
        self.infra.add_addresses(zone, pairs);
    }

    #[inline]
    fn purge_infra_tombstones(&mut self, now: SimTime, retention: SimDuration) -> usize {
        self.infra.purge_tombstones(now, retention)
    }

    #[inline]
    fn infra_fresh_zones(&mut self, now: SimTime) -> usize {
        self.infra.fresh_zone_count(now)
    }

    #[inline]
    fn infra_fresh_records(&mut self, now: SimTime) -> usize {
        self.infra.fresh_record_count(now)
    }
}
