/root/repo/target/debug/deps/dns_sim-04f6c8194a4625e7.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

/root/repo/target/debug/deps/libdns_sim-04f6c8194a4625e7.rlib: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

/root/repo/target/debug/deps/libdns_sim-04f6c8194a4625e7.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/attack.rs:
crates/dns-sim/src/damage.rs:
crates/dns-sim/src/driver.rs:
crates/dns-sim/src/experiment.rs:
crates/dns-sim/src/farm.rs:
crates/dns-sim/src/gap.rs:
crates/dns-sim/src/network.rs:
crates/dns-sim/src/sweep.rs:
