/root/repo/target/debug/deps/fig11-fa8dedf5e532bd1b.d: crates/dns-bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-fa8dedf5e532bd1b.rmeta: crates/dns-bench/src/bin/fig11.rs Cargo.toml

crates/dns-bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
