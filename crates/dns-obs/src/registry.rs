//! A registry of named monotone counters and log-scale histograms.
//!
//! Metrics are registered once at setup time, yielding copyable
//! [`CounterId`] / [`HistId`] handles; the record path (`inc`, `add`,
//! `observe`) then indexes straight into pre-sized vectors and never
//! allocates or formats. Rendering — Prometheus text for scrapes,
//! compact `name=value` lines for `CHAOS TXT` exposition — happens only
//! on the (cold) read path.

use crate::hist::LogHistogram;

/// Handle to a registered counter; cheap to copy and store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram; cheap to copy and store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Debug, Clone)]
struct Counter {
    name: &'static str,
    help: &'static str,
    value: u64,
}

#[derive(Debug, Clone)]
struct Hist {
    name: &'static str,
    help: &'static str,
    hist: LogHistogram,
}

/// A registry of pre-registered counters and histograms.
///
/// Registration allocates; recording does not. The registry is not
/// internally synchronised — embed it behind whatever lock already
/// guards the component it instruments (e.g. the `Resolved` daemon's
/// `Mutex<CachingServer>`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<Counter>,
    hists: Vec<Hist>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a monotone counter. Names must be unique and valid
    /// Prometheus metric names (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate or invalid name.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> CounterId {
        self.assert_fresh(name);
        self.counters.push(Counter {
            name,
            help,
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a histogram. Same naming rules as [`Registry::counter`].
    ///
    /// # Panics
    ///
    /// Panics on a duplicate or invalid name.
    pub fn histogram(&mut self, name: &'static str, help: &'static str) -> HistId {
        self.assert_fresh(name);
        self.hists.push(Hist {
            name,
            help,
            hist: LogHistogram::new(),
        });
        HistId(self.hists.len() - 1)
    }

    fn assert_fresh(&self, name: &str) {
        assert!(is_metric_name(name), "invalid metric name: {name:?}");
        assert!(
            self.counters.iter().all(|c| c.name != name)
                && self.hists.iter().all(|h| h.name != name),
            "duplicate metric name: {name:?}"
        );
    }

    /// Increments a counter by 1. Allocation-free.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    /// Adds `delta` to a counter. Allocation-free.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].value += delta;
    }

    /// Sets a counter to an absolute value (for gauges mirrored from an
    /// external source such as `DaemonStats`). Allocation-free.
    #[inline]
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.counters[id.0].value = value;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Records one histogram sample. Allocation-free.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].hist.record(v);
    }

    /// Read access to a registered histogram.
    pub fn hist(&self, id: HistId) -> &LogHistogram {
        &self.hists[id.0].hist
    }

    /// Mutable access to a registered histogram (for merging
    /// per-worker histograms on the cold path).
    pub fn hist_mut(&mut self, id: HistId) -> &mut LogHistogram {
        &mut self.hists[id.0].hist
    }

    /// Renders the whole registry in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` preamble per metric, cumulative `le` buckets
    /// at the non-empty bucket boundaries plus `+Inf`, `_sum` and
    /// `_count` series for histograms. Read path only — allocates.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("# HELP {} {}\n", c.name, c.help));
            out.push_str(&format!("# TYPE {} counter\n", c.name));
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for h in &self.hists {
            out.push_str(&format!("# HELP {} {}\n", h.name, h.help));
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            let mut cumulative = 0u64;
            for (_, hi, n) in h.hist.iter_nonzero() {
                cumulative += n;
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    h.name, hi, cumulative
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{le=\"+Inf\"}} {}\n",
                h.name,
                h.hist.count()
            ));
            out.push_str(&format!("{}_sum {}\n", h.name, h.hist.sum()));
            out.push_str(&format!("{}_count {}\n", h.name, h.hist.count()));
        }
        out
    }

    /// Renders a compact one-line-per-metric snapshot for `CHAOS TXT`
    /// exposition, where each line must fit a 255-byte character-string
    /// and the whole message a 4 KiB UDP datagram. Counters render as
    /// `name=value`; histograms as
    /// `name count=N sum=S p50=A p90=B p99=C`.
    pub fn render_compact(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.counters.len() + self.hists.len());
        for c in &self.counters {
            out.push(format!("{}={}", c.name, c.value));
        }
        for h in &self.hists {
            let hist = &h.hist;
            out.push(format!(
                "{} count={} sum={} p50={} p90={} p99={}",
                h.name,
                hist.count(),
                hist.sum(),
                hist.p50(),
                hist.p90(),
                hist.p99()
            ));
        }
        out
    }
}

/// Whether `name` is a valid Prometheus metric name.
fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates a Prometheus text exposition body: every non-comment line
/// must be `name[{labels}] value`, metric names must be well-formed,
/// values must parse as finite numbers, and no series (name + label
/// set) may repeat. Returns the number of sample lines on success.
///
/// Used by the netd exposition test and the CI smoke step to keep the
/// `CHAOS TXT` / scrape output honest.
pub fn validate_prometheus_text(body: &str) -> Result<usize, String> {
    let mut seen: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let name = match series.split_once('{') {
            Some((name, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!(
                        "line {}: unterminated label set: {line:?}",
                        lineno + 1
                    ));
                }
                name
            }
            None => series,
        };
        if !is_metric_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        if !parsed.is_finite() {
            return Err(format!("line {}: non-finite value {value:?}", lineno + 1));
        }
        if seen.iter().any(|s| s == series) {
            return Err(format!("line {}: duplicate series {series:?}", lineno + 1));
        }
        seen.push(series.to_string());
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_roundtrip() {
        let mut reg = Registry::new();
        let c = reg.counter("queries_total", "Queries received");
        let h = reg.histogram("latency_ms", "Resolution latency");
        reg.inc(c);
        reg.add(c, 2);
        reg.observe(h, 40);
        reg.observe(h, 1000);
        assert_eq!(reg.counter_value(c), 3);
        assert_eq!(reg.hist(h).count(), 2);
    }

    #[test]
    fn prometheus_output_validates() {
        let mut reg = Registry::new();
        let c = reg.counter("served_total", "Answers sent");
        let h = reg.histogram("wall_latency_ms", "Wall-clock latency");
        reg.add(c, 7);
        for v in [3u64, 40, 40, 2000] {
            reg.observe(h, v);
        }
        let text = reg.render_prometheus();
        let samples = validate_prometheus_text(&text).expect("valid exposition");
        // served_total + 3 nonzero buckets + +Inf + _sum + _count.
        assert_eq!(samples, 7);
        assert!(text.contains("# TYPE wall_latency_ms histogram"));
        assert!(text.contains("wall_latency_ms_count 4"));
        assert!(text.contains("le=\"+Inf\"} 4"));
    }

    #[test]
    fn compact_lines_fit_txt_strings() {
        let mut reg = Registry::new();
        let c = reg.counter("retries", "Retries");
        let h = reg.histogram("resolve_latency_ms", "Virtual latency");
        reg.set(c, u64::MAX);
        reg.observe(h, u64::MAX);
        for line in reg.render_compact() {
            assert!(line.len() <= 255, "TXT line too long: {line}");
        }
    }

    #[test]
    fn checker_rejects_garbage() {
        assert!(validate_prometheus_text("1bad_name 3\n").is_err());
        assert!(validate_prometheus_text("x notanumber\n").is_err());
        assert!(validate_prometheus_text("x 1\nx 2\n").is_err());
        assert!(validate_prometheus_text("x{le=\"1\"} 1\nx{le=\"2\"} 2\n").is_ok());
        assert!(validate_prometheus_text("x{le=\"1\"} 1\nx{le=\"1\"} 2\n").is_err());
        assert!(validate_prometheus_text("# just a comment\n\n").unwrap() == 0);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_rejected() {
        let mut reg = Registry::new();
        reg.counter("twice", "first");
        reg.histogram("twice", "second");
    }
}
