/root/repo/target/debug/deps/fig10-12ae81209b8d4e4c.d: crates/dns-bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-12ae81209b8d4e4c.rmeta: crates/dns-bench/src/bin/fig10.rs Cargo.toml

crates/dns-bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
