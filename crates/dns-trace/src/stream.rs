//! Streaming, zero-materialization trace generation.
//!
//! [`TraceStream`] yields [`QueryEvent`]s on demand from the same seeded
//! Zipf/diurnal model as [`WorkloadBuilder::generate`] — in fact
//! `generate` *is* a collected stream, so the two are byte-identical by
//! construction (pinned by the golden transcripts and the property tests
//! in `tests/stream_props.rs`).
//!
//! Resident memory is `O(zones + queries-per-hour)`, never
//! `O(queries)`: the only per-query state is the current hour's sorted
//! arrival offsets (a `Vec<u32>` of at most one hour's volume, ~0.05
//! bytes per trace query at week scale versus ~64+ for a materialized
//! [`QueryEvent`]).
//!
//! [`TraceStream::cursor`] captures a resumable position in O(1) — the
//! RNG state at the current hour's start plus an intra-hour offset — so
//! replay engines can fork a warmed-up simulation and re-stream the
//! remainder deterministically without keeping the stream alive
//! ([`WorkloadBuilder::resume`]).

use crate::{QueryEvent, Trace, Universe, Zipf};
use dns_core::{Label, Name, Question, RecordType, SimTime, HOUR};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::f64::consts::TAU;
use std::sync::Arc;

/// The grouped query-target universe a [`TraceStream`] draws names from:
/// popularity groups (zones) of queryable names.
///
/// Implemented by [`UniverseTargets`] (over a materialized
/// [`Universe`]) and [`InternedNamespace`](crate::InternedNamespace)
/// (zero-copy arena views at millions of zones).
pub trait TargetSource {
    /// Number of target groups (zones with at least one queryable name),
    /// in deterministic generation order.
    fn group_count(&self) -> usize;
    /// Number of queryable names in `group`.
    fn group_len(&self, group: usize) -> usize;
    /// The `i`-th queryable name of `group`. Must be cheap (refcount
    /// bump or arena view) — it runs once per generated query.
    fn target(&self, group: usize, i: usize) -> Name;
}

impl<T: TargetSource + ?Sized> TargetSource for &T {
    fn group_count(&self) -> usize {
        (**self).group_count()
    }
    fn group_len(&self, group: usize) -> usize {
        (**self).group_len(group)
    }
    fn target(&self, group: usize, i: usize) -> Name {
        (**self).target(group, i)
    }
}

impl<T: TargetSource + ?Sized> TargetSource for Arc<T> {
    fn group_count(&self) -> usize {
        (**self).group_count()
    }
    fn group_len(&self, group: usize) -> usize {
        (**self).group_len(group)
    }
    fn target(&self, group: usize, i: usize) -> Name {
        (**self).target(group, i)
    }
}

/// [`Universe::query_targets`] grouped by owning zone, flattened into
/// one shared allocation — cheap to clone (two `Arc` bumps), so attack
/// sweeps can hand a copy to every resumed stream.
#[derive(Debug, Clone)]
pub struct UniverseTargets {
    names: Arc<[Name]>,
    /// `(start, len)` per group, in zone order.
    bounds: Arc<[(u32, u32)]>,
}

impl UniverseTargets {
    /// Groups `universe.query_targets()` by zone.
    ///
    /// Zone indices are non-decreasing in generation order, so grouping
    /// is a run-length pass — exactly the groups the materialized
    /// generator's sort-by-zone-index produced.
    pub fn new(universe: &Universe) -> Self {
        let mut names: Vec<Name> = Vec::new();
        let mut bounds: Vec<(u32, u32)> = Vec::new();
        let mut current: Option<usize> = None;
        for (name, zone_idx) in universe.query_targets() {
            if current != Some(zone_idx) {
                bounds.push((names.len() as u32, 0));
                current = Some(zone_idx);
            }
            names.push(name);
            bounds.last_mut().expect("group open").1 += 1;
        }
        UniverseTargets {
            names: names.into(),
            bounds: bounds.into(),
        }
    }
}

impl TargetSource for UniverseTargets {
    fn group_count(&self) -> usize {
        self.bounds.len()
    }
    fn group_len(&self, group: usize) -> usize {
        self.bounds[group].1 as usize
    }
    fn target(&self, group: usize, i: usize) -> Name {
        self.names[self.bounds[group].0 as usize + i].clone()
    }
}

/// The workload-shape parameters a stream runs with (a copy of the
/// [`WorkloadBuilder`](crate::WorkloadBuilder) fields).
#[derive(Debug, Clone)]
pub(crate) struct StreamShape {
    pub(crate) name: String,
    pub(crate) days: u64,
    pub(crate) clients: u32,
    pub(crate) total_queries: u64,
    pub(crate) zipf_alpha: f64,
    pub(crate) nxdomain_fraction: f64,
    pub(crate) mx_fraction: f64,
    pub(crate) diurnal_amplitude: f64,
}

impl StreamShape {
    fn diurnal_weight(&self, hour_of_day: u64) -> f64 {
        // Peak mid-afternoon, trough early morning.
        let phase = (hour_of_day as f64 - 15.0) / 24.0 * TAU;
        1.0 + self.diurnal_amplitude * phase.cos()
    }

    /// Per-hour query counts: diurnal weights, floored shares, remainder
    /// distributed deterministically round-robin. No RNG involved.
    fn hour_counts(&self) -> Vec<u64> {
        let hours = self.days * 24;
        let weights: Vec<f64> = (0..hours).map(|h| self.diurnal_weight(h % 24)).collect();
        let total_weight: f64 = weights.iter().sum();
        let mut counts: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total_weight) * self.total_queries as f64).floor() as u64)
            .collect();
        let mut assigned: u64 = counts.iter().sum();
        let n_hours = counts.len();
        let mut h = 0;
        while assigned < self.total_queries {
            counts[h % n_hours] += 1;
            assigned += 1;
            h += 1;
        }
        counts
    }
}

/// A deterministic, resumable position inside a [`TraceStream`]: the
/// RNG state at the current hour's start, the hour, and how many events
/// of that hour were already emitted. O(1) to capture and to resume
/// from (resuming redraws at most one hour's offsets and skips at most
/// one hour's events).
#[derive(Debug, Clone)]
pub struct TraceCursor {
    rng: StdRng,
    hour: u64,
    skip: usize,
    emitted: u64,
}

impl TraceCursor {
    /// Queries emitted before this position.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// An iterator of [`QueryEvent`]s generated on demand — see the module
/// docs. Built by [`WorkloadBuilder::stream`](crate::WorkloadBuilder);
/// the same builder's `generate` collects one of these, so streamed and
/// materialized traces are byte-identical for the same seed.
#[derive(Debug, Clone)]
pub struct TraceStream<S: TargetSource> {
    shape: StreamShape,
    source: S,
    /// Shuffled group order: position → original group index.
    order: Vec<u32>,
    zone_zipf: Zipf,
    name_zipfs: Vec<Zipf>,
    counts: Vec<u64>,
    rng: StdRng,
    /// RNG state captured just before the buffered hour's draws — the
    /// cursor anchor.
    hour_rng: StdRng,
    /// Hour whose offsets are buffered.
    cur_hour: u64,
    /// Next hour index to draw.
    next_hour: usize,
    /// Sorted second-offsets of the buffered hour (`< HOUR`, hence u32).
    offsets: Vec<u32>,
    /// Next unconsumed index into `offsets`.
    idx: usize,
    emitted: u64,
}

impl<S: TargetSource> TraceStream<S> {
    pub(crate) fn new(shape: StreamShape, source: S, seed: u64) -> Self {
        assert!(shape.clients > 0, "workload needs at least one client");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_groups = source.group_count();
        assert!(n_groups > 0, "universe has no queryable names");
        // Shuffle so zone popularity rank is independent of generation
        // order (Fisher–Yates with our seeded rng) — the identical draw
        // sequence the materialized generator used on its group vector.
        let mut order: Vec<u32> = (0..n_groups as u32).collect();
        for i in (1..n_groups).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let zone_zipf = Zipf::new(n_groups, shape.zipf_alpha);
        let max_group = (0..n_groups)
            .map(|g| source.group_len(g))
            .max()
            .unwrap_or(1);
        let name_zipfs: Vec<Zipf> = (1..=max_group).map(|n| Zipf::new(n, 0.8)).collect();
        let counts = shape.hour_counts();
        let hour_rng = rng.clone();
        TraceStream {
            shape,
            source,
            order,
            zone_zipf,
            name_zipfs,
            counts,
            rng,
            hour_rng,
            cur_hour: 0,
            next_hour: 0,
            offsets: Vec::new(),
            idx: 0,
            emitted: 0,
        }
    }

    /// Queries emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The trace label this stream generates.
    pub fn trace_name(&self) -> &str {
        &self.shape.name
    }

    /// Days of traffic the stream spans.
    pub fn days(&self) -> u64 {
        self.shape.days
    }

    /// Total queries the stream will emit end to end.
    pub fn total_queries(&self) -> u64 {
        self.shape.total_queries
    }

    /// Captures the current position (O(1)); feed it to
    /// [`WorkloadBuilder::resume`](crate::WorkloadBuilder::resume) to
    /// continue from here in a fresh stream.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            rng: self.hour_rng.clone(),
            hour: self.cur_hour,
            skip: self.idx,
            emitted: self.emitted,
        }
    }

    /// Repositions the stream at `cursor` (captured from a stream with
    /// the same shape, source and seed): reinstalls the hour-start RNG
    /// state, redraws that hour's offsets and skips the already-emitted
    /// prefix — consuming exactly the RNG draws the original did.
    pub(crate) fn seek(&mut self, cursor: &TraceCursor) {
        self.rng = cursor.rng.clone();
        self.hour_rng = cursor.rng.clone();
        self.cur_hour = cursor.hour;
        self.next_hour = cursor.hour as usize;
        self.offsets.clear();
        self.idx = 0;
        self.emitted = cursor.emitted;
        for _ in 0..cursor.skip {
            self.next_event();
        }
        self.emitted = cursor.emitted;
    }

    /// The next query event, or `None` when the trace is exhausted.
    pub fn next_event(&mut self) -> Option<QueryEvent> {
        while self.idx >= self.offsets.len() {
            if self.next_hour >= self.counts.len() {
                return None;
            }
            self.hour_rng = self.rng.clone();
            self.cur_hour = self.next_hour as u64;
            let count = self.counts[self.next_hour];
            self.offsets.clear();
            self.offsets
                .extend((0..count).map(|_| self.rng.random_range(0..HOUR) as u32));
            self.offsets.sort_unstable();
            self.idx = 0;
            self.next_hour += 1;
        }
        let off = u64::from(self.offsets[self.idx]);
        self.idx += 1;
        let hour_start = self.cur_hour * HOUR;
        let group = self.order[self.zone_zipf.sample(&mut self.rng)] as usize;
        let glen = self.source.group_len(group);
        let name = self
            .source
            .target(group, self.name_zipfs[glen - 1].sample(&mut self.rng));
        let question = self.make_question(&name);
        let client = self.rng.random_range(0..self.shape.clients);
        self.emitted += 1;
        Some(QueryEvent {
            at: SimTime::from_secs(hour_start + off),
            client,
            question,
        })
    }

    fn make_question(&mut self, name: &Name) -> Question {
        let roll: f64 = self.rng.random();
        if roll < self.shape.nxdomain_fraction {
            // A name that cannot exist in the generated universe: the
            // generator never emits an `nx…` label.
            let k: u32 = self.rng.random_range(0..1000);
            let zone = name.parent().unwrap_or_else(Name::root);
            let label = Label::new(format!("nx{k}").as_bytes()).expect("valid label");
            if let Ok(nx) = zone.child(label) {
                return Question::new(nx, RecordType::A);
            }
        } else if roll < self.shape.nxdomain_fraction + self.shape.mx_fraction {
            return Question::new(name.clone(), RecordType::Mx);
        }
        Question::new(name.clone(), RecordType::A)
    }

    /// Runs the stream to exhaustion, collecting a materialized
    /// [`Trace`] — the implementation behind
    /// [`WorkloadBuilder::generate`](crate::WorkloadBuilder::generate).
    pub fn collect_trace(mut self) -> Trace {
        let remaining = self.shape.total_queries - self.emitted;
        let mut queries = Vec::with_capacity(remaining as usize);
        while let Some(q) = self.next_event() {
            queries.push(q);
        }
        Trace {
            name: self.shape.name,
            days: self.shape.days,
            clients: self.shape.clients,
            queries,
        }
    }
}

impl<S: TargetSource> Iterator for TraceStream<S> {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        self.next_event()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.shape.total_queries - self.emitted) as usize;
        (remaining, Some(remaining))
    }
}

/// Object-safe streaming interface for replay engines (`dns-sim` boxes
/// streams behind this to stay non-generic over the target source).
pub trait QueryStream: Send {
    /// The next query event, or `None` when exhausted.
    fn next_event(&mut self) -> Option<QueryEvent>;
    /// A resumable cursor at the current position.
    fn cursor(&self) -> TraceCursor;
    /// Days of traffic the stream spans (the replay horizon).
    fn days(&self) -> u64;
    /// Total queries the stream emits end to end.
    fn total_queries(&self) -> u64;
    /// The trace label.
    fn trace_name(&self) -> &str;
}

impl<S: TargetSource + Send> QueryStream for TraceStream<S> {
    fn next_event(&mut self) -> Option<QueryEvent> {
        TraceStream::next_event(self)
    }
    fn cursor(&self) -> TraceCursor {
        TraceStream::cursor(self)
    }
    fn days(&self) -> u64 {
        TraceStream::days(self)
    }
    fn total_queries(&self) -> u64 {
        TraceStream::total_queries(self)
    }
    fn trace_name(&self) -> &str {
        TraceStream::trace_name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSpec, UniverseSpec, WorkloadBuilder};

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    #[test]
    fn streamed_equals_materialized() {
        let u = universe();
        let wb = WorkloadBuilder::new("T", 2, 20, 5_000);
        let materialized = wb.generate(&u, 42);
        let streamed: Vec<QueryEvent> = wb.stream(UniverseTargets::new(&u), 42).collect();
        assert_eq!(materialized.queries, streamed);
    }

    #[test]
    fn stream_over_interned_namespace_is_identical() {
        let spec = UniverseSpec::small();
        let u = spec.build(7);
        let interned = spec.build_interned(7);
        let wb = WorkloadBuilder::new("T", 1, 10, 3_000);
        let via_universe: Vec<QueryEvent> = wb.stream(UniverseTargets::new(&u), 9).collect();
        let via_interned: Vec<QueryEvent> = wb.stream(&interned, 9).collect();
        assert_eq!(via_universe, via_interned);
    }

    #[test]
    fn cursor_resume_continues_byte_identically() {
        let u = universe();
        let targets = UniverseTargets::new(&u);
        let wb = WorkloadBuilder::new("T", 2, 20, 8_000);
        let mut full = wb.stream(targets.clone(), 7);
        let mut prefix: Vec<QueryEvent> = Vec::new();
        for _ in 0..3_123 {
            prefix.push(full.next_event().expect("events remain"));
        }
        let cursor = full.cursor();
        assert_eq!(cursor.emitted(), 3_123);
        let rest_live: Vec<QueryEvent> = full.collect();
        let resumed = wb.resume(targets, 7, &cursor);
        assert_eq!(resumed.emitted(), 3_123);
        let rest_resumed: Vec<QueryEvent> = resumed.collect();
        assert_eq!(rest_live, rest_resumed);
        assert_eq!(prefix.len() + rest_live.len(), 8_000);
    }

    #[test]
    fn cursor_at_start_and_end_are_consistent() {
        let u = universe();
        let targets = UniverseTargets::new(&u);
        let wb = WorkloadBuilder::new("T", 1, 5, 1_000);
        let fresh = wb.stream(targets.clone(), 3);
        let all: Vec<QueryEvent> = wb.resume(targets.clone(), 3, &fresh.cursor()).collect();
        assert_eq!(all.len(), 1_000);
        let mut drained = wb.stream(targets.clone(), 3);
        while drained.next_event().is_some() {}
        let end = drained.cursor();
        assert_eq!(end.emitted(), 1_000);
        let mut after = wb.resume(targets, 3, &end);
        assert!(after.next_event().is_none());
    }

    #[test]
    fn stream_matches_tracespec_generate() {
        let u = universe();
        let spec = TraceSpec::demo().scaled(0.1);
        let materialized = spec.generate(&u, 5);
        let streamed = spec
            .workload()
            .stream(UniverseTargets::new(&u), 5)
            .collect_trace();
        assert_eq!(materialized, streamed);
    }
}
