/root/repo/target/debug/deps/table2-ffbb768a7b24ae2a.d: crates/dns-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-ffbb768a7b24ae2a.rmeta: crates/dns-bench/src/bin/table2.rs Cargo.toml

crates/dns-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
