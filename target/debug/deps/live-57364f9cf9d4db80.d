/root/repo/target/debug/deps/live-57364f9cf9d4db80.d: crates/dns-netd/tests/live.rs

/root/repo/target/debug/deps/live-57364f9cf9d4db80: crates/dns-netd/tests/live.rs

crates/dns-netd/tests/live.rs:
