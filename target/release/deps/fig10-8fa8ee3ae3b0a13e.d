/root/repo/target/release/deps/fig10-8fa8ee3ae3b0a13e.d: crates/dns-bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-8fa8ee3ae3b0a13e: crates/dns-bench/src/bin/fig10.rs

crates/dns-bench/src/bin/fig10.rs:
