/root/repo/target/debug/deps/simulation-a977ba406d08e9f8.d: crates/dns-bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-a977ba406d08e9f8.rmeta: crates/dns-bench/benches/simulation.rs Cargo.toml

crates/dns-bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
