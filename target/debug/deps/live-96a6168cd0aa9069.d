/root/repo/target/debug/deps/live-96a6168cd0aa9069.d: crates/dns-netd/tests/live.rs

/root/repo/target/debug/deps/live-96a6168cd0aa9069: crates/dns-netd/tests/live.rs

crates/dns-netd/tests/live.rs:
