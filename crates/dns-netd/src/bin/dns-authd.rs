//! A standalone authoritative name-server daemon serving master-file
//! zones over UDP.
//!
//! ```text
//! dns-authd --bind 127.0.0.1:5353 zone1.txt zone2.txt …
//! ```
//!
//! Zone files use the dialect documented in [`dns_core::zonefile`] (an
//! `$ORIGIN` line followed by `<owner> <ttl> IN <TYPE> <rdata>` records);
//! `Zone::to_zone_file` and `trace_tool` produce compatible files.

use dns_auth::AuthServer;
use dns_core::zonefile::parse_zone;
use dns_netd::Authd;
use std::net::Ipv4Addr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: dns-authd [--bind ADDR:PORT] <zone-file>…");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut bind = "127.0.0.1:5353".to_string();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--bind" {
            bind = it.next().ok_or("--bind needs a value")?.clone();
        } else {
            files.push(arg.clone());
        }
    }
    if files.is_empty() {
        return Err("no zone files given".to_string());
    }

    let mut server = AuthServer::new(
        "authd.local".parse().expect("static name"),
        Ipv4Addr::LOCALHOST,
    );
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let zone = parse_zone(&text).map_err(|e| format!("{file}: {e}"))?;
        println!("loaded {zone}");
        server.add_zone(zone);
    }

    let daemon = Authd::spawn(server, bind.as_str()).map_err(|e| e.to_string())?;
    println!("serving on {} — ctrl-c to stop", daemon.addr());
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
