/root/repo/target/debug/examples/resilience_tuning-711f05f3ceaae46a.d: examples/resilience_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libresilience_tuning-711f05f3ceaae46a.rmeta: examples/resilience_tuning.rs Cargo.toml

examples/resilience_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
