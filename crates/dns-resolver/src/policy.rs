//! Credit-based TTL-renewal policies (paper §4, "TTL Renewal").
//!
//! Each cached zone carries a *credit*: the number of times its
//! infrastructure records may be re-fetched (renewed) after expiry without
//! any client demand. The four policies differ in how credit is assigned
//! when the zone is used:
//!
//! | policy  | on every use of the zone            | behaviour         |
//! |---------|-------------------------------------|-------------------|
//! | LRU(c)  | credit := c                         | recency-biased    |
//! | LFU(c)  | credit += c, capped at M            | frequency-biased  |
//! | A-LRU(c)| credit := ⌈c·86400 / TTL⌉           | ≈ c extra *days*  |
//! | A-LFU(c)| credit += ⌈c·86400 / TTL⌉, capped   | both              |
//!
//! The adaptive variants normalise by the zone's IRR TTL so that every zone
//! gets the same *extra time* in the cache regardless of its TTL.

use dns_core::{Ttl, DAY};
use std::fmt;

/// Default LFU credit cap (`M` in the paper, which leaves the value open).
pub const DEFAULT_LFU_MAX_CREDIT: u32 = 20;
/// Default cap for the adaptive LFU policy, expressed in days of extra
/// cache time.
pub const DEFAULT_ALFU_MAX_DAYS: u32 = 20;

/// A TTL-renewal policy: how much renewal credit a zone earns when used.
///
/// ```rust
/// use dns_resolver::RenewalPolicy;
/// use dns_core::Ttl;
///
/// let lru = RenewalPolicy::lru(3);
/// assert_eq!(lru.credit_on_use(7, Ttl::from_hours(12)), 3); // reset
///
/// let lfu = RenewalPolicy::lfu(3);
/// assert_eq!(lfu.credit_on_use(7, Ttl::from_hours(12)), 10); // accumulate
///
/// // Adaptive: 3 days of extra time for a 12-hour TTL = 6 renewals.
/// let alru = RenewalPolicy::adaptive_lru(3);
/// assert_eq!(alru.credit_on_use(0, Ttl::from_hours(12)), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenewalPolicy {
    /// `LRU(c)`: set credit to `credit` on every use.
    Lru {
        /// Credit assigned per use.
        credit: u32,
    },
    /// `LFU(c)`: add `credit` per use, saturating at `max_credit`.
    Lfu {
        /// Credit added per use.
        credit: u32,
        /// Saturation cap (`M`).
        max_credit: u32,
    },
    /// `A-LRU(c)`: set credit to `⌈c·86400 / TTL⌉` — about `c` extra days.
    AdaptiveLru {
        /// Extra days of cache time per use.
        days: u32,
    },
    /// `A-LFU(c)`: add `⌈c·86400 / TTL⌉`, saturating at
    /// `⌈max_days·86400 / TTL⌉`.
    AdaptiveLfu {
        /// Extra days added per use.
        days: u32,
        /// Saturation cap in days.
        max_days: u32,
    },
}

impl RenewalPolicy {
    /// `LRU(c)` with the given per-use credit.
    pub const fn lru(credit: u32) -> Self {
        RenewalPolicy::Lru { credit }
    }

    /// `LFU(c)` with the default cap.
    pub const fn lfu(credit: u32) -> Self {
        RenewalPolicy::Lfu {
            credit,
            max_credit: DEFAULT_LFU_MAX_CREDIT,
        }
    }

    /// `A-LRU(c)` granting about `days` extra days.
    pub const fn adaptive_lru(days: u32) -> Self {
        RenewalPolicy::AdaptiveLru { days }
    }

    /// `A-LFU(c)` with the default cap.
    pub const fn adaptive_lfu(days: u32) -> Self {
        RenewalPolicy::AdaptiveLfu {
            days,
            max_days: DEFAULT_ALFU_MAX_DAYS,
        }
    }

    /// The credit a zone holds after one more use, given its current credit
    /// and the TTL of its infrastructure records.
    pub fn credit_on_use(&self, current: u32, ttl: Ttl) -> u32 {
        match *self {
            RenewalPolicy::Lru { credit } => credit,
            RenewalPolicy::Lfu { credit, max_credit } => {
                current.saturating_add(credit).min(max_credit)
            }
            RenewalPolicy::AdaptiveLru { days } => adaptive_credit(days, ttl),
            RenewalPolicy::AdaptiveLfu { days, max_days } => current
                .saturating_add(adaptive_credit(days, ttl))
                .min(adaptive_credit(max_days, ttl).max(1)),
        }
    }

    /// The paper's shorthand for this policy (`LRU_3`, `A-LFU_5`, …).
    pub fn label(&self) -> String {
        match *self {
            RenewalPolicy::Lru { credit } => format!("LRU_{credit}"),
            RenewalPolicy::Lfu { credit, .. } => format!("LFU_{credit}"),
            RenewalPolicy::AdaptiveLru { days } => format!("A-LRU_{days}"),
            RenewalPolicy::AdaptiveLfu { days, .. } => format!("A-LFU_{days}"),
        }
    }
}

/// `⌈days·86400 / TTL⌉`, with a floor of one renewal and a guard against a
/// zero TTL (which would otherwise divide by zero).
fn adaptive_credit(days: u32, ttl: Ttl) -> u32 {
    if days == 0 {
        return 0;
    }
    let ttl_secs = u64::from(ttl.as_secs()).max(1);
    let extra = u64::from(days) * DAY;
    u32::try_from(extra.div_ceil(ttl_secs)).unwrap_or(u32::MAX)
}

impl fmt::Display for RenewalPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_resets_credit() {
        let p = RenewalPolicy::lru(3);
        assert_eq!(p.credit_on_use(0, Ttl::from_hours(1)), 3);
        assert_eq!(p.credit_on_use(10, Ttl::from_hours(1)), 3);
    }

    #[test]
    fn lfu_accumulates_and_saturates() {
        let p = RenewalPolicy::Lfu {
            credit: 3,
            max_credit: 7,
        };
        assert_eq!(p.credit_on_use(0, Ttl::from_hours(1)), 3);
        assert_eq!(p.credit_on_use(3, Ttl::from_hours(1)), 6);
        assert_eq!(p.credit_on_use(6, Ttl::from_hours(1)), 7);
        assert_eq!(p.credit_on_use(7, Ttl::from_hours(1)), 7);
    }

    #[test]
    fn adaptive_lru_scales_inversely_with_ttl() {
        let p = RenewalPolicy::adaptive_lru(3);
        // 1-day TTL → 3 renewals; 12-hour TTL → 6; 5-minute TTL → 864.
        assert_eq!(p.credit_on_use(0, Ttl::from_days(1)), 3);
        assert_eq!(p.credit_on_use(0, Ttl::from_hours(12)), 6);
        assert_eq!(p.credit_on_use(0, Ttl::from_mins(5)), 864);
        // Longer-than-target TTLs still get one renewal.
        assert_eq!(p.credit_on_use(0, Ttl::from_days(7)), 1);
    }

    #[test]
    fn adaptive_lfu_caps_at_max_days_equivalent() {
        let p = RenewalPolicy::AdaptiveLfu {
            days: 3,
            max_days: 6,
        };
        let ttl = Ttl::from_days(1);
        // Per use: 3; cap: 6.
        assert_eq!(p.credit_on_use(0, ttl), 3);
        assert_eq!(p.credit_on_use(3, ttl), 6);
        assert_eq!(p.credit_on_use(6, ttl), 6);
    }

    #[test]
    fn zero_ttl_does_not_divide_by_zero() {
        let p = RenewalPolicy::adaptive_lru(1);
        assert_eq!(p.credit_on_use(0, Ttl::ZERO), DAY as u32);
    }

    #[test]
    fn zero_days_means_no_credit() {
        let p = RenewalPolicy::adaptive_lru(0);
        assert_eq!(p.credit_on_use(5, Ttl::from_hours(1)), 0);
    }

    #[test]
    fn labels_match_paper_shorthand() {
        assert_eq!(RenewalPolicy::lru(1).label(), "LRU_1");
        assert_eq!(RenewalPolicy::lfu(5).label(), "LFU_5");
        assert_eq!(RenewalPolicy::adaptive_lru(3).label(), "A-LRU_3");
        assert_eq!(RenewalPolicy::adaptive_lfu(5).to_string(), "A-LFU_5");
    }
}
