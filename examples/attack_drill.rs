//! Attack drill: how the *position* of the attacked zone shapes the blast
//! radius (paper §3.2, "Factors Affecting Attack Impact").
//!
//! Attacks the root alone, the TLDs alone, and a single popular
//! second-level zone, and shows the failure rate each causes on the same
//! workload.
//!
//! ```sh
//! cargo run --release --example attack_drill
//! ```

use dns_resilience::prelude::*;

/// Runs one attack scenario over the workload and reports the failure
/// percentage inside the attack window.
fn measure(universe: &Universe, scenario: AttackScenario, label: &str) {
    let trace = TraceSpec::demo().generate(universe, 42);
    let start = SimTime::from_days(6);
    let duration = SimDuration::from_hours(12);

    let mut sim = Simulation::new(universe, trace, SimConfig::new(ResolverConfig::vanilla()));
    sim.set_attack(scenario.compile(universe));
    sim.run_until(start);
    let before = sim.metrics();
    sim.run_until(start + duration);
    let window = sim.metrics() - before;
    println!(
        "{label:<34} {:>6.2}% of client queries failed ({} of {})",
        window.failed_in_ratio() * 100.0,
        window.failed_in,
        window.queries_in
    );
}

fn main() {
    let universe = UniverseSpec::small().build(7);
    let start = SimTime::from_days(6);
    let duration = SimDuration::from_hours(12);

    // The root alone: every resolver ships root hints and top-level
    // referrals have multi-day TTLs, so the damage is contained.
    let root_only = AttackScenario::zones(vec![Name::root()], start, duration);
    measure(&universe, root_only, "root only");

    // All TLDs (no root): the workhorse referral layer disappears.
    let universe_tlds: Vec<Name> = universe
        .root_and_tld_apexes()
        .into_iter()
        .filter(|z| !z.is_root())
        .collect();
    let tlds_only = AttackScenario::zones(universe_tlds, start, duration);
    measure(&universe, tlds_only, "all TLDs");

    // Root + TLDs: the paper's headline scenario.
    measure(
        &universe,
        AttackScenario::root_and_tlds(start, duration),
        "root + all TLDs",
    );

    // One popular second-level zone: collateral damage is limited to the
    // names (and descendants) of that zone.
    let sld = universe
        .zones()
        .iter()
        .find(|z| z.apex.label_count() == 2)
        .expect("universe has second-level zones")
        .apex
        .clone();
    let single = AttackScenario::zones(vec![sld.clone()], start, duration);
    measure(&universe, single, &format!("single zone ({sld})"));

    println!();
    println!("A zone's blast radius tracks how many referrals flow through it:");
    println!("TLDs hurt more than the root (root referrals are cached for days),");
    println!("and a leaf zone only takes out its own names.");
}
