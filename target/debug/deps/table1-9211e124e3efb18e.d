/root/repo/target/debug/deps/table1-9211e124e3efb18e.d: crates/dns-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-9211e124e3efb18e.rmeta: crates/dns-bench/src/bin/table1.rs Cargo.toml

crates/dns-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
