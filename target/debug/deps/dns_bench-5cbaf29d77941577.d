/root/repo/target/debug/deps/dns_bench-5cbaf29d77941577.d: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs Cargo.toml

/root/repo/target/debug/deps/libdns_bench-5cbaf29d77941577.rmeta: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs Cargo.toml

crates/dns-bench/src/lib.rs:
crates/dns-bench/src/experiments/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
