/root/repo/target/debug/deps/fig6-d835e59aeda9a4c0.d: crates/dns-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d835e59aeda9a4c0: crates/dns-bench/src/bin/fig6.rs

crates/dns-bench/src/bin/fig6.rs:
