/root/repo/target/debug/deps/fig4-a811473fc8f61d1c.d: crates/dns-bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-a811473fc8f61d1c.rmeta: crates/dns-bench/src/bin/fig4.rs Cargo.toml

crates/dns-bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
