/root/repo/target/release/deps/dns_sim-be8fc4e419472832.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

/root/repo/target/release/deps/libdns_sim-be8fc4e419472832.rlib: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

/root/repo/target/release/deps/libdns_sim-be8fc4e419472832.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/attack.rs:
crates/dns-sim/src/damage.rs:
crates/dns-sim/src/driver.rs:
crates/dns-sim/src/experiment.rs:
crates/dns-sim/src/farm.rs:
crates/dns-sim/src/gap.rs:
crates/dns-sim/src/network.rs:
crates/dns-sim/src/sweep.rs:
