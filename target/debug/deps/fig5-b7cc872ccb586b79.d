/root/repo/target/debug/deps/fig5-b7cc872ccb586b79.d: crates/dns-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b7cc872ccb586b79: crates/dns-bench/src/bin/fig5.rs

crates/dns-bench/src/bin/fig5.rs:
