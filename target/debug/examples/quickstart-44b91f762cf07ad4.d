/root/repo/target/debug/examples/quickstart-44b91f762cf07ad4.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-44b91f762cf07ad4.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
