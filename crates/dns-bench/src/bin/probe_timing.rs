//! Timing probe: how long does one full-scale vanilla run take?
//! Not part of the paper reproduction; used to size the experiments.

use dns_bench::{build_trace, standard_universe};
use dns_resolver::ResolverConfig;
use dns_sim::{SimConfig, Simulation};
use dns_trace::TraceSpec;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let universe = standard_universe();
    println!(
        "universe: {} zones in {:.1}s",
        universe.zone_count(),
        t0.elapsed().as_secs_f64()
    );

    let t1 = Instant::now();
    let trace = build_trace(&universe, &TraceSpec::TRC1, 1);
    println!(
        "trace: {} queries in {:.1}s",
        trace.queries.len(),
        t1.elapsed().as_secs_f64()
    );

    let t2 = Instant::now();
    let mut sim = Simulation::new(&universe, trace, SimConfig::new(ResolverConfig::vanilla()));
    println!(
        "farm build: {:.1}s ({})",
        t2.elapsed().as_secs_f64(),
        sim.net().farm()
    );

    let t3 = Instant::now();
    sim.run_to_end();
    let m = sim.metrics();
    println!(
        "replay: {:.1}s — in={} out={} hits={:.1}%",
        t3.elapsed().as_secs_f64(),
        m.queries_in,
        m.queries_out,
        m.hit_ratio() * 100.0
    );
}
