//! A greedy approximation of the paper's §6 *maximum damage attack*: given
//! a budget of zones to attack, which choice maximises failed queries?
//!
//! The paper observes that finding the true optimum is impractical (it
//! needs an oracle over future queries and cascading-failure timing), and
//! suggests counting upcoming queries towards descendants. This module
//! implements that counting heuristic as a greedy set cover: repeatedly
//! pick the zone whose subtree contains the most not-yet-covered upcoming
//! queries.

use crate::{AttackScenario, SimConfig, Simulation};
use dns_core::{Name, SimDuration, SimTime};
use dns_resolver::ResolverConfig;
use dns_trace::{Trace, Universe};
use std::collections::HashMap;
use std::fmt;

/// The zones a budgeted attacker should hit, with the query coverage the
/// heuristic attributes to each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamagePlan {
    /// `(zone, upcoming queries newly covered by attacking it)`, in pick
    /// order.
    pub picks: Vec<(Name, u64)>,
}

impl DamagePlan {
    /// The planned target zones.
    pub fn zones(&self) -> Vec<Name> {
        self.picks.iter().map(|(z, _)| z.clone()).collect()
    }

    /// Total queries the heuristic expects to disrupt.
    pub fn covered(&self) -> u64 {
        self.picks.iter().map(|&(_, n)| n).sum()
    }
}

impl fmt::Display for DamagePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "damage plan ({} zones, {} queries covered)",
            self.picks.len(),
            self.covered()
        )
    }
}

/// Greedily selects up to `budget` zones maximising coverage of the
/// queries in `[window_start, window_end)`.
///
/// The root is excluded: the paper's positional analysis (§3.2) notes
/// that although every name descends from the root, root referrals are
/// cached for days, making TLD-level targets more damaging per zone —
/// and including the root would trivially cover everything.
pub fn greedy_max_damage(
    universe: &Universe,
    trace: &Trace,
    window_start: SimTime,
    window_end: SimTime,
    budget: usize,
) -> DamagePlan {
    // The deepest owning zone of each upcoming query.
    let queries = trace.queries_between(window_start, window_end);
    let mut owner_of: Vec<Option<Name>> = Vec::with_capacity(queries.len());
    for q in queries {
        owner_of.push(universe.zone_of(&q.question.name).map(|z| z.apex.clone()));
    }

    let mut covered = vec![false; queries.len()];
    let mut picks = Vec::new();
    for _ in 0..budget {
        // Count uncovered queries per candidate zone: every ancestor zone
        // of the query's owner (excluding the root) is a candidate.
        let mut counts: HashMap<Name, u64> = HashMap::new();
        for (i, owner) in owner_of.iter().enumerate() {
            if covered[i] {
                continue;
            }
            let Some(owner) = owner else { continue };
            for anc in owner.ancestors() {
                if anc.is_root() {
                    break;
                }
                if universe.get(&anc).is_some() {
                    *counts.entry(anc).or_default() += 1;
                }
            }
        }
        let Some((zone, gain)) = counts
            .into_iter()
            .max_by_key(|&(ref z, n)| (n, std::cmp::Reverse(z.label_count()), z.clone()))
        else {
            break;
        };
        if gain == 0 {
            break;
        }
        for (i, owner) in owner_of.iter().enumerate() {
            if covered[i] {
                continue;
            }
            if let Some(owner) = owner {
                if owner.is_subdomain_of(&zone) {
                    covered[i] = true;
                }
            }
        }
        picks.push((zone, gain));
    }
    DamagePlan { picks }
}

/// Simulates an attack plan and returns the % of client queries failing
/// inside the window (vanilla resolver — the attacker's best case).
pub fn evaluate_plan(
    universe: &Universe,
    trace: &Trace,
    zones: Vec<Name>,
    window_start: SimTime,
    duration: SimDuration,
) -> f64 {
    let mut sim = Simulation::new(
        universe,
        trace.clone(),
        SimConfig::new(ResolverConfig::vanilla()),
    );
    sim.set_attack(AttackScenario::zones(zones, window_start, duration).compile(universe));
    sim.run_until(window_start);
    let before = sim.metrics();
    sim.run_until(window_start + duration);
    let window = sim.metrics() - before;
    window.failed_in_ratio() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_trace::{TraceSpec, UniverseSpec};

    fn setup() -> (Universe, Trace) {
        let u = UniverseSpec::small().build(7);
        let t = TraceSpec::demo().scaled(0.25).generate(&u, 5);
        (u, t)
    }

    #[test]
    fn greedy_prefers_high_traffic_zones() {
        let (u, t) = setup();
        let start = SimTime::from_days(6);
        let end = start + SimDuration::from_hours(6);
        let plan = greedy_max_damage(&u, &t, start, end, 5);
        assert_eq!(plan.picks.len(), 5);
        // Picks are ordered by decreasing marginal gain.
        assert!(plan.picks.windows(2).all(|w| w[0].1 >= w[1].1));
        // The heuristic never selects the root.
        assert!(plan.picks.iter().all(|(z, _)| !z.is_root()));
        // Coverage never exceeds the window's query count.
        let window_queries = t.queries_between(start, end).len() as u64;
        assert!(plan.covered() <= window_queries);
        // With Zipf traffic, a handful of zones covers a sizeable share.
        assert!(
            plan.covered() * 4 >= window_queries,
            "5 zones should cover >=25% of a Zipf window, got {}/{}",
            plan.covered(),
            window_queries
        );
    }

    #[test]
    fn picks_do_not_overlap_in_coverage() {
        let (u, t) = setup();
        let start = SimTime::from_days(6);
        let end = start + SimDuration::from_hours(6);
        let plan = greedy_max_damage(&u, &t, start, end, 8);
        // No pick is an ancestor of another (its queries would already be
        // covered, so the greedy gain would have been zero).
        for (i, (a, _)) in plan.picks.iter().enumerate() {
            for (b, _) in plan.picks.iter().skip(i + 1) {
                assert!(
                    !a.is_subdomain_of(b) && !b.is_subdomain_of(a),
                    "{a} and {b} overlap"
                );
            }
        }
    }

    #[test]
    fn planned_attack_beats_random_zones() {
        let (u, t) = setup();
        let start = SimTime::from_days(6);
        let duration = SimDuration::from_hours(6);
        let plan = greedy_max_damage(&u, &t, start, start + duration, 5);
        let planned = evaluate_plan(&u, &t, plan.zones(), start, duration);

        // Five arbitrary (low-traffic) zones for comparison.
        let random: Vec<Name> = u
            .zones()
            .iter()
            .filter(|z| z.apex.label_count() == 2)
            .rev()
            .take(5)
            .map(|z| z.apex.clone())
            .collect();
        let unplanned = evaluate_plan(&u, &t, random, start, duration);
        assert!(
            planned > unplanned,
            "greedy ({planned:.2}%) should out-damage arbitrary zones ({unplanned:.2}%)"
        );
    }

    #[test]
    fn empty_window_yields_empty_plan() {
        let (u, t) = setup();
        let start = SimTime::from_days(100);
        let plan = greedy_max_damage(&u, &t, start, start + SimDuration::from_hours(1), 5);
        assert!(plan.picks.is_empty());
        assert_eq!(plan.covered(), 0);
    }
}
