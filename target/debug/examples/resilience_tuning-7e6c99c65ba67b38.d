/root/repo/target/debug/examples/resilience_tuning-7e6c99c65ba67b38.d: examples/resilience_tuning.rs

/root/repo/target/debug/examples/resilience_tuning-7e6c99c65ba67b38: examples/resilience_tuning.rs

examples/resilience_tuning.rs:
