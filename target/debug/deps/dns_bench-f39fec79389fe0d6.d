/root/repo/target/debug/deps/dns_bench-f39fec79389fe0d6.d: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/debug/deps/libdns_bench-f39fec79389fe0d6.rlib: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/debug/deps/libdns_bench-f39fec79389fe0d6.rmeta: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

crates/dns-bench/src/lib.rs:
crates/dns-bench/src/experiments/mod.rs:
