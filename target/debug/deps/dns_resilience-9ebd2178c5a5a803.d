/root/repo/target/debug/deps/dns_resilience-9ebd2178c5a5a803.d: src/lib.rs

/root/repo/target/debug/deps/libdns_resilience-9ebd2178c5a5a803.rlib: src/lib.rs

/root/repo/target/debug/deps/libdns_resilience-9ebd2178c5a5a803.rmeta: src/lib.rs

src/lib.rs:
