/root/repo/target/debug/deps/paper_claims-1219224037bb08b9.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-1219224037bb08b9: tests/paper_claims.rs

tests/paper_claims.rs:
