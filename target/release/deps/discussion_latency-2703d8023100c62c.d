/root/repo/target/release/deps/discussion_latency-2703d8023100c62c.d: crates/dns-bench/src/bin/discussion_latency.rs

/root/repo/target/release/deps/discussion_latency-2703d8023100c62c: crates/dns-bench/src/bin/discussion_latency.rs

crates/dns-bench/src/bin/discussion_latency.rs:
