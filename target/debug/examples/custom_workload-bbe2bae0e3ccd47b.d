/root/repo/target/debug/examples/custom_workload-bbe2bae0e3ccd47b.d: examples/custom_workload.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_workload-bbe2bae0e3ccd47b.rmeta: examples/custom_workload.rs Cargo.toml

examples/custom_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
