/root/repo/target/debug/examples/attack_drill-2dea1cbdf414bf9a.d: examples/attack_drill.rs

/root/repo/target/debug/examples/attack_drill-2dea1cbdf414bf9a: examples/attack_drill.rs

examples/attack_drill.rs:
