/root/repo/target/debug/deps/dns_bench-e55dc9b17a5edd1b.d: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/debug/deps/libdns_bench-e55dc9b17a5edd1b.rlib: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/debug/deps/libdns_bench-e55dc9b17a5edd1b.rmeta: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

crates/dns-bench/src/lib.rs:
crates/dns-bench/src/experiments/mod.rs:
