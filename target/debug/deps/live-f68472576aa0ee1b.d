/root/repo/target/debug/deps/live-f68472576aa0ee1b.d: crates/dns-netd/tests/live.rs Cargo.toml

/root/repo/target/debug/deps/liblive-f68472576aa0ee1b.rmeta: crates/dns-netd/tests/live.rs Cargo.toml

crates/dns-netd/tests/live.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
