//! Live-daemon serve-stale and water-torture tests: the stale slow path
//! must agree byte-for-byte with the wire fast lane (modulo ID, TTL and
//! 0x20 casing), stale answers must never be compiled into the wire
//! cache, and a random-subdomain flood against the batched loopback
//! worker must stay inside the negative-cache budget while the CHAOS
//! TXT snapshot and the Prometheus rendering reconcile with the
//! daemon's own counters.

use dns_auth::AuthServer;
use dns_core::{
    wire, Delegation, Message, Name, Question, RData, Rcode, Record, RecordClass, RecordType,
    ResponseKind, SimDuration, Ttl, ZoneBuilder,
};
use dns_netd::{
    playground, Authd, FaultInjector, LoopbackHub, Resolved, UdpUpstream, CHAOS_METRICS_NAME,
};
use dns_resolver::{CachingServer, ResolverConfig, RetryPolicy, RootHints};
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn client_timeout() -> Duration {
    Duration::from_secs(5)
}

/// Small backoffs so blackout-induced failures arrive quickly.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        initial_backoff_ms: 10,
        backoff_multiplier: 2,
        max_backoff_ms: 80,
        jitter_pct: 50,
        deadline_ms: 500,
    }
}

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

/// Encodes a query for `spelled` and re-imposes the caller's exact
/// mixed-case spelling on the wire bytes.
fn spelled_query(id: u16, spelled: &str, rtype: RecordType) -> Vec<u8> {
    let q = Message::query(id, Question::new(spelled.parse().unwrap(), rtype));
    let mut bytes = wire::encode(&q).unwrap();
    let mut pos = 12;
    for label in spelled.split('.') {
        bytes[pos + 1..pos + 1 + label.len()].copy_from_slice(label.as_bytes());
        pos += 1 + label.len();
    }
    bytes
}

/// One raw datagram exchange, returning the response bytes.
fn raw_exchange(addr: SocketAddr, query: &[u8], timeout: Duration) -> Vec<u8> {
    let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
    sock.set_read_timeout(Some(timeout)).unwrap();
    sock.send_to(query, addr).unwrap();
    let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
    loop {
        let (n, from) = sock.recv_from(&mut buf).unwrap();
        if from == addr && buf[..2] == query[..2] {
            return buf[..n].to_vec();
        }
    }
}

/// Canonical form for "byte-identical modulo query ID, TTL and question
/// casing": decode, deterministically re-encode (normalizes the casing
/// patch), then zero the ID and every TTL field.
fn normalized(bytes: &[u8]) -> Vec<u8> {
    let msg = wire::decode(bytes).expect("response must decode");
    let (mut out, offsets) = wire::encode_with_ttl_offsets(&msg).unwrap();
    out[0] = 0;
    out[1] = 0;
    for off in offsets {
        let off = off as usize;
        out[off..off + 4].copy_from_slice(&[0, 0, 0, 0]);
    }
    out
}

fn wait_for(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

/// Parses the compact `name=value` / `name count=.. p50=..` TXT lines
/// into per-metric key→value maps.
fn parse_snapshot(lines: &[String]) -> HashMap<String, HashMap<String, u64>> {
    let mut out = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once('=') {
            if !name.contains(' ') {
                let mut fields = HashMap::new();
                fields.insert("value".to_string(), value.parse().unwrap());
                out.insert(name.to_string(), fields);
                continue;
            }
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().unwrap().to_string();
        let fields = parts
            .map(|kv| {
                let (k, v) = kv.split_once('=').unwrap();
                (k.to_string(), v.parse().unwrap())
            })
            .collect();
        out.insert(name, fields);
    }
    out
}

/// TXT strings of a CHAOS metrics response.
fn txt_lines(resp: &Message) -> Vec<String> {
    resp.answers
        .iter()
        .filter_map(|r| match r.rdata() {
            RData::Txt(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// A Prometheus counter sample value (`name value` line).
fn prom_counter(body: &str, metric: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{metric} ")))
        .unwrap_or_else(|| panic!("{metric} missing from exposition:\n{body}"))
        .trim()
        .parse()
        .unwrap()
}

/// A two-daemon internet whose one data record carries a 2-second TTL,
/// so a live test can watch it expire in wall-clock time: root delegates
/// `test`, whose zone holds `www.test A` at TTL 2s.
fn boot_short_ttl() -> (Vec<Authd>, HashMap<Ipv4Addr, SocketAddr>, RootHints) {
    let ip_root = Ipv4Addr::new(10, 88, 0, 1);
    let ip_test = Ipv4Addr::new(10, 88, 1, 1);

    let root_zone = ZoneBuilder::new(Name::root())
        .ns(name("a.root-servers.net"), ip_root, Ttl::from_days(7))
        .delegate(Delegation::unsigned(
            name("test"),
            vec![name("ns.test")],
            Ttl::from_days(2),
            vec![Record::new(
                name("ns.test"),
                Ttl::from_days(2),
                RData::A(ip_test),
            )],
        ))
        .build()
        .expect("static zone");
    let test_zone = ZoneBuilder::new(name("test"))
        .ns(name("ns.test"), ip_test, Ttl::from_days(2))
        .a(
            name("www.test"),
            Ipv4Addr::new(192, 0, 2, 80),
            Ttl::from_secs(2),
        )
        .build()
        .expect("static zone");

    let mut daemons = Vec::new();
    let mut routes = HashMap::new();
    for (ip, server_name, zone) in [
        (ip_root, "a.root-servers.net", root_zone),
        (ip_test, "ns.test", test_zone),
    ] {
        let mut server = AuthServer::new(name(server_name), ip);
        server.add_zone(zone);
        let daemon = Authd::spawn(server, "127.0.0.1:0").unwrap();
        routes.insert(ip, daemon.addr());
        daemons.push(daemon);
    }
    let hints = RootHints::new(vec![(name("a.root-servers.net"), ip_root)]);
    (daemons, routes, hints)
}

/// Satellite: the wire fast lane and the stale slow path answer the same
/// bytes modulo query ID, TTL and 0x20 casing — and a stale answer is
/// never compiled into the wire cache (its TTLs are clamped, so the fast
/// lane must not replay it).
#[test]
fn stale_slow_path_agrees_with_wire_fast_lane_and_never_compiles() {
    let (daemons, routes, hints) = boot_short_ttl();
    let route_routes = routes.clone();
    let route_fn = move |ip: Ipv4Addr| -> SocketAddr {
        route_routes
            .get(&ip)
            .copied()
            .unwrap_or_else(|| SocketAddr::from(([127, 0, 0, 1], 9)))
    };
    let udp = UdpUpstream::with_route(Duration::from_millis(300), route_fn).unwrap();
    let (upstream, faults) = FaultInjector::new(udp, 41);
    let config = ResolverConfig::builder()
        .retry(test_retry())
        .seed(9)
        .max_stale(SimDuration::from_hours(1))
        .build();
    let cs = CachingServer::new(config, hints);
    let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0").unwrap();

    // Cold: full resolution, compiled into the wire cache on the way out.
    let q1 = spelled_query(0x1111, "www.test", RecordType::A);
    let r1 = raw_exchange(resolver.addr(), &q1, client_timeout());
    assert_eq!(wire::decode(&r1).unwrap().kind(), ResponseKind::Answer);
    assert!(
        wait_for(Duration::from_secs(1), || resolver.wire_cache_len() >= 1),
        "positive answer must be compiled into the wire cache"
    );

    // Hot, scrambled casing: answered by the fast lane from compiled bytes.
    let q2 = spelled_query(0x2222, "WWW.TEST", RecordType::A);
    let r2 = raw_exchange(resolver.addr(), &q2, client_timeout());
    assert!(
        wait_for(Duration::from_secs(1), || resolver.stats().wire_hits >= 1),
        "repeat query must be served by the fast lane: {}",
        resolver.stats()
    );

    // Let the 2s record expire, then black out the entire upstream
    // internet: the next query misses the (expired) wire entry, burns
    // the demand fetch's whole retry budget, and serves stale.
    std::thread::sleep(Duration::from_secs(3));
    let ips: Vec<Ipv4Addr> = routes.keys().copied().collect();
    faults.blackout(&ips, Duration::from_secs(3600));
    let q3 = spelled_query(0x3333, "wWw.TesT", RecordType::A);
    let r3 = raw_exchange(resolver.addr(), &q3, client_timeout());
    let m3 = wire::decode(&r3).unwrap();
    assert_eq!(
        m3.kind(),
        ResponseKind::Answer,
        "blackout probe must serve stale, not SERVFAIL"
    );
    assert!(
        wait_for(Duration::from_secs(1), || resolver.metrics().stale_served
            >= 1),
        "stale serve must be counted: {}",
        resolver.metrics()
    );
    for r in &m3.answers {
        assert!(
            r.ttl().as_secs() <= 30,
            "stale TTLs are clamped to the advertised cap: {}",
            r.ttl()
        );
        assert!(r.ttl().as_secs() > 0, "stale TTLs never underflow to 0");
    }

    // The contract: all three lanes (cold slow path, wire fast lane,
    // stale slow path) agree modulo ID, TTL and casing.
    assert_eq!(normalized(&r1), normalized(&r2));
    assert_eq!(normalized(&r1), normalized(&r3));

    // A stale answer must never be compiled into the fast lane: a repeat
    // probe takes the slow path again (stale again), wire hits frozen.
    let hits_before = resolver.stats().wire_hits;
    let q4 = spelled_query(0x4444, "www.test", RecordType::A);
    let r4 = raw_exchange(resolver.addr(), &q4, client_timeout());
    assert_eq!(wire::decode(&r4).unwrap().kind(), ResponseKind::Answer);
    assert!(
        wait_for(Duration::from_secs(1), || resolver.metrics().stale_served
            >= 2),
        "second blackout probe must also serve stale: {}",
        resolver.metrics()
    );
    assert_eq!(
        resolver.stats().wire_hits,
        hits_before,
        "a stale answer must never be served by the wire fast lane"
    );
    let metrics = resolver.metrics();
    assert_eq!(metrics.stale_expired_unserved, 0, "{metrics}");

    // The stale counters reach both exposition surfaces and reconcile.
    let chaos = Question::with_class(
        CHAOS_METRICS_NAME.parse().unwrap(),
        RecordType::Txt,
        RecordClass::Ch,
    );
    let resp = dns_netd::client::query_question(resolver.addr(), chaos, client_timeout()).unwrap();
    assert_eq!(resp.header.rcode, Rcode::NoError);
    let snapshot = parse_snapshot(&txt_lines(&resp));
    assert_eq!(
        snapshot["resolver_stale_served"]["value"],
        metrics.stale_served
    );
    assert_eq!(
        snapshot["resolver_stale_expired_unserved"]["value"],
        metrics.stale_expired_unserved
    );
    let body = resolver.prometheus();
    dns_obs::validate_prometheus_text(&body).expect("valid exposition text");
    assert_eq!(
        prom_counter(&body, "resolver_stale_served"),
        metrics.stale_served
    );
    assert!(metrics.stale_served >= 2);

    resolver.stop();
    for d in daemons {
        d.stop();
    }
}

/// Satellite: a water-torture flood (random subdomains of a real zone)
/// through the batched loopback worker loop must stay inside the
/// negative-cache entry budget, leave legitimate hot names answerable,
/// and keep the CHAOS TXT snapshot, the Prometheus rendering and the
/// daemon's in-process counters in agreement — including every
/// serve-stale counter.
#[test]
fn loopback_water_torture_holds_neg_budget_and_reconciles_metrics() {
    const NEG_CAP: u32 = 32;
    const FLOOD: usize = 120;

    let net = playground::boot().unwrap();
    let udp = UdpUpstream::with_route(Duration::from_millis(300), net.route_fn()).unwrap();
    let (upstream, _faults) = FaultInjector::new(udp, 31);
    let config = ResolverConfig::builder()
        .retry(test_retry())
        .seed(8)
        .max_stale(SimDuration::from_hours(1))
        .neg_cache_max_entries(NEG_CAP)
        .max_ns_fetch(4)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let hub = LoopbackHub::new();
    let resolver = Resolved::spawn_io(vec![cs], vec![upstream], vec![hub.io()]).unwrap();
    let peer = |port: u16| -> SocketAddr { ([127, 0, 0, 1], port).into() };

    // Warm one legitimate name; it compiles into the wire cache.
    hub.inject(
        &spelled_query(0x0001, "www.example.com", RecordType::A),
        peer(5000),
    );
    assert!(
        wait_for(client_timeout(), || resolver.served() >= 1),
        "legit warm query must answer: {}",
        resolver.stats()
    );
    let warm = hub.drain_sent();
    assert_eq!(warm.len(), 1);
    assert_eq!(
        wire::decode(&warm[0].0).unwrap().kind(),
        ResponseKind::Answer
    );

    // The torture: a flood of never-repeating random subdomains, each a
    // full recursive resolution ending in NXDOMAIN.
    for i in 0..FLOOD {
        let qname = format!("r{i:03}.example.com");
        hub.inject(
            &spelled_query(0x1000 + i as u16, &qname, RecordType::A),
            peer(6000 + i as u16),
        );
    }
    assert!(
        wait_for(Duration::from_secs(30), || {
            resolver.served() > FLOOD as u64
        }),
        "flood must drain: {}",
        resolver.stats()
    );
    let flood_responses = hub.drain_sent();
    assert_eq!(flood_responses.len(), FLOOD);
    for (bytes, _) in &flood_responses {
        assert_eq!(
            wire::decode(bytes).unwrap().header.rcode,
            Rcode::NxDomain,
            "every torture name is NXDOMAIN"
        );
    }

    // The negative-cache budget held: everything past the cap was
    // evicted under pressure, and the eviction counter says so.
    let metrics = resolver.metrics();
    assert!(
        metrics.neg_evictions_pressure >= (FLOOD as u64) - u64::from(NEG_CAP),
        "budget evictions must cover the flood overflow: {metrics}"
    );

    // The legitimate name still answers — flood pressure never touched
    // the positive data path or the wire fast lane.
    hub.inject(
        &spelled_query(0x0002, "WWW.EXAMPLE.COM", RecordType::A),
        peer(5001),
    );
    assert!(
        wait_for(client_timeout(), || {
            resolver.served() >= 2 + FLOOD as u64
        }),
        "legit repeat must answer after the flood: {}",
        resolver.stats()
    );
    let repeat = hub.drain_sent();
    assert_eq!(repeat.len(), 1);
    assert_eq!(
        wire::decode(&repeat[0].0).unwrap().kind(),
        ResponseKind::Answer
    );
    assert!(
        resolver.stats().wire_hits >= 1,
        "hot name rides the fast lane through the flood: {}",
        resolver.stats()
    );

    // CHAOS TXT snapshot over the loopback hub.
    let chaos = Message::query(
        0x0707,
        Question::with_class(
            CHAOS_METRICS_NAME.parse().unwrap(),
            RecordType::Txt,
            RecordClass::Ch,
        ),
    );
    hub.inject(&wire::encode(&chaos).unwrap(), peer(7000));
    assert!(
        wait_for(client_timeout(), || {
            resolver.served() >= 3 + FLOOD as u64
        }),
        "CHAOS query must be answered"
    );
    let responses = hub.drain_sent();
    assert_eq!(responses.len(), 1);
    let snapshot = parse_snapshot(&txt_lines(&wire::decode(&responses[0].0).unwrap()));

    // Reconcile snapshot vs in-process counters vs Prometheus, counter
    // by counter across the whole serve-stale surface plus the pressure
    // counter the flood exercised.
    let metrics = resolver.metrics();
    let body = resolver.prometheus();
    dns_obs::validate_prometheus_text(&body).expect("valid exposition text");
    for (series, value) in [
        (
            "resolver_neg_evictions_pressure",
            metrics.neg_evictions_pressure,
        ),
        ("resolver_stale_served", metrics.stale_served),
        (
            "resolver_stale_expired_unserved",
            metrics.stale_expired_unserved,
        ),
        ("resolver_refresh_ahead", metrics.refresh_ahead),
        ("resolver_prefetch_issued", metrics.prefetch_issued),
        ("resolver_prefetch_hits", metrics.prefetch_hits),
        ("resolver_prefetch_wasted", metrics.prefetch_wasted),
    ] {
        assert_eq!(
            snapshot[series]["value"], value,
            "CHAOS snapshot must reconcile for {series}"
        );
        assert_eq!(
            prom_counter(&body, series),
            value,
            "Prometheus must reconcile for {series}"
        );
    }
    // No torture name ever re-queried inside the stale window, so the
    // stale machinery stayed silent: serve-stale adds no adversarial
    // surface to a water-torture flood.
    assert_eq!(metrics.stale_served, 0, "{metrics}");

    resolver.stop();
    net.stop();
}
