/root/repo/target/debug/deps/fig3-7d4d3a05e7addb03.d: crates/dns-bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-7d4d3a05e7addb03.rmeta: crates/dns-bench/src/bin/fig3.rs Cargo.toml

crates/dns-bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
