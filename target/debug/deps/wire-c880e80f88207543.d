/root/repo/target/debug/deps/wire-c880e80f88207543.d: crates/dns-bench/benches/wire.rs Cargo.toml

/root/repo/target/debug/deps/libwire-c880e80f88207543.rmeta: crates/dns-bench/benches/wire.rs Cargo.toml

crates/dns-bench/benches/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
