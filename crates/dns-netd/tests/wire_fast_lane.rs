//! Wire fast-lane integration tests: 0x20 casing echo over real UDP,
//! EDNS0/OPT handling, wire-cache hit behaviour, and the batched
//! loopback (`spawn_io` + `LoopbackHub`) path driven under fault
//! injection — the same worker loop the UDP daemon runs, no sockets.

use dns_core::{wire, Message, Question, Rcode, RecordClass, RecordType, ResponseKind};
use dns_netd::{playground, FaultInjector, LoopbackHub, Resolved, UdpUpstream};
use dns_resolver::{CachingServer, ResolverConfig, RetryPolicy};
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn client_timeout() -> Duration {
    Duration::from_secs(5)
}

fn test_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        initial_backoff_ms: 10,
        backoff_multiplier: 2,
        max_backoff_ms: 80,
        jitter_pct: 50,
        deadline_ms: 500,
    }
}

/// Encodes a query for `spelled` and re-imposes the caller's exact
/// mixed-case spelling on the wire bytes (`Name` lowercases on
/// construction) — what a 0x20-randomizing client emits.
fn spelled_query(id: u16, spelled: &str, rtype: RecordType) -> Vec<u8> {
    let q = Message::query(id, Question::new(spelled.parse().unwrap(), rtype));
    let mut bytes = wire::encode(&q).unwrap();
    let mut pos = 12;
    for label in spelled.split('.') {
        bytes[pos + 1..pos + 1 + label.len()].copy_from_slice(label.as_bytes());
        pos += 1 + label.len();
    }
    bytes
}

/// Appends an empty EDNS0 OPT pseudo-record and bumps ARCOUNT.
fn append_opt(query: &mut Vec<u8>) {
    query[11] += 1;
    query.push(0); // root owner
    query.extend_from_slice(&41u16.to_be_bytes()); // OPT
    query.extend_from_slice(&4096u16.to_be_bytes()); // advertised UDP size
    query.extend_from_slice(&0u32.to_be_bytes()); // extended flags
    query.extend_from_slice(&0u16.to_be_bytes()); // empty RDATA
}

/// One raw datagram exchange, returning the response bytes.
fn raw_exchange(addr: SocketAddr, query: &[u8], timeout: Duration) -> Vec<u8> {
    let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
    sock.set_read_timeout(Some(timeout)).unwrap();
    sock.send_to(query, addr).unwrap();
    let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
    loop {
        let (n, from) = sock.recv_from(&mut buf).unwrap();
        if from == addr && buf[..2] == query[..2] {
            return buf[..n].to_vec();
        }
    }
}

/// Canonical form for "byte-identical modulo query ID, TTL decrement and
/// question casing": decode, deterministically re-encode (normalizes the
/// casing patch), then zero the ID and every TTL field.
fn normalized(bytes: &[u8]) -> Vec<u8> {
    let msg = wire::decode(bytes).expect("response must decode");
    let (mut out, offsets) = wire::encode_with_ttl_offsets(&msg).unwrap();
    out[0] = 0;
    out[1] = 0;
    for off in offsets {
        let off = off as usize;
        out[off..off + 4].copy_from_slice(&[0, 0, 0, 0]);
    }
    out
}

fn wait_for(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn mixed_case_repeat_queries_hit_the_wire_cache_and_echo_spelling() {
    let net = playground::boot().unwrap();
    let udp = UdpUpstream::with_route(Duration::from_millis(500), net.route_fn()).unwrap();
    let (upstream, _faults) = FaultInjector::new(udp, 17);
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .seed(5)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0").unwrap();

    // Cold: full resolution, compiled into the wire cache on the way out.
    let q1 = spelled_query(0x1111, "www.ucla.edu", RecordType::A);
    let r1 = raw_exchange(resolver.addr(), &q1, client_timeout());
    let m1 = wire::decode(&r1).unwrap();
    assert_eq!(m1.kind(), ResponseKind::Answer);
    assert!(
        wait_for(Duration::from_secs(1), || resolver.stats().wire_misses >= 1),
        "cold query must count as a wire miss: {}",
        resolver.stats()
    );
    assert!(
        wait_for(Duration::from_secs(1), || resolver.wire_cache_len() >= 1),
        "positive answer must be compiled into the wire cache"
    );

    // Hot, with scrambled 0x20 casing: answered from compiled bytes.
    let q2 = spelled_query(0x2222, "WwW.uClA.eDu", RecordType::A);
    let r2 = raw_exchange(resolver.addr(), &q2, client_timeout());
    assert!(
        wait_for(Duration::from_secs(1), || resolver.stats().wire_hits >= 1),
        "repeat query must be served by the fast lane: {}",
        resolver.stats()
    );
    // The response must echo the client's exact spelling, byte for byte.
    let qname_len = "WwW.uClA.eDu".len() + 2; // labels + length bytes + root
    assert_eq!(
        &r2[12..12 + qname_len],
        &q2[12..12 + qname_len],
        "0x20 casing must be echoed"
    );
    assert_eq!(&r2[0..2], &q2[0..2], "client ID must be echoed");

    // Fast-lane and slow-path responses are byte-identical modulo query
    // ID, TTL decrement and question casing.
    assert_eq!(normalized(&r1), normalized(&r2));
    let m2 = wire::decode(&r2).unwrap();
    assert_eq!(m1.answers.len(), m2.answers.len());
    assert!(
        m2.answers[0].ttl() <= m1.answers[0].ttl(),
        "served TTLs never grow"
    );

    resolver.stop();
    net.stop();
}

#[test]
fn edns0_opt_queries_are_answered_with_opt_stripped() {
    let net = playground::boot().unwrap();
    let udp = UdpUpstream::with_route(Duration::from_millis(500), net.route_fn()).unwrap();
    let (upstream, _faults) = FaultInjector::new(udp, 23);
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .seed(6)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let resolver = Resolved::spawn(cs, upstream, "127.0.0.1:0").unwrap();

    let mut q = spelled_query(0x0303, "www.example.com", RecordType::A);
    append_opt(&mut q);
    let r = raw_exchange(resolver.addr(), &q, client_timeout());
    let m = wire::decode(&r).unwrap();
    assert_eq!(m.header.rcode, Rcode::NoError);
    assert_eq!(
        m.kind(),
        ResponseKind::Answer,
        "an OPT-bearing query must be answered, not dropped"
    );
    assert!(
        m.additionals.is_empty(),
        "the OPT pseudo-record is stripped, not echoed"
    );
    // An OPT query can't use the fast lane (ARCOUNT != 0) — it bypasses.
    assert!(
        wait_for(Duration::from_secs(1), || resolver.stats().wire_bypass >= 1),
        "OPT query must be counted as a fast-lane bypass: {}",
        resolver.stats()
    );

    resolver.stop();
    net.stop();
}

/// The sim/loopback side of the tentpole: `spawn_io` runs the exact
/// batched worker loop over in-process queues, so the fault suite drives
/// batching, the fast lane and blackout behaviour without sockets.
#[test]
fn batched_loopback_path_serves_bursts_through_faults() {
    let net = playground::boot().unwrap();
    let udp = UdpUpstream::with_route(Duration::from_millis(500), net.route_fn()).unwrap();
    let (upstream, faults) = FaultInjector::new(udp, 29);
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .seed(7)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let hub = LoopbackHub::new();
    let resolver = Resolved::spawn_io(vec![cs], vec![upstream], vec![hub.io()]).unwrap();
    let peer = |port: u16| -> SocketAddr { ([127, 0, 0, 1], port).into() };

    // A burst: the same hot name three times (different IDs and casing)
    // plus an OPT-bearing query — injected together so the worker drains
    // them as one batch.
    let hot1 = spelled_query(0x0101, "www.ucla.edu", RecordType::A);
    let hot2 = spelled_query(0x0202, "WWW.UCLA.EDU", RecordType::A);
    let hot3 = spelled_query(0x0404, "wWw.ucla.EDU", RecordType::A);
    let mut opt = spelled_query(0x0303, "www.ucla.edu", RecordType::A);
    append_opt(&mut opt);
    for (q, port) in [(&hot1, 4001), (&hot2, 4002), (&hot3, 4003), (&opt, 4004)] {
        hub.inject(q, peer(port));
    }
    assert!(
        wait_for(client_timeout(), || resolver.served() >= 4),
        "all four burst queries must be answered: {}",
        resolver.stats()
    );
    let mut responses = hub.drain_sent();
    responses.sort_by_key(|(bytes, _)| u16::from_be_bytes([bytes[0], bytes[1]]));
    assert_eq!(responses.len(), 4);
    let ports: Vec<u16> = responses.iter().map(|(_, p)| p.port()).collect();
    assert_eq!(
        ports,
        vec![4001, 4002, 4004, 4003],
        "replies routed per peer"
    );
    // Batch processing is in arrival order, so the first hot query misses
    // and compiles the entry; the rest of the batch hits it.
    let stats = resolver.stats();
    assert!(stats.wire_hits >= 2, "in-batch repeats must hit: {stats}");
    assert!(stats.wire_misses >= 1, "{stats}");
    assert!(stats.wire_bypass >= 1, "OPT query bypasses: {stats}");
    // Hot responses agree modulo ID/TTL/casing; spelling echoes per client.
    assert_eq!(normalized(&responses[0].0), normalized(&responses[1].0));
    assert_eq!(normalized(&responses[0].0), normalized(&responses[3].0));
    let qname_len = "WWW.UCLA.EDU".len() + 2;
    assert_eq!(
        &responses[1].0[12..12 + qname_len],
        &hot2[12..12 + qname_len]
    );
    let m = wire::decode(&responses[2].0).unwrap();
    assert_eq!(m.kind(), ResponseKind::Answer, "OPT query answered");
    assert!(m.additionals.is_empty());

    // Blackout every root/TLD daemon: the hot name still answers (the
    // fast lane never leaves the process), an unseen name SERVFAILs.
    faults.blackout(&net.top_level_ips(), Duration::from_secs(3600));
    hub.inject(
        &spelled_query(0x0505, "www.ucla.edu", RecordType::A),
        peer(4005),
    );
    hub.inject(
        &spelled_query(0x0606, "www.never-seen.com", RecordType::A),
        peer(4006),
    );
    assert!(
        wait_for(client_timeout(), || resolver.served() >= 6),
        "blackout burst must still be answered: {}",
        resolver.stats()
    );
    let mut responses = hub.drain_sent();
    responses.sort_by_key(|(bytes, _)| u16::from_be_bytes([bytes[0], bytes[1]]));
    assert_eq!(responses.len(), 2);
    let hot = wire::decode(&responses[0].0).unwrap();
    assert_eq!(hot.kind(), ResponseKind::Answer, "hot name rides the cache");
    let unseen = wire::decode(&responses[1].0).unwrap();
    assert_eq!(
        unseen.header.rcode,
        Rcode::ServFail,
        "unseen name SERVFAILs"
    );
    assert!(
        faults.stats().dropped_by_blackout >= 1,
        "the SERVFAIL must have come from the blackout: {}",
        faults.stats()
    );

    // CHAOS metrics ride the slow path (bypass) and expose the trio.
    let chaos = Message::query(
        0x0707,
        Question::with_class(
            dns_netd::CHAOS_METRICS_NAME.parse().unwrap(),
            RecordType::Txt,
            RecordClass::Ch,
        ),
    );
    hub.inject(&wire::encode(&chaos).unwrap(), peer(4007));
    assert!(
        wait_for(client_timeout(), || resolver.served() >= 7),
        "CHAOS query must be answered"
    );
    let responses = hub.drain_sent();
    assert_eq!(responses.len(), 1);
    let m = wire::decode(&responses[0].0).unwrap();
    let lines: Vec<String> = m
        .answers
        .iter()
        .filter_map(|r| match r.rdata() {
            dns_core::RData::Txt(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert!(
        lines.iter().any(|l| l.starts_with("daemon_wire_hits=")),
        "snapshot must expose the wire trio: {lines:?}"
    );
    let wire_bytes: u64 = lines
        .iter()
        .find_map(|l| l.strip_prefix("daemon_wire_bytes="))
        .expect("snapshot exposes the wire cache byte total")
        .parse()
        .unwrap();
    assert_eq!(
        wire_bytes,
        resolver.wire_cache_bytes() as u64,
        "byte gauge reconciles with the cache ledger"
    );
    assert!(wire_bytes > 0, "hot entry occupies bytes");
    // The lane split is visible: one fast-lane observation per wire hit.
    let fast_count = lines
        .iter()
        .find(|l| l.starts_with("wall_latency_fast_ms "))
        .expect("fast-lane histogram rendered")
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("count="))
        .unwrap()
        .parse::<u64>()
        .unwrap();
    assert_eq!(fast_count, resolver.stats().wire_hits);

    resolver.stop();
    net.stop();
}
