/root/repo/target/debug/deps/dns_dig-dde48bd63ed5eb2d.d: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

/root/repo/target/debug/deps/libdns_dig-dde48bd63ed5eb2d.rmeta: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

crates/dns-netd/src/bin/dns-dig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
