/root/repo/target/debug/deps/table2-ae3ffec571bfcf31.d: crates/dns-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ae3ffec571bfcf31: crates/dns-bench/src/bin/table2.rs

crates/dns-bench/src/bin/table2.rs:
