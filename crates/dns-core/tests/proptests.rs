//! Property-based tests for the core data model and wire codec.

use dns_core::{
    wire, Header, Label, Message, Name, NameBuilder, Opcode, Question, RData, Rcode, Record,
    RecordType, Ttl,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Raw label bytes, independent of any `Name` machinery: the naive model a
/// `Name` must agree with. Most-specific label first, matching `labels()`.
fn arb_raw_labels() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                prop::char::range('a', 'z').prop_map(|c| c as u8),
                prop::char::range('0', '9').prop_map(|c| c as u8),
                Just(b'-'),
                Just(b'_'),
            ],
            1..=12,
        ),
        0..=6,
    )
}

fn name_from_raw(raw: &[Vec<u8>]) -> Name {
    let labels = raw
        .iter()
        .map(|l| Label::new(l).expect("alphabet is valid"))
        .collect();
    Name::from_labels(labels).expect("short names fit")
}

/// Label-wise suffix test on the naive model ("a.b ends with b").
fn model_is_subdomain(a: &[Vec<u8>], b: &[Vec<u8>]) -> bool {
    a.len() >= b.len() && a[a.len() - b.len()..] == *b
}

fn arb_label() -> impl Strategy<Value = Label> {
    proptest::collection::vec(
        prop_oneof![
            prop::char::range('a', 'z').prop_map(|c| c as u8),
            prop::char::range('0', '9').prop_map(|c| c as u8),
            Just(b'-'),
            Just(b'_'),
        ],
        1..=12,
    )
    .prop_map(|bytes| Label::new(&bytes).expect("alphabet is valid"))
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..=6)
        .prop_map(|labels| Name::from_labels(labels).expect("short names fit"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                }
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        "[ -~]{0,40}".prop_map(RData::Txt),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| Record::new(name, Ttl::from_secs(ttl), rdata))
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(Opcode::Query),
            Just(Opcode::IQuery),
            Just(Opcode::Status)
        ],
        prop_oneof![
            Just(Rcode::NoError),
            Just(Rcode::FormErr),
            Just(Rcode::ServFail),
            Just(Rcode::NxDomain),
            Just(Rcode::NotImp),
            Just(Rcode::Refused),
        ],
    )
        .prop_map(
            |(id, response, authoritative, truncated, rd, ra, opcode, rcode)| Header {
                id,
                response,
                opcode,
                authoritative,
                truncated,
                recursion_desired: rd,
                recursion_available: ra,
                rcode,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        arb_header(),
        proptest::collection::vec(
            (arb_name(), prop::sample::select(RecordType::ALL.to_vec()))
                .prop_map(|(n, t)| Question::new(n, t)),
            0..=2,
        ),
        proptest::collection::vec(arb_record(), 0..=4),
        proptest::collection::vec(arb_record(), 0..=4),
        proptest::collection::vec(arb_record(), 0..=4),
    )
        .prop_map(
            |(header, questions, answers, authorities, additionals)| Message {
                header,
                questions,
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    /// Any parsable name survives a display→parse round trip.
    #[test]
    fn name_display_parse_roundtrip(name in arb_name()) {
        let text = name.to_string();
        let back = Name::parse(&text).unwrap();
        prop_assert_eq!(name, back);
    }

    /// Parent reduces the label count by exactly one.
    #[test]
    fn parent_reduces_label_count(name in arb_name()) {
        match name.parent() {
            Some(p) => prop_assert_eq!(p.label_count() + 1, name.label_count()),
            None => prop_assert!(name.is_root()),
        }
    }

    /// `ancestors` yields label_count + 1 names, each the parent of the
    /// previous, ending at the root.
    #[test]
    fn ancestors_chain_is_consistent(name in arb_name()) {
        let chain: Vec<Name> = name.ancestors().collect();
        prop_assert_eq!(chain.len(), name.label_count() + 1);
        prop_assert_eq!(chain.first().unwrap(), &name);
        prop_assert!(chain.last().unwrap().is_root());
        for pair in chain.windows(2) {
            let parent = pair[0].parent();
            prop_assert_eq!(parent.as_ref(), Some(&pair[1]));
            prop_assert!(pair[0].is_proper_subdomain_of(&pair[1]));
        }
    }

    /// Subdomain relation is reflexive and transitive along ancestor chains.
    #[test]
    fn subdomain_of_every_ancestor(name in arb_name()) {
        prop_assert!(name.is_subdomain_of(&name));
        for anc in name.ancestors() {
            prop_assert!(name.is_subdomain_of(&anc));
        }
    }

    /// Messages round-trip exactly through the wire codec.
    #[test]
    fn wire_roundtrip(msg in arb_message()) {
        let bytes = match wire::encode(&msg) {
            Ok(b) => b,
            // Over-long messages are rejected, never silently truncated.
            Err(dns_core::DnsError::MessageTooLong(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("encode failed: {e}"))),
        };
        let back = wire::decode(&bytes).unwrap();
        prop_assert_eq!(msg, back);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    /// Decoding any prefix of a valid message never panics.
    #[test]
    fn decode_truncations_never_panic(msg in arb_message(), cut in 0usize..64) {
        if let Ok(bytes) = wire::encode(&msg) {
            let cut = cut.min(bytes.len());
            let _ = wire::decode(&bytes[..bytes.len() - cut]);
        }
    }

    /// Every construction route — `from_labels`, `parse` of the display
    /// form, and an incremental `NameBuilder` — produces the same name,
    /// and `labels()` reads the raw model back out unchanged.
    #[test]
    fn construction_routes_agree(raw in arb_raw_labels()) {
        let via_labels = name_from_raw(&raw);

        let text = raw
            .iter()
            .map(|l| String::from_utf8(l.clone()).unwrap())
            .collect::<Vec<_>>()
            .join(".");
        let via_parse = Name::parse(&text).unwrap();

        let mut builder = NameBuilder::new();
        for label in &raw {
            builder.push(label).unwrap();
        }
        let via_builder = builder.finish().unwrap();

        prop_assert_eq!(&via_labels, &via_parse);
        prop_assert_eq!(&via_labels, &via_builder);
        let read_back: Vec<Vec<u8>> = via_labels.labels().map(|l| l.to_vec()).collect();
        prop_assert_eq!(read_back, raw);
    }

    /// `is_subdomain_of` on arbitrary pairs matches a label-wise suffix
    /// check on the raw model. (Byte-wise suffix comparison would be wrong:
    /// digit bytes overlap the length-prefix range, so "2345.com" must not
    /// claim "12345.com" as a subdomain.)
    #[test]
    fn subdomain_matches_suffix_model(a in arb_raw_labels(), b in arb_raw_labels()) {
        let na = name_from_raw(&a);
        let nb = name_from_raw(&b);
        prop_assert_eq!(na.is_subdomain_of(&nb), model_is_subdomain(&a, &b));
        prop_assert_eq!(nb.is_subdomain_of(&na), model_is_subdomain(&b, &a));
        // Derived suffixes of `a` are always subdomains, whatever `b` was.
        for anc in na.ancestors() {
            prop_assert!(na.is_subdomain_of(&anc));
        }
    }

    /// `Ord` on names matches lexicographic order over the raw label model
    /// (most-specific label first). The infrastructure cache's renewal
    /// schedule is a `BTreeSet` keyed on names, so this order is
    /// load-bearing for experiment determinism.
    #[test]
    fn ordering_matches_label_model(a in arb_raw_labels(), b in arb_raw_labels()) {
        let na = name_from_raw(&a);
        let nb = name_from_raw(&b);
        prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
        // Equality and hashing stay consistent with the model too.
        prop_assert_eq!(na == nb, a == b);
    }

    /// `append` concatenates the label models; `child` is the single-label
    /// special case.
    #[test]
    fn append_matches_model(a in arb_raw_labels(), b in arb_raw_labels()) {
        let na = name_from_raw(&a);
        let nb = name_from_raw(&b);
        // Both inputs are ≤ 6 labels of ≤ 12 bytes, so the result always
        // fits in MAX_NAME_LEN.
        let joined = na.append(&nb).unwrap();
        let mut model = a.clone();
        model.extend(b.iter().cloned());
        let read_back: Vec<Vec<u8>> = joined.labels().map(|l| l.to_vec()).collect();
        prop_assert_eq!(read_back, model);

        if let Some(first) = b.first() {
            let child = nb.parent().unwrap().child(Label::new(first).unwrap());
            prop_assert_eq!(child.unwrap(), nb);
        }
    }

    /// `common_suffix_len` counts matching labels from the root, per the
    /// naive model.
    #[test]
    fn common_suffix_len_matches_model(a in arb_raw_labels(), b in arb_raw_labels()) {
        let na = name_from_raw(&a);
        let nb = name_from_raw(&b);
        let model = a
            .iter()
            .rev()
            .zip(b.iter().rev())
            .take_while(|(x, y)| x == y)
            .count();
        prop_assert_eq!(na.common_suffix_len(&nb), model);
        prop_assert_eq!(nb.common_suffix_len(&na), model);
    }

    /// A name survives the wire codec (including compression against other
    /// names sharing its suffixes) unchanged.
    #[test]
    fn name_wire_roundtrip(raw in arb_raw_labels()) {
        let name = name_from_raw(&raw);
        let mut msg = Message::query(7, Question::new(name.clone(), RecordType::A));
        // Force compression pointers: the answer owner repeats the question
        // name, and an NS target shares every proper suffix.
        msg.answers.push(Record::new(
            name.clone(),
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(192, 0, 2, 7)),
        ));
        for anc in name.ancestors() {
            msg.authorities.push(Record::new(
                anc.clone(),
                Ttl::from_secs(60),
                RData::Ns(anc),
            ));
        }
        let bytes = wire::encode(&msg).unwrap();
        let back = wire::decode(&bytes).unwrap();
        prop_assert_eq!(msg, back);
    }

    /// TTL expiry is monotone in the TTL value.
    #[test]
    fn ttl_expiry_monotone(a in any::<u32>(), b in any::<u32>(), at in any::<u32>()) {
        let at = dns_core::SimTime::from_secs(at as u64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            Ttl::from_secs(lo).expires_at(at) <= Ttl::from_secs(hi).expires_at(at)
        );
    }
}
