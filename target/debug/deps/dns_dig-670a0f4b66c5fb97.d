/root/repo/target/debug/deps/dns_dig-670a0f4b66c5fb97.d: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

/root/repo/target/debug/deps/libdns_dig-670a0f4b66c5fb97.rmeta: crates/dns-netd/src/bin/dns-dig.rs Cargo.toml

crates/dns-netd/src/bin/dns-dig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
