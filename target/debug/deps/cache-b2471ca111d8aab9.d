/root/repo/target/debug/deps/cache-b2471ca111d8aab9.d: crates/dns-bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-b2471ca111d8aab9.rmeta: crates/dns-bench/benches/cache.rs Cargo.toml

crates/dns-bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
