/root/repo/target/debug/deps/fig12-2f0d9e8674fe1daa.d: crates/dns-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-2f0d9e8674fe1daa: crates/dns-bench/src/bin/fig12.rs

crates/dns-bench/src/bin/fig12.rs:
