/root/repo/target/debug/deps/fig7-caf49c0267a05948.d: crates/dns-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-caf49c0267a05948: crates/dns-bench/src/bin/fig7.rs

crates/dns-bench/src/bin/fig7.rs:
