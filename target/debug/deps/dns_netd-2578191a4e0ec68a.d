/root/repo/target/debug/deps/dns_netd-2578191a4e0ec68a.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/libdns_netd-2578191a4e0ec68a.rlib: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/libdns_netd-2578191a4e0ec68a.rmeta: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
