//! Cross-crate integration: generated universe → server farm → caching
//! resolver, exercised through the facade crate.

use dns_resilience::core::{Name, Question, RecordType, SimDuration, SimTime};
use dns_resilience::resolver::{CachingServer, Outcome, ResolverConfig, RootHints};
use dns_resilience::sim::{AttackScenario, ServerFarm, SimConfig, SimNet, Simulation};
use dns_resilience::trace::{TraceSpec, Universe, UniverseSpec};

fn universe() -> Universe {
    UniverseSpec::small().build(7)
}

fn resolver_over(universe: &Universe) -> (CachingServer, SimNet) {
    let farm = ServerFarm::build(universe, None);
    let net = SimNet::new(farm);
    let hints = RootHints::new(universe.root_servers().to_vec());
    (CachingServer::new(ResolverConfig::vanilla(), hints), net)
}

#[test]
fn every_generated_data_name_resolves() {
    let u = universe();
    let (mut cs, mut net) = resolver_over(&u);
    // Sample a spread of zones: first, last, and some in between.
    let zones: Vec<_> = u
        .zones()
        .iter()
        .filter(|z| !z.data_names.is_empty())
        .step_by(97)
        .collect();
    assert!(zones.len() > 10);
    for (i, zone) in zones.iter().enumerate() {
        let (name, _) = &zone.data_names[0];
        let out = cs.resolve_a(name, SimTime::from_secs(i as u64), &mut net);
        assert!(
            matches!(out, Outcome::Answer { .. }),
            "{name} failed: {out}"
        );
    }
    // No failures at the resolver and none dropped by the network.
    assert_eq!(cs.metrics().failed_in, 0);
    assert_eq!(net.stats().dropped_by_attack, 0);
    assert_eq!(net.stats().unroutable, 0);
}

#[test]
fn cname_aliases_resolve_through_the_stack() {
    let u = universe();
    let (mut cs, mut net) = resolver_over(&u);
    let zone = u
        .zones()
        .iter()
        .find(|z| !z.cnames.is_empty())
        .expect("universe has aliases");
    let (alias, target, _) = &zone.cnames[0];
    let out = cs.resolve_a(alias, SimTime::ZERO, &mut net);
    match out {
        Outcome::Answer { records, .. } => {
            assert_eq!(records[0].rtype(), RecordType::Cname);
            assert!(records.iter().any(|r| r.name() == target));
        }
        other => panic!("alias {alias} gave {other}"),
    }
}

#[test]
fn mx_and_nxdomain_queries_behave() {
    let u = universe();
    let (mut cs, mut net) = resolver_over(&u);
    let mx_zone = u
        .zones()
        .iter()
        .find(|z| z.has_mx)
        .expect("universe has MX zones");
    let out = cs.resolve(
        &Question::new(mx_zone.apex.clone(), RecordType::Mx),
        SimTime::ZERO,
        &mut net,
    );
    assert!(matches!(out, Outcome::Answer { .. }), "MX gave {out}");

    let missing: Name = format!("nx999.{}", mx_zone.apex).parse().unwrap();
    let out = cs.resolve_a(&missing, SimTime::from_secs(1), &mut net);
    assert!(matches!(out, Outcome::NxDomain { .. }), "got {out}");
}

#[test]
fn out_of_bailiwick_zones_resolve() {
    let u = universe();
    let (mut cs, mut net) = resolver_over(&u);
    let oob: Vec<_> = u
        .zones()
        .iter()
        .filter(|z| z.ns.iter().any(|(n, _)| !n.is_subdomain_of(&z.apex)))
        .take(5)
        .collect();
    assert!(!oob.is_empty());
    for zone in oob {
        let (name, _) = &zone.data_names[0];
        let out = cs.resolve_a(name, SimTime::ZERO, &mut net);
        assert!(matches!(out, Outcome::Answer { .. }), "{name} gave {out}");
    }
}

#[test]
fn full_simulation_is_deterministic_across_runs() {
    let u = universe();
    let trace = TraceSpec::demo().scaled(0.2).generate(&u, 9);
    let attack = AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(6));
    let run = || {
        let mut sim = Simulation::new(
            &u,
            trace.clone(),
            SimConfig::new(ResolverConfig::with_refresh()),
        );
        sim.set_attack(attack.compile(&u));
        sim.run_to_end();
        (sim.metrics(), sim.net().stats())
    };
    assert_eq!(run(), run());
}

#[test]
fn attack_only_affects_the_window() {
    let u = universe();
    let trace = TraceSpec::demo().scaled(0.2).generate(&u, 9);
    let start = SimTime::from_days(6);
    let duration = SimDuration::from_hours(3);

    let mut sim = Simulation::new(&u, trace, SimConfig::new(ResolverConfig::vanilla()));
    sim.set_attack(AttackScenario::root_and_tlds(start, duration).compile(&u));

    sim.run_until(start);
    assert_eq!(sim.metrics().failed_in, 0, "no failures before the attack");

    sim.run_until(start + duration);
    let during = sim.metrics().failed_in;
    assert!(during > 0, "the attack must cause failures");

    // After the attack ends, failures stop accumulating (beyond the
    // window's edge effects there is nothing left to fail).
    sim.run_to_end();
    let after = sim.metrics().failed_in;
    assert_eq!(after, during, "no failures after the servers recover");
}

#[test]
fn facade_reexports_compose() {
    // The facade must expose enough to write the quickstart end to end.
    let u = UniverseSpec::small().build(1);
    let t = TraceSpec::demo().scaled(0.01).generate(&u, 1);
    let mut sim = Simulation::new(&u, t, SimConfig::new(ResolverConfig::vanilla()));
    sim.run_to_end();
    assert!(sim.metrics().queries_in > 0);
}
