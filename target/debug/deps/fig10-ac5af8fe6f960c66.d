/root/repo/target/debug/deps/fig10-ac5af8fe6f960c66.d: crates/dns-bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-ac5af8fe6f960c66.rmeta: crates/dns-bench/src/bin/fig10.rs Cargo.toml

crates/dns-bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
