//! Benchmarks for namespace and workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use dns_trace::{UniverseSpec, WorkloadBuilder};
use std::hint::black_box;

fn bench_tracegen(c: &mut Criterion) {
    c.bench_function("tracegen/universe_small", |b| {
        let spec = UniverseSpec::small();
        b.iter(|| black_box(&spec).build(7))
    });

    let universe = UniverseSpec::small().build(7);
    c.bench_function("tracegen/workload_10k", |b| {
        let builder = WorkloadBuilder::new("bench", 1, 50, 10_000);
        b.iter(|| builder.generate(black_box(&universe), 42))
    });

    c.bench_function("tracegen/build_all_zones", |b| {
        b.iter(|| black_box(&universe).build_all_zones())
    });

    c.bench_function("tracegen/trace_stats", |b| {
        let trace = WorkloadBuilder::new("bench", 1, 50, 10_000).generate(&universe, 42);
        b.iter(|| black_box(&trace).stats())
    });
}

criterion_group!(benches, bench_tracegen);
criterion_main!(benches);
