//! Micro-benchmarks for the record and infrastructure caches, plus a hard
//! zero-allocation guard on the hot lookup path: the bench binary runs under
//! a counting allocator and aborts if a warm-cache `get` or a
//! `Name::clone`/`parent` allocates at all.

use criterion::{criterion_group, criterion_main, Criterion};
use dns_core::{Name, RData, Record, RrSet, SimTime, Ttl};
use dns_resolver::{Credibility, InfraCache, InfraSource, RecordCache};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Delegates to the system allocator, counting every allocation so the
/// guards below can assert a code path is allocation-free.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `iters` runs of `op` (after a warm-up pass).
fn allocs_during(iters: u64, mut op: impl FnMut()) -> u64 {
    for _ in 0..16 {
        op();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        op();
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn a_set(owner: &str, ttl: Ttl) -> RrSet {
    let rec = Record::new(name(owner), ttl, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    RrSet::from_records(&[rec]).unwrap()
}

fn bench_record_cache(c: &mut Criterion) {
    // A populated cache to measure realistic lookups.
    let mut warm = RecordCache::new();
    let names: Vec<String> = (0..10_000)
        .map(|i| format!("host{i}.z{}.com", i % 997))
        .collect();
    for n in &names {
        warm.insert(
            a_set(n, Ttl::from_hours(4)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
    }
    let probe = name(&names[4242]);

    // Hard guards, not timings: the hot path must not allocate. A warm GET
    // probes with a borrowed `(&Name, RecordType)` view (no owned key), and
    // `Name::clone`/`parent` are refcount bumps / suffix views on the shared
    // label buffer.
    let get_allocs = allocs_during(10_000, || {
        black_box(warm.get(
            black_box(&probe),
            dns_core::RecordType::A,
            SimTime::from_mins(1),
        ));
    });
    assert_eq!(get_allocs, 0, "warm-cache get must be allocation-free");
    let name_allocs = allocs_during(10_000, || {
        let cloned = black_box(&probe).clone();
        black_box(cloned.parent());
    });
    assert_eq!(
        name_allocs, 0,
        "Name::clone + parent must be allocation-free"
    );

    c.bench_function("cache/record_insert", |b| {
        let set = a_set("www.example.com", Ttl::from_hours(4));
        let mut cache = warm.clone();
        b.iter(|| {
            cache.insert(
                black_box(set.clone()),
                SimTime::ZERO,
                Credibility::AuthAnswer,
            )
        })
    });
    c.bench_function("cache/record_hit", |b| {
        b.iter(|| {
            warm.get(
                black_box(&probe),
                dns_core::RecordType::A,
                SimTime::from_mins(1),
            )
        })
    });
    c.bench_function("cache/record_miss", |b| {
        let missing = name("not.cached.example");
        b.iter(|| {
            warm.get(
                black_box(&missing),
                dns_core::RecordType::A,
                SimTime::from_mins(1),
            )
        })
    });
    c.bench_function("cache/purge_10k", |b| {
        b.iter_with_setup(
            || warm.clone(),
            |mut cache| cache.purge_expired(SimTime::from_days(1)),
        )
    });
}

fn bench_infra_cache(c: &mut Criterion) {
    let mut warm = InfraCache::new();
    warm.install_root_hints(&[(name("a.root"), Ipv4Addr::new(198, 41, 0, 4))]);
    for i in 0..5_000u32 {
        let zone = name(&format!("z{i}.com"));
        warm.install(
            zone.clone(),
            vec![name(&format!("ns1.z{i}.com"))],
            vec![(
                name(&format!("ns1.z{i}.com")),
                Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
            )],
            Ttl::from_hours(12),
            SimTime::ZERO,
            InfraSource::Child,
            true,
        );
    }
    let probe = name("www.z2500.com");

    c.bench_function("cache/infra_deepest_ancestor", |b| {
        b.iter(|| warm.deepest_fresh_ancestor(black_box(&probe), SimTime::from_mins(5)))
    });
    c.bench_function("cache/infra_install_refresh", |b| {
        let zone = name("z100.com");
        let ns = vec![name("ns1.z100.com")];
        let addrs = vec![(name("ns1.z100.com"), Ipv4Addr::new(10, 0, 0, 100))];
        let mut cache = warm.clone();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            cache.install(
                black_box(zone.clone()),
                ns.clone(),
                addrs.clone(),
                Ttl::from_hours(12),
                SimTime::from_secs(t),
                InfraSource::Child,
                true,
            )
        })
    });
}

criterion_group!(benches, bench_record_cache, bench_infra_cache);
criterion_main!(benches);
