/root/repo/target/debug/deps/discussion_latency-2ce04f72991aa45c.d: crates/dns-bench/src/bin/discussion_latency.rs

/root/repo/target/debug/deps/discussion_latency-2ce04f72991aa45c: crates/dns-bench/src/bin/discussion_latency.rs

crates/dns-bench/src/bin/discussion_latency.rs:
