/root/repo/target/debug/deps/fig6-9dbaa74e6acb9a95.d: crates/dns-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-9dbaa74e6acb9a95: crates/dns-bench/src/bin/fig6.rs

crates/dns-bench/src/bin/fig6.rs:
