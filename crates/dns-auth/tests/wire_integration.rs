//! Wire-level integration: queries and responses crossing the RFC 1035
//! codec on their way through an authoritative server, as they would over
//! UDP.

use dns_auth::AuthServer;
use dns_core::{
    wire, Delegation, Message, Name, Question, RData, Record, RecordType, ResponseKind, Ttl,
    ZoneBuilder,
};
use std::net::Ipv4Addr;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn server() -> AuthServer {
    let zone = ZoneBuilder::new(name("ucla.edu"))
        .ns(
            name("ns1.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 1),
            Ttl::from_days(1),
        )
        .ns(
            name("ns2.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 2),
            Ttl::from_days(1),
        )
        .a(
            name("www.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 80),
            Ttl::from_hours(4),
        )
        .record(Record::new(
            name("ucla.edu"),
            Ttl::from_hours(4),
            RData::Mx {
                preference: 10,
                exchange: name("mail.ucla.edu"),
            },
        ))
        .a(
            name("mail.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 25),
            Ttl::from_hours(4),
        )
        .delegate(Delegation {
            child: name("cs.ucla.edu"),
            ns_names: vec![name("ns.cs.ucla.edu")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![Record::new(
                name("ns.cs.ucla.edu"),
                Ttl::from_hours(12),
                RData::A(Ipv4Addr::new(192, 0, 2, 53)),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut s = AuthServer::new(name("ns1.ucla.edu"), Ipv4Addr::new(192, 0, 2, 1));
    s.add_zone(zone);
    s
}

/// Sends a query through encode → decode → handle → encode → decode,
/// exactly like a UDP exchange.
fn exchange(server: &AuthServer, qname: &str, rtype: RecordType) -> Message {
    let query = Message::query(4321, Question::new(name(qname), rtype));
    let query_bytes = wire::encode(&query).unwrap();
    let received = wire::decode(&query_bytes).unwrap();
    assert_eq!(received, query, "query must survive the wire");
    let response = server.handle_query(&received);
    let resp_bytes = wire::encode(&response).unwrap();
    let decoded = wire::decode(&resp_bytes).unwrap();
    assert_eq!(decoded, response, "response must survive the wire");
    decoded
}

#[test]
fn positive_answer_over_the_wire() {
    let resp = exchange(&server(), "www.ucla.edu", RecordType::A);
    assert_eq!(resp.kind(), ResponseKind::Answer);
    assert_eq!(resp.header.id, 4321);
    assert_eq!(resp.answers.len(), 1);
    assert_eq!(resp.authorities.len(), 2); // NS set
    assert_eq!(resp.additionals.len(), 2); // glue
}

#[test]
fn referral_over_the_wire() {
    let resp = exchange(&server(), "host.cs.ucla.edu", RecordType::A);
    assert_eq!(resp.kind(), ResponseKind::Referral);
    assert!(resp.authorities.iter().all(|r| r.rtype() == RecordType::Ns));
}

#[test]
fn mx_answer_over_the_wire() {
    let resp = exchange(&server(), "ucla.edu", RecordType::Mx);
    assert_eq!(resp.kind(), ResponseKind::Answer);
    match resp.answers[0].rdata() {
        RData::Mx {
            preference,
            exchange,
        } => {
            assert_eq!(*preference, 10);
            assert_eq!(exchange, &name("mail.ucla.edu"));
        }
        other => panic!("expected MX, got {other:?}"),
    }
}

#[test]
fn nxdomain_over_the_wire() {
    let resp = exchange(&server(), "missing.ucla.edu", RecordType::A);
    assert_eq!(resp.kind(), ResponseKind::NxDomain);
    assert!(resp
        .authorities
        .iter()
        .any(|r| r.rtype() == RecordType::Soa));
}

#[test]
fn response_sizes_are_wire_plausible() {
    // A referral with glue compresses to well under the classic 512-octet
    // UDP limit — a sanity check that compression is actually applied on
    // the hot path.
    let query = Message::query(1, Question::new(name("host.cs.ucla.edu"), RecordType::A));
    let response = server().handle_query(&query);
    let bytes = wire::encode(&response).unwrap();
    assert!(
        bytes.len() < 512,
        "referral should fit a classic UDP datagram, got {} octets",
        bytes.len()
    );
}

#[test]
fn multi_zone_server_over_the_wire() {
    let mut s = server();
    let other = ZoneBuilder::new(name("mit.edu"))
        .ns(
            name("ns1.ucla.edu"),
            Ipv4Addr::new(192, 0, 2, 1),
            Ttl::from_days(1),
        )
        .a(
            name("www.mit.edu"),
            Ipv4Addr::new(192, 0, 2, 90),
            Ttl::from_hours(4),
        )
        .build()
        .unwrap();
    s.add_zone(other);
    let resp = exchange(&s, "www.mit.edu", RecordType::A);
    assert_eq!(resp.kind(), ResponseKind::Answer);
    let resp = exchange(&s, "www.ucla.edu", RecordType::A);
    assert_eq!(resp.kind(), ResponseKind::Answer);
}
