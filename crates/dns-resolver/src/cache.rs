//! The generic RRset cache with RFC 2181 credibility ranking.
//!
//! This cache holds *data* records (addresses, CNAMEs, negative entries);
//! infrastructure records live in [`crate::InfraCache`], which the
//! resilience policies operate on.

use dns_core::{Name, RecordType, RrKey, RrKeyView, RrSet, SimDuration, SimTime, Ttl};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Trustworthiness ranking of cached data (RFC 2181 §5.4.1, condensed).
///
/// Higher ranks may overwrite lower ranks; a lower-ranked copy never
/// replaces a fresh higher-ranked one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Credibility {
    /// Glue / additional-section data.
    Additional = 1,
    /// Authority-section data from a non-authoritative response (referral
    /// NS sets).
    NonAuthAuthority = 2,
    /// Authority-section data from an authoritative answer.
    AuthAuthority = 3,
    /// Answer-section data from an authoritative answer.
    AuthAnswer = 4,
}

/// One cached RRset plus caching metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The cached data.
    pub set: RrSet,
    /// Absolute expiry.
    pub expires_at: SimTime,
    /// Trustworthiness of this copy.
    pub credibility: Credibility,
}

impl CacheEntry {
    /// Whether the entry is still fresh at `now` (exclusive expiry).
    pub fn is_fresh(&self, now: SimTime) -> bool {
        now < self.expires_at
    }
}

/// A negative-cache entry: proof that a name/type has no data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegativeKind {
    /// The name does not exist at all.
    NxDomain,
    /// The name exists but not with this type.
    NoData,
}

/// What [`RecordCache::insert_negative`] did under the configured budget.
///
/// A water-torture flood drives the negative cache toward its byte/entry
/// budget; the resolver turns these outcomes into `flood_suppressed` and
/// `neg_evictions_pressure` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NegativeInsertOutcome {
    /// Whether the new entry is still present after budget enforcement (a
    /// zero or tiny budget can evict the entry it just admitted).
    pub stored: bool,
    /// Negative entries evicted to make room, the new entry included.
    pub evicted_pressure: u64,
}

/// Approximate heap cost of one negative entry: its key's wire-format name
/// length plus fixed map/heap overhead.
fn negative_cost(key: &RrKey) -> usize {
    key.name.wire_len() + 48
}

/// TTL-driven RRset cache.
///
/// ```rust
/// use dns_resolver::{Credibility, RecordCache};
/// use dns_core::{Name, RData, Record, RrSet, SimTime, Ttl};
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), dns_core::DnsError> {
/// let mut cache = RecordCache::new();
/// let rr = Record::new("www.ucla.edu".parse()?, Ttl::from_hours(4), RData::A(Ipv4Addr::LOCALHOST));
/// let set = RrSet::from_records(std::slice::from_ref(&rr)).unwrap();
/// cache.insert(set, SimTime::ZERO, Credibility::AuthAnswer);
///
/// let hit = cache.get(&"www.ucla.edu".parse()?, dns_core::RecordType::A, SimTime::from_hours(3));
/// assert!(hit.is_some());
/// let miss = cache.get(&"www.ucla.edu".parse()?, dns_core::RecordType::A, SimTime::from_hours(5));
/// assert!(miss.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecordCache {
    entries: HashMap<RrKey, CacheEntry>,
    negatives: HashMap<RrKey, (SimTime, NegativeKind)>,
    /// Expiry min-heap over `entries`, lazy-deleted: a pair whose entry
    /// was since re-inserted with a different expiry no longer matches
    /// the map and is skipped on pop.
    expiry: BinaryHeap<Reverse<(SimTime, RrKey)>>,
    /// Expiry min-heap over `negatives`, same discipline.
    neg_expiry: BinaryHeap<Reverse<(SimTime, RrKey)>>,
    /// Individual records across stored positive entries, maintained on
    /// insert/evict so occupancy sampling never scans the table.
    record_total: usize,
    /// Approximate bytes across stored negative entries, maintained on
    /// insert/evict (see [`negative_cost`]).
    neg_bytes: usize,
    /// Hard entry budget for the negative cache; `None` = unbounded.
    neg_budget_entries: Option<usize>,
    /// Hard byte budget for the negative cache; `None` = unbounded.
    neg_budget_bytes: Option<usize>,
    /// How long expired *positive* entries stay resident for serve-stale
    /// lookups; `None` (the default) evicts at expiry exactly as before.
    /// Negative entries are never retained past expiry.
    stale_retention: Option<SimDuration>,
}

impl RecordCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RecordCache::default()
    }

    /// Inserts an RRset received at `now`, subject to credibility rules:
    /// a fresh entry of strictly higher credibility is never overwritten.
    ///
    /// Returns `true` when the set was stored.
    pub fn insert(&mut self, set: RrSet, now: SimTime, credibility: Credibility) -> bool {
        let key = set.key().clone();
        if let Some(existing) = self.entries.get(&key) {
            if existing.is_fresh(now) && existing.credibility > credibility {
                return false;
            }
        }
        let expires_at = set.ttl().expires_at(now);
        let added = set.len();
        if let Some(old) = self.entries.insert(
            key.clone(),
            CacheEntry {
                set,
                expires_at,
                credibility,
            },
        ) {
            self.record_total -= old.set.len();
        }
        self.record_total += added;
        self.expiry.push(Reverse((expires_at, key)));
        true
    }

    /// Evicts every entry that expired at or before `now`, in O(log n)
    /// per expired entry rather than a full-table scan. Returns how many
    /// entries (positive + negative) were evicted.
    fn advance(&mut self, now: SimTime) -> usize {
        let mut evicted = 0;
        // With stale retention, a positive entry lives `retention` past its
        // expiry before eviction (it answers `get_stale` in between). The
        // default (`None`) is a zero grace period — identical to the
        // historical schedule, so pinned transcripts are unaffected.
        let grace = self.stale_retention.unwrap_or(SimDuration::ZERO);
        while self
            .expiry
            .peek()
            .is_some_and(|Reverse((at, _))| *at + grace <= now)
        {
            let Reverse((at, key)) = self.expiry.pop().expect("peeked");
            // Skip lazily-deleted pairs: the entry was re-inserted with a
            // different expiry after this pair was pushed.
            if self.entries.get(&key).is_some_and(|e| e.expires_at == at) {
                let old = self.entries.remove(&key).expect("just probed");
                self.record_total -= old.set.len();
                evicted += 1;
            }
        }
        while self
            .neg_expiry
            .peek()
            .is_some_and(|Reverse((at, _))| *at <= now)
        {
            let Reverse((at, key)) = self.neg_expiry.pop().expect("peeked");
            if self.negatives.get(&key).is_some_and(|&(exp, _)| exp == at) {
                self.negatives.remove(&key);
                self.neg_bytes -= negative_cost(&key);
                evicted += 1;
            }
        }
        evicted
    }

    /// Fresh lookup; expired entries are treated as absent (and are
    /// evicted lazily). The probe borrows `name` — no key is built and no
    /// allocation or refcount traffic occurs.
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<&CacheEntry> {
        self.entries
            .get(&(name, rtype) as &dyn RrKeyView)
            .filter(|e| e.is_fresh(now))
    }

    /// Configures the negative-cache budget; `None` means unbounded. The
    /// budget applies to future inserts — it does not synchronously shrink
    /// an already-over-budget cache.
    pub fn set_negative_budget(&mut self, entries: Option<usize>, bytes: Option<usize>) {
        self.neg_budget_entries = entries;
        self.neg_budget_bytes = bytes;
    }

    /// Configures how long expired positive entries remain resident for
    /// serve-stale lookups; `None` (the default) restores eviction exactly
    /// at expiry. Applies from the next [`Self::purge_expired`] /
    /// occupancy advance onward.
    pub fn set_stale_retention(&mut self, retention: Option<SimDuration>) {
        self.stale_retention = retention;
    }

    /// Expired-but-retained lookup: the entry for `(name, rtype)` that is
    /// *no longer fresh* at `now` but has not yet been evicted. Returns
    /// `None` for fresh entries (use [`Self::get`]) and for entries aged
    /// past the retention window (already evicted). The caller decides how
    /// much staleness is acceptable from [`CacheEntry::expires_at`].
    pub fn get_stale(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<&CacheEntry> {
        self.entries
            .get(&(name, rtype) as &dyn RrKeyView)
            .filter(|e| !e.is_fresh(now))
    }

    /// Stores a negative answer (NXDOMAIN / NODATA) for `ttl`.
    ///
    /// When a budget is set (see [`Self::set_negative_budget`]) the cache
    /// evicts the soonest-expiring negative entries until it is back
    /// within budget. Positive records are never evicted under negative
    /// pressure, so a water-torture flood cannot displace legitimate
    /// cached state.
    pub fn insert_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        ttl: Ttl,
        now: SimTime,
    ) -> NegativeInsertOutcome {
        let key = RrKey::new(name, rtype);
        let expires_at = ttl.expires_at(now);
        if self
            .negatives
            .insert(key.clone(), (expires_at, kind))
            .is_none()
        {
            self.neg_bytes += negative_cost(&key);
        }
        self.neg_expiry.push(Reverse((expires_at, key.clone())));

        // Enforce the budget: pop live soonest-expiring negatives until we
        // are back under. Each heap pop either retires a stale pair or
        // evicts a live entry, so the loop terminates.
        let mut evicted_pressure = 0u64;
        while self.over_negative_budget() {
            let Some(Reverse((at, victim))) = self.neg_expiry.pop() else {
                break;
            };
            if self
                .negatives
                .get(&victim)
                .is_some_and(|&(exp, _)| exp == at)
            {
                self.negatives.remove(&victim);
                self.neg_bytes -= negative_cost(&victim);
                evicted_pressure += 1;
            }
        }
        NegativeInsertOutcome {
            stored: self
                .negatives
                .get(&key)
                .is_some_and(|&(exp, _)| exp == expires_at),
            evicted_pressure,
        }
    }

    fn over_negative_budget(&self) -> bool {
        self.neg_budget_entries
            .is_some_and(|max| self.negatives.len() > max)
            || self
                .neg_budget_bytes
                .is_some_and(|max| self.neg_bytes > max)
    }

    /// Fresh negative lookup.
    pub fn get_negative(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Option<NegativeKind> {
        self.negatives
            .get(&(name, rtype) as &dyn RrKeyView)
            .filter(|(exp, _)| now < *exp)
            .map(|&(_, kind)| kind)
    }

    /// Removes entries that expired at or before `now`; returns how many
    /// were evicted since the cache last advanced. The resolver calls this
    /// periodically so occupancy metrics reflect live content. Amortized:
    /// cost scales with the number of expired entries, not cache size.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        self.advance(now)
    }

    /// Number of positive entries currently stored (entries expired before
    /// the last advance are already evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache stores nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.negatives.is_empty()
    }

    /// Number of negative entries currently stored (including any that
    /// expired since the cache last advanced).
    pub fn negative_len(&self) -> usize {
        self.negatives.len()
    }

    /// Approximate bytes across stored negative entries.
    pub fn negative_bytes(&self) -> usize {
        self.neg_bytes
    }

    /// Number of positive entries fresh at `now` (O(expired) via the
    /// expiry heap, not a scan; `now` must not move backwards).
    ///
    /// With stale retention active the table also holds expired-but-
    /// retained entries, so freshness is scan-filtered; the default
    /// (`None`) path keeps the O(1) maintained count.
    pub fn fresh_len(&mut self, now: SimTime) -> usize {
        self.advance(now);
        if self.stale_retention.is_some() {
            self.entries.values().filter(|e| e.is_fresh(now)).count()
        } else {
            self.entries.len()
        }
    }

    /// Total individual records across fresh positive entries at `now`
    /// (maintained counter; `now` must not move backwards).
    pub fn fresh_record_count(&mut self, now: SimTime) -> usize {
        self.advance(now);
        if self.stale_retention.is_some() {
            self.entries
                .values()
                .filter(|e| e.is_fresh(now))
                .map(|e| e.set.len())
                .sum()
        } else {
            self.record_total
        }
    }
}

impl fmt::Display for RecordCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record cache ({} rrsets, {} negatives)",
            self.entries.len(),
            self.negatives.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{RData, Record};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a_set(owner: &str, last: u8, ttl: Ttl) -> RrSet {
        let rr = Record::new(name(owner), ttl, RData::A(Ipv4Addr::new(192, 0, 2, last)));
        RrSet::from_records(&[rr]).unwrap()
    }

    #[test]
    fn fresh_until_ttl_then_gone() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("www.x.com", 1, Ttl::from_hours(1)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        assert!(c
            .get(&name("www.x.com"), RecordType::A, SimTime::from_mins(59))
            .is_some());
        // Expiry is exclusive: at exactly TTL the entry is stale.
        assert!(c
            .get(&name("www.x.com"), RecordType::A, SimTime::from_hours(1))
            .is_none());
    }

    #[test]
    fn lower_credibility_cannot_displace_fresh_entry() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("ns.x.com", 1, Ttl::from_hours(4)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        let stored = c.insert(
            a_set("ns.x.com", 9, Ttl::from_hours(4)),
            SimTime::from_mins(10),
            Credibility::Additional,
        );
        assert!(!stored);
        let entry = c
            .get(&name("ns.x.com"), RecordType::A, SimTime::from_mins(20))
            .unwrap();
        assert_eq!(entry.set.rdatas(), &[RData::A(Ipv4Addr::new(192, 0, 2, 1))]);
    }

    #[test]
    fn higher_or_equal_credibility_replaces() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("ns.x.com", 1, Ttl::from_hours(4)),
            SimTime::ZERO,
            Credibility::Additional,
        );
        assert!(c.insert(
            a_set("ns.x.com", 2, Ttl::from_hours(4)),
            SimTime::from_mins(1),
            Credibility::AuthAnswer,
        ));
        assert!(c.insert(
            a_set("ns.x.com", 3, Ttl::from_hours(4)),
            SimTime::from_mins(2),
            Credibility::AuthAnswer,
        ));
    }

    #[test]
    fn expired_entry_replaceable_by_any_credibility() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("ns.x.com", 1, Ttl::from_mins(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        assert!(c.insert(
            a_set("ns.x.com", 2, Ttl::from_hours(1)),
            SimTime::from_hours(1),
            Credibility::Additional,
        ));
    }

    #[test]
    fn negative_cache_roundtrip() {
        let mut c = RecordCache::new();
        c.insert_negative(
            name("missing.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(5),
            SimTime::ZERO,
        );
        assert_eq!(
            c.get_negative(&name("missing.x.com"), RecordType::A, SimTime::from_mins(4)),
            Some(NegativeKind::NxDomain)
        );
        assert_eq!(
            c.get_negative(&name("missing.x.com"), RecordType::A, SimTime::from_mins(6)),
            None
        );
    }

    #[test]
    fn purge_drops_only_expired() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("a.x.com", 1, Ttl::from_mins(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        c.insert(
            a_set("b.x.com", 2, Ttl::from_hours(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        c.insert_negative(
            name("n.x.com"),
            RecordType::A,
            NegativeKind::NoData,
            Ttl::from_mins(1),
            SimTime::ZERO,
        );
        let evicted = c.purge_expired(SimTime::from_hours(1));
        assert_eq!(evicted, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn occupancy_counts_fresh_only() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("a.x.com", 1, Ttl::from_mins(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        c.insert(
            a_set("b.x.com", 2, Ttl::from_hours(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        assert_eq!(c.fresh_len(SimTime::from_hours(1)), 1);
        assert_eq!(c.fresh_record_count(SimTime::from_hours(1)), 1);
        assert_eq!(c.len(), 1); // sampling advanced the heap and evicted a.x.com
    }

    #[test]
    fn negative_budget_evicts_soonest_expiring_negative_only() {
        let mut c = RecordCache::new();
        c.set_negative_budget(Some(2), None);
        // A fresh positive record that must survive any negative pressure.
        c.insert(
            a_set("www.x.com", 1, Ttl::from_hours(4)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        c.insert_negative(
            name("nx1.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(5),
            SimTime::ZERO,
        );
        c.insert_negative(
            name("nx2.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(30),
            SimTime::ZERO,
        );
        let out = c.insert_negative(
            name("nx3.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(30),
            SimTime::ZERO,
        );
        assert!(out.stored);
        assert_eq!(out.evicted_pressure, 1);
        assert_eq!(c.negative_len(), 2);
        // The soonest-expiring negative went first; the others survive.
        assert!(c
            .get_negative(&name("nx1.x.com"), RecordType::A, SimTime::from_mins(1))
            .is_none());
        assert!(c
            .get_negative(&name("nx3.x.com"), RecordType::A, SimTime::from_mins(1))
            .is_some());
        // The positive record is untouched.
        assert!(c
            .get(&name("www.x.com"), RecordType::A, SimTime::from_mins(1))
            .is_some());
    }

    #[test]
    fn zero_negative_budget_refuses_storage() {
        let mut c = RecordCache::new();
        c.set_negative_budget(Some(0), None);
        let out = c.insert_negative(
            name("nx.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(5),
            SimTime::ZERO,
        );
        assert!(!out.stored);
        assert_eq!(out.evicted_pressure, 1);
        assert_eq!(c.negative_len(), 0);
        assert_eq!(c.negative_bytes(), 0);
    }

    #[test]
    fn negative_byte_ledger_tracks_expiry_and_pressure() {
        let mut c = RecordCache::new();
        c.insert_negative(
            name("nx.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(5),
            SimTime::ZERO,
        );
        assert!(c.negative_bytes() > 0);
        // Re-inserting the same key must not double-count.
        let bytes = c.negative_bytes();
        c.insert_negative(
            name("nx.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(10),
            SimTime::ZERO,
        );
        assert_eq!(c.negative_bytes(), bytes);
        c.purge_expired(SimTime::from_hours(1));
        assert_eq!(c.negative_bytes(), 0);
        assert_eq!(c.negative_len(), 0);
    }

    #[test]
    fn stale_retention_keeps_expired_entries_for_get_stale_only() {
        let mut c = RecordCache::new();
        c.set_stale_retention(Some(SimDuration::from_hours(1)));
        c.insert(
            a_set("www.x.com", 1, Ttl::from_mins(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        // Fresh: `get` answers, `get_stale` does not.
        assert!(c
            .get(&name("www.x.com"), RecordType::A, SimTime::from_mins(4))
            .is_some());
        assert!(c
            .get_stale(&name("www.x.com"), RecordType::A, SimTime::from_mins(4))
            .is_none());
        // Expired but retained: only `get_stale` answers, and purge keeps it.
        assert_eq!(c.purge_expired(SimTime::from_mins(10)), 0);
        assert!(c
            .get(&name("www.x.com"), RecordType::A, SimTime::from_mins(10))
            .is_none());
        let stale = c
            .get_stale(&name("www.x.com"), RecordType::A, SimTime::from_mins(10))
            .expect("retained for serve-stale");
        assert_eq!(stale.expires_at, SimTime::from_mins(5));
        // Occupancy counts fresh entries only.
        assert_eq!(c.fresh_len(SimTime::from_mins(10)), 0);
        assert_eq!(c.fresh_record_count(SimTime::from_mins(10)), 0);
        // Past expiry + retention the entry is really gone.
        assert_eq!(c.purge_expired(SimTime::from_mins(66)), 1);
        assert!(c
            .get_stale(&name("www.x.com"), RecordType::A, SimTime::from_mins(66))
            .is_none());
    }

    #[test]
    fn stale_retention_does_not_hold_negative_entries() {
        let mut c = RecordCache::new();
        c.set_stale_retention(Some(SimDuration::from_hours(4)));
        c.insert_negative(
            name("nx.x.com"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_mins(5),
            SimTime::ZERO,
        );
        // Negatives evict on the historical schedule regardless of
        // retention — proofs of absence must not outlive their TTL.
        assert_eq!(c.purge_expired(SimTime::from_mins(10)), 1);
        assert_eq!(c.negative_len(), 0);
    }

    #[test]
    fn reinsert_leaves_stale_heap_pair_behind_harmlessly() {
        let mut c = RecordCache::new();
        c.insert(
            a_set("a.x.com", 1, Ttl::from_mins(5)),
            SimTime::ZERO,
            Credibility::AuthAnswer,
        );
        // Re-insert with a longer TTL: the 5-minute heap pair goes stale.
        c.insert(
            a_set("a.x.com", 2, Ttl::from_hours(2)),
            SimTime::from_mins(1),
            Credibility::AuthAnswer,
        );
        // Popping the stale pair must not evict the refreshed entry...
        assert_eq!(c.purge_expired(SimTime::from_mins(10)), 0);
        assert_eq!(c.fresh_len(SimTime::from_mins(10)), 1);
        assert_eq!(c.fresh_record_count(SimTime::from_mins(10)), 1);
        // ...and the refreshed entry still expires on its own schedule.
        assert_eq!(c.purge_expired(SimTime::from_hours(3)), 1);
        assert_eq!(c.fresh_record_count(SimTime::from_hours(3)), 0);
    }
}
