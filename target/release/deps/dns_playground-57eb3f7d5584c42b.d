/root/repo/target/release/deps/dns_playground-57eb3f7d5584c42b.d: crates/dns-netd/src/bin/dns-playground.rs

/root/repo/target/release/deps/dns_playground-57eb3f7d5584c42b: crates/dns-netd/src/bin/dns-playground.rs

crates/dns-netd/src/bin/dns-playground.rs:
