/root/repo/target/debug/deps/fig3-5d91edf277cf38a8.d: crates/dns-bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-5d91edf277cf38a8: crates/dns-bench/src/bin/fig3.rs

crates/dns-bench/src/bin/fig3.rs:
