/root/repo/target/debug/examples/quickstart-739da80008030257.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-739da80008030257: examples/quickstart.rs

examples/quickstart.rs:
