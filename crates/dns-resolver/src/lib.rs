//! Caching DNS resolver with the DSN 2007 resilience policies.
//!
//! This crate implements the paper's contribution: a caching server
//! ([`CachingServer`]) whose handling of *infrastructure resource records*
//! (IRRs — the `NS` records of a zone plus the address records of its
//! name-servers) can be hardened against DDoS attacks on ancestor zones
//! through three independent, incrementally deployable schemes:
//!
//! * **TTL refresh** ([`ResolverConfig::refresh`]) — every response from a
//!   zone's own servers carries a copy of the zone's IRRs; refreshing
//!   resets their cached expiry to a full TTL.
//! * **TTL renewal** ([`RenewalPolicy`]) — just before a popular zone's
//!   IRRs expire, the resolver re-fetches them from the zone itself,
//!   budgeted by a per-zone *credit* (LRU / LFU / adaptive variants).
//! * **Long TTL** — zone operators publish IRRs with multi-day TTLs; the
//!   resolver honours them up to [`ResolverConfig::ttl_cap`].
//!
//! The resolver is *clock-free*: every entry point takes an explicit
//! [`SimTime`](dns_core::SimTime) and outgoing queries go through the [`Upstream`] trait, so
//! the whole resolution pipeline is deterministic and simulation-friendly.
//!
//! # Example
//!
//! ```rust
//! use dns_resolver::{CachingServer, ResolverConfig, RootHints, Upstream};
//! use dns_core::{Message, Name, SimTime};
//! use std::net::Ipv4Addr;
//!
//! /// An upstream where every server is unreachable.
//! struct DeadNetwork;
//! impl Upstream for DeadNetwork {
//!     fn query(&mut self, _server: Ipv4Addr, _query: &Message, _now: SimTime) -> Option<Message> {
//!         None
//!     }
//! }
//!
//! # fn main() -> Result<(), dns_core::DnsError> {
//! let hints = RootHints::new(vec![("a.root-servers.net".parse()?, Ipv4Addr::new(198, 41, 0, 4))]);
//! let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
//! let outcome = cs.resolve_a(&"www.ucla.edu".parse()?, SimTime::ZERO, &mut DeadNetwork);
//! assert!(outcome.is_failure());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cache;
mod config;
pub mod dnssec;
mod inflight;
mod infra;
mod metrics;
mod obs;
mod policy;
mod resolve;
mod retry;
mod shard;
mod upstream;

pub use backend::{CacheBackend, LocalBackend};
pub use cache::{CacheEntry, Credibility, NegativeInsertOutcome, NegativeKind, RecordCache};
pub use config::{DefensePolicy, ResolverConfig, ResolverConfigBuilder, RootHints, StalePolicy};
pub use dnssec::SecureStatus;
pub use inflight::{Flight, FlightToken};
pub use infra::{GapSample, InfraCache, InfraEntry, InfraSource};
pub use metrics::{OccupancySample, ResolverMetrics};
pub use obs::{LatencyModel, ResolverObs};
pub use policy::RenewalPolicy;
pub use resolve::{CachingServer, Outcome};
pub use retry::RetryPolicy;
pub use shard::ShardedCache;
pub use upstream::Upstream;
