/root/repo/target/debug/deps/dns_authd-d1516bc0bc2c589c.d: crates/dns-netd/src/bin/dns-authd.rs

/root/repo/target/debug/deps/dns_authd-d1516bc0bc2c589c: crates/dns-netd/src/bin/dns-authd.rs

crates/dns-netd/src/bin/dns-authd.rs:
