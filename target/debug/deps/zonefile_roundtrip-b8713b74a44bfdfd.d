/root/repo/target/debug/deps/zonefile_roundtrip-b8713b74a44bfdfd.d: tests/zonefile_roundtrip.rs

/root/repo/target/debug/deps/zonefile_roundtrip-b8713b74a44bfdfd: tests/zonefile_roundtrip.rs

tests/zonefile_roundtrip.rs:
