/root/repo/target/debug/deps/probe_timing-99e5386c62203744.d: crates/dns-bench/src/bin/probe_timing.rs

/root/repo/target/debug/deps/probe_timing-99e5386c62203744: crates/dns-bench/src/bin/probe_timing.rs

crates/dns-bench/src/bin/probe_timing.rs:
