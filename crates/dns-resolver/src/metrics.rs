//! Resolver-side counters and occupancy sampling.

use dns_core::SimTime;
use std::fmt;
use std::ops::{Add, Sub};

/// Monotone counters maintained by a [`crate::CachingServer`].
///
/// All fields are public passive data; the experiment harness snapshots the
/// struct at attack-window boundaries and subtracts (`-` is implemented) to
/// obtain per-window counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverMetrics {
    /// Client (stub-resolver) queries received.
    pub queries_in: u64,
    /// Client queries that could not be resolved (SERVFAIL-equivalent).
    pub failed_in: u64,
    /// Client queries answered purely from cache.
    pub cache_hits: u64,
    /// Queries sent to authoritative servers (demand + renewal).
    pub queries_out: u64,
    /// Outgoing queries that received no response.
    pub failed_out: u64,
    /// Referral responses processed.
    pub referrals: u64,
    /// Times an infrastructure entry's TTL was refreshed from a response.
    pub refreshes: u64,
    /// Renewal re-fetches attempted.
    pub renewals_sent: u64,
    /// Renewal re-fetches that succeeded.
    pub renewals_ok: u64,
    /// Negative answers (NXDOMAIN / NODATA) returned to clients.
    pub negative_answers: u64,
    /// Retry rounds entered by the exchange loop (a retry re-walks the
    /// whole server list after a backoff wait).
    pub retries: u64,
    /// Cumulative backoff requested between retry rounds, in
    /// milliseconds (virtual for simulated upstreams, slept for real
    /// ones).
    pub backoff_wait_ms: u64,
    /// Exchanges abandoned because the next backoff would exceed the
    /// retry policy's per-exchange deadline budget.
    pub deadline_exhausted: u64,
    /// Responses discarded because they did not match the outstanding
    /// query's (ID, question) pair — strays, spoofs or late answers.
    pub mismatched_responses: u64,
    /// NS-address fetches skipped because the per-client-query MaxFetch(k)
    /// budget was exhausted (the query degrades to whatever resolved
    /// within budget instead of fanning out further).
    pub fetches_clamped: u64,
    /// Work suppressed by flood defenses: negative-cache inserts refused
    /// at a zero budget plus upstream walks refused by the per-zone
    /// inflight cap.
    pub flood_suppressed: u64,
    /// Negative-cache entries evicted early because the negative cache hit
    /// its byte/entry budget (pressure evictions, not TTL expiry).
    pub neg_evictions_pressure: u64,
    /// Client queries answered with an expired record inside the
    /// serve-stale window after the demand fetch failed (RFC 8767).
    pub stale_served: u64,
    /// Failed queries whose expired record existed but had aged past the
    /// serve-stale window, so it could not be served.
    pub stale_expired_unserved: u64,
    /// Proactive refreshes fired for hot entries that had consumed the
    /// configured fraction of their TTL.
    pub refresh_ahead: u64,
    /// Prefetches issued by the learned inter-arrival predictor.
    pub prefetch_issued: u64,
    /// Prefetches whose name's next access was answered fresh from cache.
    pub prefetch_hits: u64,
    /// Prefetches whose name's next access still missed the cache.
    pub prefetch_wasted: u64,
}

impl ResolverMetrics {
    /// Fraction of client queries that failed; 0 when none were received.
    pub fn failed_in_ratio(&self) -> f64 {
        ratio(self.failed_in, self.queries_in)
    }

    /// Fraction of outgoing queries that went unanswered.
    pub fn failed_out_ratio(&self) -> f64 {
        ratio(self.failed_out, self.queries_out)
    }

    /// Cache hit rate over client queries.
    pub fn hit_ratio(&self) -> f64 {
        ratio(self.cache_hits, self.queries_in)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Sub for ResolverMetrics {
    type Output = ResolverMetrics;

    /// Pairwise saturating difference — `end - start` gives the counts
    /// accumulated in a window.
    fn sub(self, rhs: ResolverMetrics) -> ResolverMetrics {
        ResolverMetrics {
            queries_in: self.queries_in.saturating_sub(rhs.queries_in),
            failed_in: self.failed_in.saturating_sub(rhs.failed_in),
            cache_hits: self.cache_hits.saturating_sub(rhs.cache_hits),
            queries_out: self.queries_out.saturating_sub(rhs.queries_out),
            failed_out: self.failed_out.saturating_sub(rhs.failed_out),
            referrals: self.referrals.saturating_sub(rhs.referrals),
            refreshes: self.refreshes.saturating_sub(rhs.refreshes),
            renewals_sent: self.renewals_sent.saturating_sub(rhs.renewals_sent),
            renewals_ok: self.renewals_ok.saturating_sub(rhs.renewals_ok),
            negative_answers: self.negative_answers.saturating_sub(rhs.negative_answers),
            retries: self.retries.saturating_sub(rhs.retries),
            backoff_wait_ms: self.backoff_wait_ms.saturating_sub(rhs.backoff_wait_ms),
            deadline_exhausted: self
                .deadline_exhausted
                .saturating_sub(rhs.deadline_exhausted),
            mismatched_responses: self
                .mismatched_responses
                .saturating_sub(rhs.mismatched_responses),
            fetches_clamped: self.fetches_clamped.saturating_sub(rhs.fetches_clamped),
            flood_suppressed: self.flood_suppressed.saturating_sub(rhs.flood_suppressed),
            neg_evictions_pressure: self
                .neg_evictions_pressure
                .saturating_sub(rhs.neg_evictions_pressure),
            stale_served: self.stale_served.saturating_sub(rhs.stale_served),
            stale_expired_unserved: self
                .stale_expired_unserved
                .saturating_sub(rhs.stale_expired_unserved),
            refresh_ahead: self.refresh_ahead.saturating_sub(rhs.refresh_ahead),
            prefetch_issued: self.prefetch_issued.saturating_sub(rhs.prefetch_issued),
            prefetch_hits: self.prefetch_hits.saturating_sub(rhs.prefetch_hits),
            prefetch_wasted: self.prefetch_wasted.saturating_sub(rhs.prefetch_wasted),
        }
    }
}

impl Add for ResolverMetrics {
    type Output = ResolverMetrics;

    /// Pairwise saturating sum — aggregates the counters of several
    /// workers sharing one cache backend into fleet-wide totals.
    fn add(self, rhs: ResolverMetrics) -> ResolverMetrics {
        ResolverMetrics {
            queries_in: self.queries_in.saturating_add(rhs.queries_in),
            failed_in: self.failed_in.saturating_add(rhs.failed_in),
            cache_hits: self.cache_hits.saturating_add(rhs.cache_hits),
            queries_out: self.queries_out.saturating_add(rhs.queries_out),
            failed_out: self.failed_out.saturating_add(rhs.failed_out),
            referrals: self.referrals.saturating_add(rhs.referrals),
            refreshes: self.refreshes.saturating_add(rhs.refreshes),
            renewals_sent: self.renewals_sent.saturating_add(rhs.renewals_sent),
            renewals_ok: self.renewals_ok.saturating_add(rhs.renewals_ok),
            negative_answers: self.negative_answers.saturating_add(rhs.negative_answers),
            retries: self.retries.saturating_add(rhs.retries),
            backoff_wait_ms: self.backoff_wait_ms.saturating_add(rhs.backoff_wait_ms),
            deadline_exhausted: self
                .deadline_exhausted
                .saturating_add(rhs.deadline_exhausted),
            mismatched_responses: self
                .mismatched_responses
                .saturating_add(rhs.mismatched_responses),
            fetches_clamped: self.fetches_clamped.saturating_add(rhs.fetches_clamped),
            flood_suppressed: self.flood_suppressed.saturating_add(rhs.flood_suppressed),
            neg_evictions_pressure: self
                .neg_evictions_pressure
                .saturating_add(rhs.neg_evictions_pressure),
            stale_served: self.stale_served.saturating_add(rhs.stale_served),
            stale_expired_unserved: self
                .stale_expired_unserved
                .saturating_add(rhs.stale_expired_unserved),
            refresh_ahead: self.refresh_ahead.saturating_add(rhs.refresh_ahead),
            prefetch_issued: self.prefetch_issued.saturating_add(rhs.prefetch_issued),
            prefetch_hits: self.prefetch_hits.saturating_add(rhs.prefetch_hits),
            prefetch_wasted: self.prefetch_wasted.saturating_add(rhs.prefetch_wasted),
        }
    }
}

impl fmt::Display for ResolverMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in={}/{} failed, out={}/{} failed, hits={}, renewals={}/{}, \
             retries={} ({}ms backoff, {} deadline-exhausted)",
            self.failed_in,
            self.queries_in,
            self.failed_out,
            self.queries_out,
            self.cache_hits,
            self.renewals_ok,
            self.renewals_sent,
            self.retries,
            self.backoff_wait_ms,
            self.deadline_exhausted
        )
    }
}

/// A point-in-time measurement of cache occupancy (Figure 12's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Sampling instant.
    pub at: SimTime,
    /// Zones with fresh infrastructure entries.
    pub zones: usize,
    /// Individual infrastructure records across those zones.
    pub infra_records: usize,
    /// Fresh data RRsets in the record cache.
    pub data_rrsets: usize,
    /// Individual records across those RRsets.
    pub data_records: usize,
}

impl OccupancySample {
    /// Total cached records, infrastructure + data.
    pub fn total_records(&self) -> usize {
        self.infra_records + self.data_records
    }
}

impl fmt::Display for OccupancySample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={} zones={} records={}",
            self.at,
            self.zones,
            self.total_records()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominator() {
        let m = ResolverMetrics::default();
        assert_eq!(m.failed_in_ratio(), 0.0);
        assert_eq!(m.failed_out_ratio(), 0.0);
        assert_eq!(m.hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let m = ResolverMetrics {
            queries_in: 10,
            failed_in: 2,
            cache_hits: 5,
            queries_out: 4,
            failed_out: 1,
            ..ResolverMetrics::default()
        };
        assert!((m.failed_in_ratio() - 0.2).abs() < 1e-12);
        assert!((m.failed_out_ratio() - 0.25).abs() < 1e-12);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_subtraction() {
        let start = ResolverMetrics {
            queries_in: 100,
            failed_in: 1,
            ..ResolverMetrics::default()
        };
        let end = ResolverMetrics {
            queries_in: 150,
            failed_in: 11,
            ..ResolverMetrics::default()
        };
        let window = end - start;
        assert_eq!(window.queries_in, 50);
        assert_eq!(window.failed_in, 10);
        assert!((window.failed_in_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn window_subtraction_saturates_across_reset() {
        // A snapshot taken before a counter reset is *larger* than one
        // taken after; the window delta must clamp to zero, not wrap to
        // ~u64::MAX and poison downstream ratios.
        let before_reset = ResolverMetrics {
            queries_in: 100,
            failed_in: 10,
            queries_out: 250,
            failed_out: 40,
            retries: 7,
            backoff_wait_ms: 12_000,
            ..ResolverMetrics::default()
        };
        let after_reset = ResolverMetrics {
            queries_in: 3,
            queries_out: 5,
            ..ResolverMetrics::default()
        };
        let window = after_reset - before_reset;
        assert_eq!(window, ResolverMetrics::default());
        assert_eq!(window.failed_in_ratio(), 0.0);

        // Mixed regression: fields that did advance still subtract.
        let partial = ResolverMetrics {
            queries_in: 120,
            failed_in: 2, // regressed
            ..before_reset
        };
        let window = partial - before_reset;
        assert_eq!(window.queries_in, 20);
        assert_eq!(window.failed_in, 0);
        assert_eq!(window.retries, 0);
    }

    #[test]
    fn occupancy_total() {
        let s = OccupancySample {
            at: SimTime::ZERO,
            zones: 3,
            infra_records: 9,
            data_rrsets: 5,
            data_records: 7,
        };
        assert_eq!(s.total_records(), 16);
    }
}
