/root/repo/target/debug/deps/dns_auth-ab50a696bce2b4e5.d: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdns_auth-ab50a696bce2b4e5.rmeta: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs Cargo.toml

crates/dns-auth/src/lib.rs:
crates/dns-auth/src/server.rs:
crates/dns-auth/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
