/root/repo/target/debug/deps/fig12-6062da7bdc3733e5.d: crates/dns-bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-6062da7bdc3733e5: crates/dns-bench/src/bin/fig12.rs

crates/dns-bench/src/bin/fig12.rs:
