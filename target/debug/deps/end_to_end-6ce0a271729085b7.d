/root/repo/target/debug/deps/end_to_end-6ce0a271729085b7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6ce0a271729085b7: tests/end_to_end.rs

tests/end_to_end.rs:
