/root/repo/target/debug/deps/dns_resilience-23d1a70eb4e9a223.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdns_resilience-23d1a70eb4e9a223.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
