//! A minimal dig: send one DNS query over UDP and print the response.
//!
//! ```text
//! dns-dig <server:port> <name> [type]
//! ```

use dns_core::RecordType;
use dns_netd::client;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: dns-dig <server:port> <name> [A|NS|CNAME|SOA|PTR|MX|TXT|AAAA|DS|DNSKEY]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let server = args
        .first()
        .ok_or("missing server")?
        .parse()
        .map_err(|e| format!("bad server address: {e}"))?;
    let name = args
        .get(1)
        .ok_or("missing name")?
        .parse()
        .map_err(|e| format!("bad name: {e}"))?;
    let rtype = match args.get(2).map(String::as_str).unwrap_or("A") {
        "A" => RecordType::A,
        "NS" => RecordType::Ns,
        "CNAME" => RecordType::Cname,
        "SOA" => RecordType::Soa,
        "PTR" => RecordType::Ptr,
        "MX" => RecordType::Mx,
        "TXT" => RecordType::Txt,
        "AAAA" => RecordType::Aaaa,
        "DS" => RecordType::Ds,
        "DNSKEY" => RecordType::Dnskey,
        other => return Err(format!("unknown type {other:?}")),
    };
    let resp = client::query(server, &name, rtype, Duration::from_secs(3))
        .map_err(|e| format!("query failed: {e}"))?;
    print!("{}", client::render(&resp));
    Ok(())
}
