/root/repo/target/debug/deps/dnssec_universe-dc0dc43f175496d5.d: tests/dnssec_universe.rs Cargo.toml

/root/repo/target/debug/deps/libdnssec_universe-dc0dc43f175496d5.rmeta: tests/dnssec_universe.rs Cargo.toml

tests/dnssec_universe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
