//! Guard-rail for representation changes: the F4–F11 experiment space,
//! run as one small seeded sweep, must produce *byte-identical* outputs
//! across refactors of the name/cache internals.
//!
//! The transcript below canonicalises every attack cell (Figures 4–11:
//! vanilla, refresh, the four renewal policies, long-TTL and the combined
//! scheme) plus an overhead run with daily occupancy sampling, and hashes
//! it with FNV-1a. The committed constants were captured from the
//! `Vec<Label>`-based `Name` and scan-based cache code; any divergence
//! means a "pure representation" change altered observable behaviour.
//!
//! When a change *intentionally* alters experiment outputs (new scheme
//! semantics, different RNG consumption), re-capture the constants with
//! `cargo test -q --test determinism_golden -- --nocapture` and explain
//! the change in the PR description.

use dns_resilience::prelude::*;
use dns_resilience::resolver::RenewalPolicy;

/// FNV-1a 64-bit, dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The schemes of Figures 4 through 11, in figure order.
fn f4_to_f11_schemes() -> Vec<Scheme> {
    vec![
        Scheme::vanilla(),                                                   // F4
        Scheme::refresh(),                                                   // F5
        Scheme::renewal(RenewalPolicy::lru(3)),                              // F6
        Scheme::renewal(RenewalPolicy::lfu(3)),                              // F7
        Scheme::renewal(RenewalPolicy::adaptive_lru(3)),                     // F8
        Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),                     // F9
        Scheme::refresh_long_ttl(Ttl::from_days(3)),                         // F10
        Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)), // F11
    ]
}

fn sweep_with(threads: usize) -> SweepOutcome {
    let universe = UniverseSpec::small().build(7);
    let trace = TraceSpec::demo().scaled(0.1).generate(&universe, 42);
    ExperimentSpec::new(&universe)
        .trace(trace)
        .schemes(f4_to_f11_schemes())
        .attack(
            SimTime::from_days(6),
            &[SimDuration::from_hours(3), SimDuration::from_hours(12)],
        )
        .overhead(SimDuration::from_days(1))
        .threads(threads)
        .run()
}

fn sweep() -> SweepOutcome {
    sweep_with(2)
}

/// Every field that reaches a CSV or figure, in spec order, with full
/// float precision (`{:?}` on `f64` is shortest-roundtrip, so equal
/// transcripts imply bit-equal values).
fn transcript(outcome: &SweepOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for a in &outcome.attacks {
        writeln!(
            out,
            "attack|{}|{}|{}|{:?}|{:?}|{:?}",
            a.scheme,
            a.trace,
            a.duration.as_secs(),
            a.sr_failed_pct,
            a.cs_failed_pct,
            a.window,
        )
        .unwrap();
    }
    for o in &outcome.overheads {
        writeln!(out, "overhead|{}|{}|{:?}", o.scheme, o.trace, o.metrics).unwrap();
        for s in &o.occupancy {
            writeln!(
                out,
                "occupancy|{}|{}|{}|{}|{}|{}",
                o.scheme, s.at, s.zones, s.infra_records, s.data_rrsets, s.data_records,
            )
            .unwrap();
        }
    }
    out
}

/// Captured from the pre-compact-`Name` code (PR 2 tree); must survive
/// the representation change byte-for-byte.
const GOLDEN_TRANSCRIPT_FNV1A: u64 = 0x407c_b560_b1f5_9267;
const GOLDEN_ATTACK_CELLS: usize = 16; // 8 schemes x 2 durations
const GOLDEN_OVERHEAD_RUNS: usize = 8;

/// The defense counters are `ResolverMetrics` fields added after the
/// golden capture; with every defense at its default (off) — as in all
/// of F4–F11 — they are identically zero. Canonicalise the `{:?}`
/// rendering by stripping the all-zero suffix, and assert it really was
/// all-zero everywhere: a scheme that silently enabled a defense (or a
/// defense that fires while off) still diverges loudly.
fn strip_zero_defense_counters(text: &str) -> String {
    let stripped = text
        .replace(
            ", fetches_clamped: 0, flood_suppressed: 0, neg_evictions_pressure: 0",
            "",
        )
        .replace(
            ", stale_served: 0, stale_expired_unserved: 0, refresh_ahead: 0, \
             prefetch_issued: 0, prefetch_hits: 0, prefetch_wasted: 0",
            "",
        );
    assert!(
        !stripped.contains("fetches_clamped"),
        "defense counters fired in a defenses-off golden sweep"
    );
    assert!(
        !stripped.contains("stale_served"),
        "stale counters fired in a stale-off golden sweep"
    );
    stripped
}

#[test]
fn f4_to_f11_small_sweep_is_byte_identical() {
    let outcome = sweep();
    assert_eq!(outcome.attacks.len(), GOLDEN_ATTACK_CELLS);
    assert_eq!(outcome.overheads.len(), GOLDEN_OVERHEAD_RUNS);
    let text = strip_zero_defense_counters(&transcript(&outcome));
    let hash = fnv1a(text.as_bytes());
    if hash != GOLDEN_TRANSCRIPT_FNV1A {
        eprintln!("--- transcript (first 30 lines) ---");
        for line in text.lines().take(30) {
            eprintln!("{line}");
        }
        eprintln!("--- captured hash: {hash:#018x} ---");
    }
    assert_eq!(
        hash, GOLDEN_TRANSCRIPT_FNV1A,
        "F4-F11 sweep transcript diverged from the golden capture; \
         a representation-only change must not alter experiment outputs"
    );
}

/// The transcript itself is stable run-to-run (same process, two runs):
/// guards against nondeterminism sneaking into the harness (e.g. output
/// ordered by HashMap iteration), which would make the golden hash flaky
/// rather than meaningful.
#[test]
fn sweep_transcript_is_reproducible_in_process() {
    let a = transcript(&sweep());
    let b = transcript(&sweep());
    assert_eq!(a, b);
}

/// The latency histograms the observability layer records (virtual-time
/// distributions, merged into every attack window and overhead run) in
/// the same canonical line format as `transcript`. `{:?}` on a
/// `LogHistogram` prints count, sum and the p50/p90/p99 bounds.
fn latency_transcript(outcome: &SweepOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for a in &outcome.attacks {
        writeln!(
            out,
            "latency|attack|{}|{}|{}|{:?}",
            a.scheme,
            a.trace,
            a.duration.as_secs(),
            a.latency,
        )
        .unwrap();
    }
    for o in &outcome.overheads {
        writeln!(
            out,
            "latency|overhead|{}|{}|{:?}",
            o.scheme, o.trace, o.latency
        )
        .unwrap();
    }
    out
}

/// Canonical per-run transcript for backend-equivalence checks: every
/// resolver counter plus the modelled latency histogram, via `{:?}`
/// (shortest-roundtrip, so equality implies bit-equality).
fn replay_transcript<B: CacheBackend>(sim: &Simulation<B>) -> String {
    format!("{:?}|{:?}", sim.metrics(), sim.cs().latency_histogram())
}

/// The cache backend is a pure seam: replaying the heaviest scheme
/// (combined refresh + A-LFU renewal + long TTL) over a
/// `ShardedCache::new(1)` with single-flight coalescing enabled must
/// produce a byte-identical transcript to the default [`LocalBackend`]
/// replay. Pins the sharded backend to the golden behavior with the
/// smallest possible shard count, where any divergence (extra cache
/// probes, RNG consumption, flight bookkeeping) would surface.
#[test]
fn sharded_backend_replay_matches_local_backend() {
    use dns_resilience::resolver::ShardedCache;
    use std::sync::Arc;

    let universe = UniverseSpec::small().build(7);
    let trace = Arc::new(TraceSpec::demo().scaled(0.1).generate(&universe, 42));
    let scheme = Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3));
    let farm = Arc::new(ServerFarm::build(&universe, scheme.long_ttl));

    let mut local = Simulation::shared(
        Arc::clone(&farm),
        &universe,
        Arc::clone(&trace),
        scheme.sim_config(),
    );
    local.run_to_end();

    let resolver = scheme
        .resolver
        .to_builder()
        .shards(1)
        .coalesce(true)
        .build();
    let mut config = SimConfig::new(resolver);
    if let Some(ttl) = scheme.long_ttl {
        config = config.long_ttl(ttl);
    }
    let mut sharded =
        Simulation::shared_with_backend(farm, &universe, trace, config, ShardedCache::new(1));
    sharded.run_to_end();

    assert_eq!(
        replay_transcript(&local),
        replay_transcript(&sharded),
        "sharded backend (1 shard, coalescing on) diverged from the local backend"
    );
}

/// Latency distributions are part of the determinism contract: the same
/// spec run single-threaded and on a wide worker pool must record
/// byte-identical histograms (work-stealing order must never leak into
/// what the resolver observes).
#[test]
fn latency_histograms_are_identical_across_thread_counts() {
    let narrow = latency_transcript(&sweep_with(1));
    let wide = latency_transcript(&sweep_with(8));
    assert!(
        narrow.lines().count() >= GOLDEN_ATTACK_CELLS + GOLDEN_OVERHEAD_RUNS,
        "latency transcript unexpectedly empty:\n{narrow}"
    );
    assert!(
        narrow.contains("count:"),
        "histograms recorded nothing:\n{narrow}"
    );
    assert_eq!(narrow, wide);
}
