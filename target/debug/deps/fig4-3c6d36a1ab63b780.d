/root/repo/target/debug/deps/fig4-3c6d36a1ab63b780.d: crates/dns-bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-3c6d36a1ab63b780: crates/dns-bench/src/bin/fig4.rs

crates/dns-bench/src/bin/fig4.rs:
