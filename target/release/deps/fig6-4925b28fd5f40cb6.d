/root/repo/target/release/deps/fig6-4925b28fd5f40cb6.d: crates/dns-bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-4925b28fd5f40cb6: crates/dns-bench/src/bin/fig6.rs

crates/dns-bench/src/bin/fig6.rs:
