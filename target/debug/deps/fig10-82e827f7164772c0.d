/root/repo/target/debug/deps/fig10-82e827f7164772c0.d: crates/dns-bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-82e827f7164772c0: crates/dns-bench/src/bin/fig10.rs

crates/dns-bench/src/bin/fig10.rs:
