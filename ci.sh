#!/usr/bin/env sh
# Repo gate: formatting, lints, the full test suite, and an end-to-end
# smoke run of one figure binary on a tiny workload.
#
#   ./ci.sh            # everything (a few minutes)
#   ./ci.sh smoke      # just the figure smoke run
set -eu

smoke() {
    echo "== smoke: fig4 on a tiny trace =="
    out=$(mktemp -d)
    DNS_REPRO_SCALE=0.05 DNS_REPRO_OUT="$out" \
        cargo run --release -p dns-bench --bin fig4 --offline
    for f in fig4_sr fig4_cs run_manifest; do
        test -s "$out/$f.csv" || { echo "missing $out/$f.csv" >&2; exit 1; }
    done
    rm -rf "$out"

    echo "== smoke: netd playground under 10% injected loss =="
    # Boots the loopback internet, resolves through the retry policy with
    # deterministic 10% packet loss, then through a root/TLD blackout;
    # the binary exits non-zero if any scripted resolution deviates.
    DNS_PLAYGROUND_LOSS=0.1 DNS_PLAYGROUND_SEED=7 \
        cargo run --release -p dns-netd --bin dns-playground --offline

    echo "smoke OK"
}

if [ "${1:-}" = "smoke" ]; then
    smoke
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --offline

smoke
