//! Wire anatomy: drive the DNS substrate directly — build an
//! authoritative server, ask it questions, and inspect the raw RFC 1035
//! bytes of the exchange (including the infrastructure records that the
//! resilience schemes feed on).
//!
//! ```sh
//! cargo run --release --example wire_anatomy
//! ```

use dns_resilience::auth::AuthServer;
use dns_resilience::core::{wire, Message, ResponseKind, ZoneBuilder};
use dns_resilience::prelude::*;
use std::net::Ipv4Addr;

fn hexdump(bytes: &[u8]) {
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        println!("  {:04x}  {}", i * 16, hex.join(" "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An authoritative server for ucla.edu, the paper's running example.
    let zone = ZoneBuilder::new("ucla.edu".parse()?)
        .ns(
            "ns1.ucla.edu".parse()?,
            Ipv4Addr::new(192, 0, 2, 1),
            Ttl::from_days(1),
        )
        .ns(
            "ns2.ucla.edu".parse()?,
            Ipv4Addr::new(192, 0, 2, 2),
            Ttl::from_days(1),
        )
        .a(
            "www.ucla.edu".parse()?,
            Ipv4Addr::new(192, 0, 2, 80),
            Ttl::from_hours(4),
        )
        .build()?;
    let mut server = AuthServer::new("ns1.ucla.edu".parse()?, Ipv4Addr::new(192, 0, 2, 1));
    server.add_zone(zone);

    // The query, as bytes on the wire.
    let qname: Name = "www.ucla.edu".parse()?;
    let query = Message::query(0x1234, Question::new(qname, RecordType::A));
    let query_bytes = wire::encode(&query)?;
    println!("query ({} octets):", query_bytes.len());
    hexdump(&query_bytes);

    // The server answers; note the authority/additional sections carrying
    // the zone's NS set and glue — the *infrastructure records*.
    let response = server.handle_query(&wire::decode(&query_bytes)?);
    assert_eq!(response.kind(), ResponseKind::Answer);
    println!();
    println!("response sections:");
    for rec in &response.answers {
        println!("  answer      {rec}");
    }
    for rec in &response.authorities {
        println!("  authority   {rec}");
    }
    for rec in &response.additionals {
        println!("  additional  {rec}");
    }

    let response_bytes = wire::encode(&response)?;
    println!();
    println!(
        "response ({} octets, name compression keeps the repeats cheap):",
        response_bytes.len()
    );
    hexdump(&response_bytes);

    // Round-trip fidelity.
    assert_eq!(wire::decode(&response_bytes)?, response);
    println!();
    println!("decode(encode(response)) == response ✓");
    Ok(())
}
