//! The caching server: iterative resolution plus the resilience schemes.

use crate::backend::{CacheBackend, LocalBackend};
use crate::cache::NegativeKind;
use crate::inflight::Flight;
use crate::{
    Credibility, InfraSource, OccupancySample, ResolverConfig, ResolverMetrics, ResolverObs,
    RootHints, Upstream,
};
use dns_core::{
    Message, Name, Question, RData, Record, RecordType, ResponseKind, RrKey, RrKeyView, RrSet,
    SimDuration, SimTime, Ttl,
};
use dns_obs::{LogHistogram, TraceEvent, TraceOutcome};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Depth bound for nested resolutions (CNAME targets, out-of-bailiwick NS
/// addresses).
const MAX_RECURSION_DEPTH: usize = 8;
/// Bound on referral steps within a single resolution.
const MAX_REFERRAL_STEPS: usize = 24;
/// Bound on CNAME links followed.
const MAX_CNAME_CHAIN: usize = 8;
/// How long consumed gap tombstones are retained before purging.
const TOMBSTONE_RETENTION: SimDuration = SimDuration::from_days(7);
/// TTL ceiling advertised on stale answers (RFC 8767 §5.2 recommends a
/// small value so clients come back soon after the outage ends).
const STALE_ANSWER_TTL: Ttl = Ttl::from_secs(30);
/// Bound on the names the prefetch predictor tracks; arrivals for new
/// names beyond the bound are not learned (existing state is unaffected).
const PREFETCH_TRACKED_NAMES: usize = 4096;

/// Per-name inter-arrival learner driving the prefetch scheme: it
/// observes the access stream at the resolver's front door and predicts
/// each name's next arrival with an integer EWMA (alpha = 1/4), so a
/// fetch can be issued ahead of expiry when the next access would
/// otherwise miss. Fully deterministic — no randomness, no clocks.
#[derive(Debug, Clone)]
struct PrefetchPredictor {
    /// Arrivals required for a name before predictions fire (floored at
    /// two: one inter-arrival gap needs two observations).
    min_samples: u32,
    states: HashMap<RrKey, PrefetchState>,
}

#[derive(Debug, Clone, Copy)]
struct PrefetchState {
    last_seen: SimTime,
    /// EWMA of inter-arrival seconds.
    ewma_secs: u64,
    samples: u32,
    /// An issued prefetch awaiting classification at the next arrival.
    pending: bool,
}

impl PrefetchPredictor {
    fn new(min_samples: u32) -> Self {
        PrefetchPredictor {
            min_samples: min_samples.max(2),
            states: HashMap::new(),
        }
    }

    /// Records one arrival for `(name, rtype)` at `now`.
    ///
    /// Returns `(verdict, predicted_gap)`: `verdict` classifies a pending
    /// prefetch (`Some(true)` = this arrival was answered fresh from
    /// cache, the prefetch paid off; `Some(false)` = it still missed),
    /// and `predicted_gap` is the EWMA inter-arrival once the name has
    /// enough samples.
    fn observe(
        &mut self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        fresh_hit: bool,
    ) -> (Option<bool>, Option<SimDuration>) {
        let Some(state) = self.states.get_mut(&(name, rtype) as &dyn RrKeyView) else {
            if self.states.len() < PREFETCH_TRACKED_NAMES {
                self.states.insert(
                    RrKey::new(name.clone(), rtype),
                    PrefetchState {
                        last_seen: now,
                        ewma_secs: 0,
                        samples: 1,
                        pending: false,
                    },
                );
            }
            return (None, None);
        };
        let verdict = state.pending.then_some(fresh_hit);
        state.pending = false;
        let gap = now.since(state.last_seen).as_secs();
        state.last_seen = now;
        state.ewma_secs = if state.samples == 1 {
            gap
        } else {
            (state.ewma_secs.saturating_mul(3).saturating_add(gap)) / 4
        };
        state.samples = state.samples.saturating_add(1);
        let predicted =
            (state.samples >= self.min_samples).then(|| SimDuration::from_secs(state.ewma_secs));
        (verdict, predicted)
    }

    /// Marks a prefetch as issued for `(name, rtype)`; the next arrival
    /// classifies it as hit or wasted.
    fn mark_issued(&mut self, name: &Name, rtype: RecordType) {
        if let Some(s) = self.states.get_mut(&(name, rtype) as &dyn RrKeyView) {
            s.pending = true;
        }
    }
}

/// Result of resolving one client query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Positive answer (possibly via a CNAME chain).
    Answer {
        /// The records answering the query, alias links first.
        records: Vec<Record>,
        /// Whether the answer came entirely from cache.
        from_cache: bool,
    },
    /// The name does not exist.
    NxDomain {
        /// Whether served from the negative cache.
        from_cache: bool,
    },
    /// The name exists but has no records of the queried type.
    NoData {
        /// Whether served from the negative cache.
        from_cache: bool,
    },
    /// Resolution failed: no authoritative server could be reached (the
    /// outcome a DDoS attack produces).
    Fail,
}

impl Outcome {
    /// Whether the query failed to resolve.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Fail)
    }

    /// Whether the DNS produced a definitive result (including negative
    /// answers — those are the system *working*).
    pub fn is_success(&self) -> bool {
        !self.is_failure()
    }

    /// Whether the outcome was served entirely from cache.
    pub fn from_cache(&self) -> bool {
        match self {
            Outcome::Answer { from_cache, .. }
            | Outcome::NxDomain { from_cache }
            | Outcome::NoData { from_cache } => *from_cache,
            Outcome::Fail => false,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Answer {
                records,
                from_cache,
            } => {
                write!(
                    f,
                    "answer ({} records{})",
                    records.len(),
                    cache_tag(*from_cache)
                )
            }
            Outcome::NxDomain { from_cache } => write!(f, "nxdomain{}", cache_tag(*from_cache)),
            Outcome::NoData { from_cache } => write!(f, "nodata{}", cache_tag(*from_cache)),
            Outcome::Fail => write!(f, "fail"),
        }
    }
}

fn cache_tag(from_cache: bool) -> &'static str {
    if from_cache {
        ", cached"
    } else {
        ""
    }
}

/// A caching DNS server (the paper's *CS*): iterative resolver, record
/// cache, infrastructure cache and the configured resilience schemes.
///
/// The server is generic over its [`CacheBackend`]: the default
/// [`LocalBackend`] owns a private cache pair (the historical,
/// deterministic configuration), while [`crate::ShardedCache`] lets many
/// servers on different threads share one sharded cache with
/// single-flight coalescing.
///
/// See the crate-level documentation for an example and the scheme
/// descriptions.
#[derive(Debug, Clone)]
pub struct CachingServer<B: CacheBackend = LocalBackend> {
    config: ResolverConfig,
    backend: B,
    metrics: ResolverMetrics,
    /// Deterministic RNG seeded from [`ResolverConfig::seed`]; drives
    /// query-ID randomization (the anti-spoofing fix — sequential IDs are
    /// trivially predictable off-path) and retry-backoff jitter.
    rng: StdRng,
    /// Latency histogram + optional per-query trace. Never touches
    /// `rng` and never changes resolution behaviour, so enabling it
    /// cannot perturb deterministic experiments.
    obs: ResolverObs,
    /// NS-address fetches charged against the MaxFetch(k) budget during
    /// the current client query; reset on every [`Self::resolve`].
    ns_fetches_used: u32,
    /// Per-name inter-arrival learner for the prefetch scheme; present
    /// only when [`crate::StalePolicy::prefetch_min_samples`] is set, so
    /// the default configuration carries no extra state.
    prefetch: Option<PrefetchPredictor>,
}

impl CachingServer {
    /// Creates a caching server with the given configuration and root
    /// hints, backed by a private [`LocalBackend`].
    pub fn new(config: ResolverConfig, hints: RootHints) -> Self {
        CachingServer::with_backend(config, hints, LocalBackend::new())
    }

    /// The infrastructure cache (read access, e.g. for tests and metrics).
    pub fn infra(&self) -> &crate::InfraCache {
        self.backend.infra_cache()
    }

    /// The record cache (read access).
    pub fn cache(&self) -> &crate::RecordCache {
        self.backend.record_cache()
    }
}

impl<B: CacheBackend> CachingServer<B> {
    /// Creates a caching server over an explicit backend (possibly shared
    /// with other servers) and installs the root hints into it.
    pub fn with_backend(config: ResolverConfig, hints: RootHints, mut backend: B) -> Self {
        backend.install_root_hints(hints.servers());
        // Apply flood-defense knobs only when set: an off policy leaves the
        // backend exactly as the pinned transcripts expect.
        if !config.defense.is_off() {
            let d = config.defense;
            backend.set_negative_budget(
                d.neg_cache_max_entries.map(|n| n as usize),
                d.neg_cache_max_bytes.map(|b| b as usize),
            );
            backend.set_zone_inflight_cap(d.zone_inflight_cap);
        }
        // Serve-stale retains expired entries for exactly the window they
        // may still be served in; off leaves the eviction schedule alone.
        if let Some(window) = config.stale.max_stale {
            backend.set_stale_retention(Some(window));
        }
        let prefetch = config
            .stale
            .prefetch_min_samples
            .map(PrefetchPredictor::new);
        let rng = StdRng::seed_from_u64(config.seed);
        CachingServer {
            config,
            backend,
            metrics: ResolverMetrics::default(),
            rng,
            obs: ResolverObs::new(),
            ns_fetches_used: 0,
            prefetch,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn metrics(&self) -> &ResolverMetrics {
        &self.metrics
    }

    /// The cache backend (read access, e.g. for a shared backend's
    /// observability registry).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Drains the Figure-3 gap samples collected so far.
    pub fn take_gap_samples(&mut self) -> Vec<crate::infra::GapSample> {
        self.backend.take_gap_samples()
    }

    /// Negative-cache entries currently stored (flood-pressure
    /// introspection for experiments and tests).
    pub fn negative_entries(&mut self) -> usize {
        self.backend.negative_entries()
    }

    /// Observability state: latency histogram and optional trace.
    pub fn obs(&self) -> &ResolverObs {
        &self.obs
    }

    /// Mutable observability state (enable tracing, swap the latency
    /// model).
    pub fn obs_mut(&mut self) -> &mut ResolverObs {
        &mut self.obs
    }

    /// Modelled resolution-latency histogram (virtual milliseconds),
    /// one sample per [`CachingServer::resolve`] call.
    pub fn latency_histogram(&self) -> &LogHistogram {
        self.obs.latency_histogram()
    }

    /// Records a trace event if tracing is enabled; the closure runs
    /// only in that case, so disabled tracing costs a branch.
    #[inline]
    fn trace_push(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.obs.trace_mut() {
            t.push(event());
        }
    }

    /// Resolves one client query at virtual time `now`.
    ///
    /// This is the entry point the simulator drives with stub-resolver
    /// queries; it updates [`ResolverMetrics`] (`queries_in`, `failed_in`,
    /// `cache_hits`, …).
    pub fn resolve<U: Upstream>(
        &mut self,
        question: &Question,
        now: SimTime,
        up: &mut U,
    ) -> Outcome {
        self.metrics.queries_in += 1;
        self.ns_fetches_used = 0;
        if let Some(t) = self.obs.trace_mut() {
            t.begin();
            t.push(TraceEvent::Query {
                qname: question.name.clone(),
                rtype: question.rtype,
                at: now,
            });
        }
        let before = (
            self.metrics.queries_out,
            self.metrics.failed_out,
            self.metrics.backoff_wait_ms,
        );
        let mut outcome = self.lookup_or_fetch(question, now, up, 0);
        // RFC 8767 fallback: the failed demand fetch above doubles as the
        // (coalesced) refresh attempt; if an expired record is still
        // inside the serve-stale window, answer with it instead.
        if outcome.is_failure() && self.config.stale.max_stale.is_some() {
            if let Some(stale) = self.serve_stale(question, now) {
                outcome = stale;
            }
        }
        if outcome.is_failure() {
            self.metrics.failed_in += 1;
        } else if outcome.from_cache() {
            self.metrics.cache_hits += 1;
        }
        if matches!(outcome, Outcome::NxDomain { .. } | Outcome::NoData { .. }) {
            self.metrics.negative_answers += 1;
        }
        // Model this resolution's latency from the upstream work it did
        // (see `LatencyModel`); pure cache hits cost 0 ms.
        let latency_ms = self.obs.latency_model().latency_ms(
            self.metrics.queries_out - before.0,
            self.metrics.failed_out - before.1,
            self.metrics.backoff_wait_ms - before.2,
        );
        self.obs.record_latency(latency_ms);
        self.trace_push(|| TraceEvent::Outcome {
            outcome: match outcome {
                Outcome::Answer { .. } => TraceOutcome::Answer,
                Outcome::NxDomain { .. } => TraceOutcome::NxDomain,
                Outcome::NoData { .. } => TraceOutcome::NoData,
                Outcome::Fail => TraceOutcome::Fail,
            },
            from_cache: outcome.from_cache(),
            latency_ms,
        });
        // Background maintenance (proactive refresh, learned prefetch)
        // runs after the latency sample: its upstream work keeps hot
        // entries warm but is not part of what this client waited for.
        if !self.config.stale.is_off() {
            self.stale_followups(question, &outcome, now, up);
        }
        outcome
    }

    /// Convenience: resolve `name`'s `A` record.
    pub fn resolve_a<U: Upstream>(&mut self, name: &Name, now: SimTime, up: &mut U) -> Outcome {
        self.resolve(&Question::new(name.clone(), RecordType::A), now, up)
    }

    /// Earliest absolute expiry among the cache entries that currently
    /// answer `question` from cache, following cached CNAME links exactly
    /// like resolution does. `None` when the cache cannot (fully) answer.
    ///
    /// This bounds the lifetime of any response *compiled* from those
    /// entries — the daemon's pre-serialized wire cache keys its
    /// invalidation on it, so patched-TTL replays never outlive the
    /// records they were built from.
    pub fn answer_expiry(&mut self, question: &Question, now: SimTime) -> Option<SimTime> {
        let mut qname = question.name.clone();
        let mut chain_min: Option<SimTime> = None;
        for _ in 0..MAX_CNAME_CHAIN {
            if let Some(expiry) = self.backend.record_expiry(&qname, question.rtype, now) {
                return Some(chain_min.map_or(expiry, |m| m.min(expiry)));
            }
            if question.rtype == RecordType::Cname {
                return None;
            }
            let link = self
                .backend
                .with_record(&qname, RecordType::Cname, now, |e| {
                    e.and_then(|entry| match entry.set.rdatas().first() {
                        Some(RData::Cname(t)) => Some((entry.expires_at, t.clone())),
                        _ => None,
                    })
                });
            let (expiry, target) = link?;
            chain_min = Some(chain_min.map_or(expiry, |m| m.min(expiry)));
            qname = target;
        }
        None
    }

    /// Earliest pending renewal instant, if the renewal scheme is active
    /// and any cached zone holds credit.
    pub fn next_renewal_due(&mut self) -> Option<SimTime> {
        self.config.renewal?;
        self.backend.peek_renewal_due()
    }

    /// Executes every renewal due at or before `upto`, each at its own due
    /// time. Returns the number of renewal fetches attempted.
    pub fn run_renewals_until<U: Upstream>(&mut self, upto: SimTime, up: &mut U) -> usize {
        if self.config.renewal.is_none() {
            return 0;
        }
        let mut attempted = 0;
        while let Some((due, zone)) = self.backend.next_renewal_due(upto) {
            let Some(entry) = self.backend.consume_renewal_credit(&zone) else {
                continue;
            };
            attempted += 1;
            self.metrics.renewals_sent += 1;
            let addrs: Vec<Ipv4Addr> = entry.server_addrs().collect();
            let question = Question::new(zone.clone(), RecordType::Ns);
            let renewed = match self.exchange(&addrs, &question, due, up) {
                Some((resp, _)) => {
                    self.harvest_response(&resp, &zone, due, false);
                    let ok = resp.kind() == ResponseKind::Answer;
                    if ok {
                        self.metrics.renewals_ok += 1;
                    }
                    ok
                }
                None => false,
            };
            self.trace_push(|| TraceEvent::Renewal {
                zone: zone.clone(),
                ok: renewed,
            });
        }
        attempted
    }

    /// Point-in-time cache occupancy (Figure 12's series). Takes `&mut`
    /// because sampling advances the caches' expiry heaps; `now` must not
    /// move backwards across calls.
    pub fn occupancy(&mut self, now: SimTime) -> OccupancySample {
        OccupancySample {
            at: now,
            zones: self.backend.infra_fresh_zones(now),
            infra_records: self.backend.infra_fresh_records(now),
            data_rrsets: self.backend.data_fresh_rrsets(now),
            data_records: self.backend.data_fresh_records(now),
        }
    }

    /// Evicts expired cache entries and aged-out tombstones.
    pub fn purge(&mut self, now: SimTime) {
        self.backend.purge_data(now);
        self.backend
            .purge_infra_tombstones(now, TOMBSTONE_RETENTION);
    }

    // ------------------------------------------------------------------
    // Serve-stale, proactive refresh and prefetch
    // ------------------------------------------------------------------

    /// Serves an expired entry inside the `max_stale` window after a
    /// failed demand fetch. The advertised TTL is clamped to
    /// [`STALE_ANSWER_TTL`] and never exceeds the record's original TTL.
    fn serve_stale(&mut self, question: &Question, now: SimTime) -> Option<Outcome> {
        let window = self.config.stale.max_stale?;
        let hit = self
            .backend
            .with_stale_record(&question.name, question.rtype, now, |e| {
                e.map(|e| (e.expires_at, e.set.clone()))
            });
        let (expired_at, set) = hit?;
        if now >= expired_at + window {
            // Retained by the cache's lazy eviction, but aged past the
            // window this policy allows: refuse, and say so.
            self.metrics.stale_expired_unserved += 1;
            return None;
        }
        let ttl = set.ttl().min(STALE_ANSWER_TTL);
        let records = set.with_ttl(ttl).to_records();
        self.metrics.stale_served += 1;
        self.trace_push(|| TraceEvent::StaleServed { expired_at });
        Some(Outcome::Answer {
            records,
            from_cache: true,
        })
    }

    /// Post-answer maintenance for the stale policy: proactive refresh of
    /// entries that consumed their TTL fraction, then the learned
    /// prefetch tick. Runs outside the latency sample.
    fn stale_followups<U: Upstream>(
        &mut self,
        question: &Question,
        outcome: &Outcome,
        now: SimTime,
        up: &mut U,
    ) {
        if let Some(pct) = self.config.stale.proactive_percent {
            // Decoupled update timing: a fresh entry past `pct`% of its
            // TTL is re-fetched now, so its expiry is pushed out before
            // any client sees a miss. The re-fetch lands at equal
            // credibility, which refreshes the entry's expiry, so the
            // next hit sits below the threshold — self-limiting.
            let due = self
                .backend
                .with_record(&question.name, question.rtype, now, |e| {
                    e.is_some_and(|e| {
                        let ttl = u64::from(e.set.ttl().as_secs());
                        let remaining = e.expires_at.since(now).as_secs();
                        ttl > 0
                            && remaining.saturating_mul(100)
                                <= ttl.saturating_mul(100u64.saturating_sub(u64::from(pct)))
                    })
                });
            if due {
                self.metrics.refresh_ahead += 1;
                let _ = self.fetch(question, now, up, 0);
            }
        }
        if let Some(mut pred) = self.prefetch.take() {
            let fresh_hit = matches!(
                outcome,
                Outcome::Answer {
                    from_cache: true,
                    ..
                }
            );
            let (verdict, predicted) = pred.observe(&question.name, question.rtype, now, fresh_hit);
            match verdict {
                Some(true) => self.metrics.prefetch_hits += 1,
                Some(false) => self.metrics.prefetch_wasted += 1,
                None => {}
            }
            if let Some(gap) = predicted {
                let expiry = self
                    .backend
                    .with_record(&question.name, question.rtype, now, |e| {
                        e.map(|e| e.expires_at)
                    });
                // Prefetch when the predicted next arrival would miss.
                if expiry.is_some_and(|expires_at| now + gap >= expires_at) {
                    pred.mark_issued(&question.name, question.rtype);
                    self.metrics.prefetch_issued += 1;
                    let _ = self.fetch(question, now, up, 0);
                }
            }
            self.prefetch = Some(pred);
        }
    }

    // ------------------------------------------------------------------
    // Resolution internals
    // ------------------------------------------------------------------

    fn lookup_or_fetch<U: Upstream>(
        &mut self,
        question: &Question,
        now: SimTime,
        up: &mut U,
        depth: usize,
    ) -> Outcome {
        if depth > MAX_RECURSION_DEPTH {
            return Outcome::Fail;
        }

        // Negative cache.
        if let Some(kind) = self.backend.negative(&question.name, question.rtype, now) {
            self.trace_push(|| TraceEvent::NegativeCacheHit);
            return match kind {
                NegativeKind::NxDomain => Outcome::NxDomain { from_cache: true },
                NegativeKind::NoData => Outcome::NoData { from_cache: true },
            };
        }

        // Positive cache, following cached CNAME links.
        let mut chain: Vec<Record> = Vec::new();
        let mut qname = question.name.clone();
        for _ in 0..MAX_CNAME_CHAIN {
            let hit = self.backend.with_record(&qname, question.rtype, now, |e| {
                e.map(|e| e.set.to_records())
            });
            if let Some(recs) = hit {
                let mut records = chain;
                records.extend(recs);
                self.trace_push(|| TraceEvent::CacheHit);
                return Outcome::Answer {
                    records,
                    from_cache: true,
                };
            }
            if question.rtype == RecordType::Cname {
                break;
            }
            let link = self
                .backend
                .with_record(&qname, RecordType::Cname, now, |e| {
                    e.and_then(|entry| match entry.set.rdatas().first() {
                        Some(RData::Cname(t)) => Some((entry.set.to_records(), t.clone())),
                        _ => None,
                    })
                });
            let Some((link_records, target)) = link else {
                break;
            };
            chain.extend(link_records);
            qname = target;
        }

        // Cache cannot answer: walk the hierarchy for `qname` (the end of
        // any cached alias chain). Top-level misses go through the
        // backend's single-flight gate when coalescing is enabled; nested
        // resolutions never wait on a flight (a leader blocking on another
        // leader could deadlock).
        self.trace_push(|| TraceEvent::CacheMiss);
        let tail = Question::new(qname, question.rtype);
        let outcome = if depth == 0 && self.config.coalesce {
            self.coalesced_fetch(&tail, now, up)
        } else {
            self.fetch(&tail, now, up, depth)
        };
        match outcome {
            Outcome::Answer { records, .. } if !chain.is_empty() => {
                chain.extend(records);
                Outcome::Answer {
                    records: chain,
                    from_cache: false,
                }
            }
            other => other,
        }
    }

    /// Fetches under the backend's single-flight gate: either this
    /// resolution leads (performs the fetch and publishes the outcome for
    /// followers) or it shares an already-open flight's outcome.
    ///
    /// A leader re-probes both caches before going upstream: between this
    /// thread's cache miss and winning the lead, the *previous* leader may
    /// have published and populated the caches, and fetching again would
    /// defeat the coalescing the herd is counting on.
    fn coalesced_fetch<U: Upstream>(
        &mut self,
        question: &Question,
        now: SimTime,
        up: &mut U,
    ) -> Outcome {
        let token = match self.backend.begin_flight(&question.name, question.rtype) {
            Flight::Shared(outcome) => return outcome,
            Flight::Lead(token) => token,
            Flight::Suppressed => {
                // The target zone's inflight cap is exhausted: fail fast
                // without upstream work so a flood against one victim zone
                // cannot monopolize the worker pool.
                self.metrics.flood_suppressed += 1;
                return Outcome::Fail;
            }
        };
        if let Some(kind) = self.backend.negative(&question.name, question.rtype, now) {
            let outcome = match kind {
                NegativeKind::NxDomain => Outcome::NxDomain { from_cache: true },
                NegativeKind::NoData => Outcome::NoData { from_cache: true },
            };
            token.publish(&outcome);
            return outcome;
        }
        let cached = self
            .backend
            .with_record(&question.name, question.rtype, now, |e| {
                e.map(|e| e.set.to_records())
            });
        if let Some(records) = cached {
            let outcome = Outcome::Answer {
                records,
                from_cache: true,
            };
            token.publish(&outcome);
            return outcome;
        }
        let outcome = self.fetch(question, now, up, 0);
        token.publish(&outcome);
        outcome
    }

    /// Iterative resolution over the network, starting from the deepest
    /// fresh infrastructure entry.
    fn fetch<U: Upstream>(
        &mut self,
        question: &Question,
        now: SimTime,
        up: &mut U,
        depth: usize,
    ) -> Outcome {
        let Some(start) =
            self.backend
                .deepest_usable_zone(&question.name, now, self.config.parent_recheck)
        else {
            self.trace_push(|| TraceEvent::NoInfra);
            return Outcome::Fail;
        };
        self.trace_push(|| TraceEvent::InfraStart {
            zone: start.clone(),
        });

        let mut zone = start;
        for _ in 0..MAX_REFERRAL_STEPS {
            let addrs = self.addresses_for(&zone, now, up, depth);
            if addrs.is_empty() {
                return Outcome::Fail;
            }
            let Some((resp, responder)) = self.exchange(&addrs, question, now, up) else {
                return Outcome::Fail;
            };
            // Prefer the responsive server next time instead of re-paying
            // timeouts on dead ones ahead of it in the list.
            if Some(responder) != addrs.first().copied() {
                self.backend.promote_zone_address(&zone, responder);
            }
            self.harvest_response(&resp, &zone, now, true);

            match resp.kind() {
                ResponseKind::Answer => return self.finish_answer(&resp, question, now, up, depth),
                ResponseKind::Referral => {
                    self.metrics.referrals += 1;
                    let Some(child) = referral_child(&resp, &zone, &question.name) else {
                        return Outcome::Fail; // lame or sideways referral
                    };
                    self.trace_push(|| TraceEvent::Referral {
                        child: child.clone(),
                    });
                    zone = child;
                }
                ResponseKind::NxDomain => {
                    let ttl = self.negative_ttl(&resp);
                    let stored = self.backend.insert_negative(
                        question.name.clone(),
                        question.rtype,
                        NegativeKind::NxDomain,
                        ttl,
                        now,
                    );
                    self.note_negative_pressure(stored);
                    return Outcome::NxDomain { from_cache: false };
                }
                ResponseKind::NoData => {
                    let ttl = self.negative_ttl(&resp);
                    let stored = self.backend.insert_negative(
                        question.name.clone(),
                        question.rtype,
                        NegativeKind::NoData,
                        ttl,
                        now,
                    );
                    self.note_negative_pressure(stored);
                    return Outcome::NoData { from_cache: false };
                }
                ResponseKind::Error(_) => return Outcome::Fail,
            }
        }
        Outcome::Fail
    }

    /// Extracts the final answer from a positive response, chasing any
    /// CNAME chain (within the message, then recursively if the chain
    /// leaves the responding zone).
    fn finish_answer<U: Upstream>(
        &mut self,
        resp: &Message,
        question: &Question,
        now: SimTime,
        up: &mut U,
        depth: usize,
    ) -> Outcome {
        let mut records: Vec<Record> = Vec::new();
        let mut qname = question.name.clone();
        for _ in 0..MAX_CNAME_CHAIN {
            let direct: Vec<Record> = resp
                .answers
                .iter()
                .filter(|r| r.name() == &qname && r.rtype() == question.rtype)
                .cloned()
                .collect();
            if !direct.is_empty() {
                records.extend(direct);
                return Outcome::Answer {
                    records,
                    from_cache: false,
                };
            }
            let alias = resp
                .answers
                .iter()
                .find(|r| r.name() == &qname && r.rtype() == RecordType::Cname)
                .cloned();
            match alias {
                Some(rec) => {
                    let target = match rec.rdata() {
                        RData::Cname(t) => t.clone(),
                        _ => return Outcome::Fail,
                    };
                    records.push(rec);
                    qname = target;
                }
                None => break,
            }
        }
        if records.is_empty() {
            // Positive response that doesn't actually answer the question.
            return Outcome::Fail;
        }
        // The chain left the message: resolve the final target.
        let sub = self.lookup_or_fetch(&Question::new(qname, question.rtype), now, up, depth + 1);
        match sub {
            Outcome::Answer { records: tail, .. } => {
                records.extend(tail);
                Outcome::Answer {
                    records,
                    from_cache: false,
                }
            }
            Outcome::NxDomain { .. } => Outcome::NxDomain { from_cache: false },
            Outcome::NoData { .. } => Outcome::NoData { from_cache: false },
            Outcome::Fail => Outcome::Fail,
        }
    }

    /// Addresses for contacting `zone`'s servers, resolving server names
    /// out-of-band when the entry carries no glue.
    fn addresses_for<U: Upstream>(
        &mut self,
        zone: &Name,
        now: SimTime,
        up: &mut U,
        depth: usize,
    ) -> Vec<Ipv4Addr> {
        /// What the infra entry offers for contacting a zone, extracted
        /// under the backend's borrow.
        enum ZoneServers {
            Unknown,
            Ready(Vec<Ipv4Addr>),
            NeedGlue(Vec<Name>),
        }
        let servers = self.backend.with_infra(zone, |entry| match entry {
            None => ZoneServers::Unknown,
            Some(e) if !e.addrs.is_empty() => ZoneServers::Ready(e.server_addrs().collect()),
            Some(e) => ZoneServers::NeedGlue(e.ns_names.clone()),
        });
        let ns_names = match servers {
            ZoneServers::Unknown => return Vec::new(),
            ZoneServers::Ready(addrs) => return addrs,
            ZoneServers::NeedGlue(ns_names) => ns_names,
        };
        let mut learned: Vec<(Name, Ipv4Addr)> = Vec::new();
        for ns in &ns_names {
            // Cached address?
            let cached = self.backend.with_record(ns, RecordType::A, now, |e| {
                e.map(|e| {
                    e.set
                        .rdatas()
                        .iter()
                        .filter_map(|rd| match rd {
                            RData::A(a) => Some((ns.clone(), *a)),
                            _ => None,
                        })
                        .collect::<Vec<_>>()
                })
            });
            if let Some(pairs) = cached {
                learned.extend(pairs);
                continue;
            }
            // Out-of-bailiwick server: resolve its address recursively.
            if depth < MAX_RECURSION_DEPTH {
                // MaxFetch(k): every recursive NS-address fetch charges the
                // per-client-query budget. Once spent, remaining NS names
                // are only served from cache — the query degrades to
                // whatever resolved within budget instead of amplifying a
                // delegation bomb's full fan-out (NXNSAttack defense).
                if let Some(k) = self.config.defense.max_ns_fetch {
                    if self.ns_fetches_used >= k {
                        self.metrics.fetches_clamped += 1;
                        continue;
                    }
                    self.ns_fetches_used += 1;
                }
                if let Outcome::Answer { records, .. } = self.lookup_or_fetch(
                    &Question::new(ns.clone(), RecordType::A),
                    now,
                    up,
                    depth + 1,
                ) {
                    for r in records {
                        if let RData::A(a) = r.rdata() {
                            learned.push((ns.clone(), *a));
                        }
                    }
                }
            }
            if !learned.is_empty() {
                break; // one reachable server is enough to proceed
            }
        }
        self.backend.add_zone_addresses(zone, &learned);
        learned.into_iter().map(|(_, a)| a).collect()
    }

    /// Sends `question` to each address in turn until one answers, then —
    /// under the configured [`crate::RetryPolicy`] — re-walks the list
    /// with exponential, jittered backoff between rounds, up to the
    /// policy's wait budget. Returns the response together with the
    /// responding server.
    ///
    /// Responses are accepted only when both the query ID *and* the echoed
    /// question match the outstanding query: matching on the ID alone
    /// leaves a 1-in-65536 off-path spoofing target, and matching the
    /// question closes the remainder of the window for answers crossed
    /// between concurrent resolutions.
    fn exchange<U: Upstream>(
        &mut self,
        addrs: &[Ipv4Addr],
        question: &Question,
        now: SimTime,
        up: &mut U,
    ) -> Option<(Message, Ipv4Addr)> {
        let policy = self.config.retry;
        let mut waited_ms: u64 = 0;
        for round in 0..policy.rounds() {
            if round > 0 {
                let base = policy.backoff_ms(round - 1);
                let jitter = match policy.max_jitter_ms(base) {
                    0 => 0,
                    max => self.rng.random_range(0..=max),
                };
                let backoff = base + jitter;
                if waited_ms.saturating_add(backoff) > policy.deadline_ms {
                    self.metrics.deadline_exhausted += 1;
                    self.trace_push(|| TraceEvent::DeadlineExhausted);
                    break;
                }
                self.metrics.retries += 1;
                self.metrics.backoff_wait_ms += backoff;
                self.trace_push(|| TraceEvent::Backoff {
                    round: round - 1,
                    wait_ms: backoff,
                });
                up.wait(backoff);
                waited_ms += backoff;
            }
            // Fresh ID per round: a late answer to an earlier round's ID
            // is treated as the stray it is.
            let query = Message::query(self.take_id(), question.clone());
            // The resolver is clock-free; surface the waited time to the
            // upstream as an advanced virtual `now` (whole seconds).
            let vnow = now + SimDuration::from_secs(waited_ms / 1_000);
            for &addr in addrs {
                self.metrics.queries_out += 1;
                self.trace_push(|| TraceEvent::UpstreamSend { server: addr });
                match up.query(addr, &query, vnow) {
                    Some(resp) if response_matches(&query, &resp) => {
                        self.trace_push(|| TraceEvent::UpstreamResponse {
                            server: addr,
                            kind: resp.kind(),
                        });
                        return Some((resp, addr));
                    }
                    Some(_) => {
                        self.metrics.mismatched_responses += 1;
                        self.metrics.failed_out += 1;
                        self.trace_push(|| TraceEvent::UpstreamMismatch { server: addr });
                    }
                    None => {
                        self.metrics.failed_out += 1;
                        self.trace_push(|| TraceEvent::UpstreamTimeout { server: addr });
                    }
                }
            }
        }
        None
    }

    /// Caches every usable record in a response and maintains the
    /// infrastructure cache (installs, refreshes, credit).
    ///
    /// `demand` marks client-driven traffic: only demand responses grant
    /// renewal credit (a renewal re-fetch must not refill its own budget).
    fn harvest_response(
        &mut self,
        resp: &Message,
        zone_queried: &Name,
        now: SimTime,
        demand: bool,
    ) {
        if demand {
            let policy = self.config.renewal;
            self.backend
                .record_zone_use(zone_queried, now, policy.as_ref());
        }

        // Answer section → record cache (authoritative data only).
        if resp.header.authoritative {
            for set in group_rrsets(&resp.answers) {
                if !set.name().is_subdomain_of(zone_queried) {
                    continue; // out of bailiwick
                }
                if set.rtype() == RecordType::Ns {
                    continue; // handled via the infra cache below
                }
                let set = self.cap_ttl(set);
                self.backend
                    .insert_record(set, now, Credibility::AuthAnswer);
            }
        }

        // Additional section → glue addresses (low credibility).
        for set in group_rrsets(&resp.additionals) {
            if !set.name().is_subdomain_of(zone_queried) {
                continue;
            }
            if matches!(set.rtype(), RecordType::A | RecordType::Aaaa) {
                let set = self.cap_ttl(set);
                self.backend
                    .insert_record(set, now, Credibility::Additional);
            }
        }

        // NS sets (authority section, and answer section for explicit NS
        // queries such as renewals) → infrastructure cache.
        let mut ns_sets: Vec<RrSet> = group_rrsets(&resp.authorities)
            .into_iter()
            .filter(|s| s.rtype() == RecordType::Ns)
            .collect();
        if resp.header.authoritative {
            ns_sets.extend(
                group_rrsets(&resp.answers)
                    .into_iter()
                    .filter(|s| s.rtype() == RecordType::Ns),
            );
        }
        for set in ns_sets {
            let owner = set.name().clone();
            if !owner.is_subdomain_of(zone_queried) {
                continue;
            }
            let source = if resp.header.authoritative {
                InfraSource::Child
            } else {
                InfraSource::Parent
            };
            let ns_names: Vec<Name> = set
                .rdatas()
                .iter()
                .filter_map(|rd| match rd {
                    RData::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect();
            let mut addrs: Vec<(Name, Ipv4Addr)> = Vec::new();
            for ns in &ns_names {
                for rec in resp.additionals.iter().chain(resp.answers.iter()) {
                    if rec.name() == ns {
                        if let RData::A(a) = rec.rdata() {
                            addrs.push((ns.clone(), *a));
                        }
                    }
                }
                // Fill gaps from the record cache.
                if !addrs.iter().any(|(n, _)| n == ns) {
                    self.backend.with_record(ns, RecordType::A, now, |e| {
                        if let Some(e) = e {
                            for rd in e.set.rdatas() {
                                if let RData::A(a) = rd {
                                    addrs.push((ns.clone(), *a));
                                }
                            }
                        }
                    });
                }
            }
            let ttl = set.ttl().min(self.config.ttl_cap);
            let was_fresh_child = self.backend.with_infra(&owner, |e| {
                e.is_some_and(|e| e.is_fresh(now) && e.source == InfraSource::Child)
            });
            let installed = self.backend.install_infra(
                owner,
                ns_names,
                addrs,
                ttl,
                now,
                source,
                self.config.refresh,
            );
            if installed && was_fresh_child && self.config.refresh {
                self.metrics.refreshes += 1;
            }
        }

        // DS records travelling with a referral (signed delegations) are
        // DNSSEC infrastructure records: attach them to the zone entry so
        // the resilience schemes cover them too (paper §6).
        let mut ds_by_owner: HashMap<Name, Vec<(u16, u32)>> = HashMap::new();
        for rec in &resp.authorities {
            if let RData::Ds { key_tag, digest } = rec.rdata() {
                if rec.name().is_subdomain_of(zone_queried) {
                    ds_by_owner
                        .entry(rec.name().clone())
                        .or_default()
                        .push((*key_tag, *digest));
                }
            }
        }
        for (owner, ds) in ds_by_owner {
            self.backend.set_zone_ds(&owner, ds);
        }
    }

    /// Folds a budgeted negative-cache insert's outcome into the flood
    /// counters.
    fn note_negative_pressure(&mut self, out: crate::cache::NegativeInsertOutcome) {
        self.metrics.neg_evictions_pressure += out.evicted_pressure;
        if !out.stored {
            self.metrics.flood_suppressed += 1;
        }
    }

    fn negative_ttl(&self, resp: &Message) -> Ttl {
        resp.authorities
            .iter()
            .find_map(|r| match r.rdata() {
                RData::Soa { minimum, .. } => Some(Ttl::from_secs(*minimum).min(r.ttl())),
                _ => None,
            })
            .unwrap_or(Ttl::from_mins(5))
            .min(self.config.negative_ttl_cap)
    }

    fn cap_ttl(&self, set: RrSet) -> RrSet {
        let capped = set.ttl().min(self.config.ttl_cap);
        set.with_ttl(capped)
    }

    /// A fresh, unpredictable query ID from the seeded RNG.
    fn take_id(&mut self) -> u16 {
        self.rng.random::<u16>()
    }
}

/// Whether `resp` answers `query`: response bit set, IDs equal and the
/// echoed question identical.
fn response_matches(query: &Message, resp: &Message) -> bool {
    resp.header.response && resp.header.id == query.header.id && resp.question() == query.question()
}

/// Groups loose records into RRsets by (name, type).
fn group_rrsets(records: &[Record]) -> Vec<RrSet> {
    let mut groups: HashMap<dns_core::RrKey, Vec<Record>> = HashMap::new();
    for r in records {
        groups.entry(r.key()).or_default().push(r.clone());
    }
    groups
        .into_values()
        .filter_map(|recs| RrSet::from_records(&recs))
        .collect()
}

/// From a referral response, the child zone to descend into: the deepest
/// NS owner in the authority section that encloses the query name and is
/// strictly below the zone that answered.
fn referral_child(resp: &Message, zone: &Name, qname: &Name) -> Option<Name> {
    resp.authorities
        .iter()
        .filter(|r| r.rtype() == RecordType::Ns)
        .map(|r| r.name().clone())
        .filter(|owner| qname.is_subdomain_of(owner) && owner.is_proper_subdomain_of(zone))
        .max_by_key(|owner| owner.label_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RetryPolicy, RootHints};

    /// Upstream where every server is dead; records the query IDs and
    /// backoff waits it sees.
    #[derive(Default)]
    struct DeadRecorder {
        ids: Vec<u16>,
        waits: Vec<u64>,
    }

    impl Upstream for DeadRecorder {
        fn query(&mut self, _server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
            self.ids.push(query.header.id);
            None
        }

        fn wait(&mut self, millis: u64) {
            self.waits.push(millis);
        }
    }

    fn hints() -> RootHints {
        RootHints::new(vec![(
            "a.root-servers.net".parse().unwrap(),
            Ipv4Addr::new(198, 41, 0, 4),
        )])
    }

    fn ids_for_seed(seed: u64) -> Vec<u16> {
        let mut cs = CachingServer::new(ResolverConfig::builder().seed(seed).build(), hints());
        let mut up = DeadRecorder::default();
        for q in ["a.test", "b.test", "c.test", "d.test", "e.test"] {
            let _ = cs.resolve_a(&q.parse().unwrap(), SimTime::ZERO, &mut up);
        }
        up.ids
    }

    #[test]
    fn query_ids_are_randomized_and_seed_deterministic() {
        let a = ids_for_seed(7);
        assert_eq!(a.len(), 5);
        // Not the old sequential 1, 2, 3, … pattern.
        assert!(
            a.windows(2).any(|w| w[1] != w[0].wrapping_add(1)),
            "ids still sequential: {a:?}"
        );
        // Same seed → same stream; different seed → different stream.
        assert_eq!(a, ids_for_seed(7));
        assert_ne!(a, ids_for_seed(8));
    }

    #[test]
    fn retry_policy_drives_backoff_and_metrics() {
        let policy = RetryPolicy {
            attempts: 3,
            initial_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 1_000,
            jitter_pct: 0,
            deadline_ms: 10_000,
        };
        let config = ResolverConfig::builder().retry(policy).build();
        let mut cs = CachingServer::new(config, hints());
        let mut up = DeadRecorder::default();
        let outcome = cs.resolve_a(&"www.test".parse().unwrap(), SimTime::ZERO, &mut up);
        assert!(outcome.is_failure());
        let m = cs.metrics();
        assert_eq!(m.retries, 2);
        assert_eq!(m.backoff_wait_ms, 300); // 100 + 200
        assert_eq!(m.queries_out, 3); // one root server, three rounds
        assert_eq!(m.failed_out, 3);
        assert_eq!(m.deadline_exhausted, 0);
        assert_eq!(up.waits, vec![100, 200]);
        // Each round uses a fresh ID.
        assert_eq!(up.ids.len(), 3);
        assert!(up.ids[0] != up.ids[1] || up.ids[1] != up.ids[2]);
    }

    #[test]
    fn deadline_budget_caps_cumulative_backoff() {
        let policy = RetryPolicy {
            attempts: 5,
            initial_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 10_000,
            jitter_pct: 0,
            deadline_ms: 150, // admits the first 100 ms wait, not 100+200
        };
        let config = ResolverConfig::builder().retry(policy).build();
        let mut cs = CachingServer::new(config, hints());
        let mut up = DeadRecorder::default();
        let _ = cs.resolve_a(&"www.test".parse().unwrap(), SimTime::ZERO, &mut up);
        let m = cs.metrics();
        assert_eq!(m.retries, 1);
        assert_eq!(m.backoff_wait_ms, 100);
        assert_eq!(m.deadline_exhausted, 1);
        assert_eq!(up.waits, vec![100]);
        assert_eq!(m.queries_out, 2);
    }

    #[test]
    fn responses_must_match_id_and_question() {
        let q = Message::query(7, Question::new("www.test".parse().unwrap(), RecordType::A));
        let good = Message::response_to(&q);
        assert!(response_matches(&q, &good));

        let mut wrong_id = good.clone();
        wrong_id.header.id = 8;
        assert!(!response_matches(&q, &wrong_id));

        let mut wrong_question = good.clone();
        wrong_question.questions = vec![Question::new("evil.test".parse().unwrap(), RecordType::A)];
        assert!(!response_matches(&q, &wrong_question));

        let mut not_a_response = good.clone();
        not_a_response.header.response = false;
        assert!(!response_matches(&q, &not_a_response));
    }

    #[test]
    fn mismatched_responses_are_counted_and_rejected() {
        /// Answers every query with the right ID but a different question
        /// (a crossed/spoofed answer).
        struct WrongQuestion;
        impl Upstream for WrongQuestion {
            fn query(
                &mut self,
                _server: Ipv4Addr,
                query: &Message,
                _now: SimTime,
            ) -> Option<Message> {
                let mut resp = Message::response_to(query);
                resp.questions = vec![Question::new(
                    "spoofed.test".parse().unwrap(),
                    RecordType::A,
                )];
                Some(resp)
            }
        }
        let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
        let outcome = cs.resolve_a(
            &"www.test".parse().unwrap(),
            SimTime::ZERO,
            &mut WrongQuestion,
        );
        assert!(outcome.is_failure());
        assert_eq!(cs.metrics().mismatched_responses, 1);
    }

    #[test]
    fn answer_expiry_tracks_cache_entries_and_cname_chains() {
        let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints());
        let q = Question::new("www.test".parse().unwrap(), RecordType::A);
        assert_eq!(cs.answer_expiry(&q, SimTime::ZERO), None, "cold cache");

        let a = Record::new(
            "www.test".parse().unwrap(),
            Ttl::from_hours(1),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        );
        let set = RrSet::from_records(std::slice::from_ref(&a)).unwrap();
        cs.backend
            .insert_record(set, SimTime::ZERO, Credibility::AuthAnswer);
        let direct = cs
            .backend
            .record_expiry(&q.name, RecordType::A, SimTime::ZERO)
            .expect("entry just inserted");
        assert_eq!(cs.answer_expiry(&q, SimTime::ZERO), Some(direct));

        // An alias chain reports the minimum expiry across its links: the
        // compiled response dies with its shortest-lived ingredient.
        let cname = Record::new(
            "alias.test".parse().unwrap(),
            Ttl::from_mins(30),
            RData::Cname("www.test".parse().unwrap()),
        );
        let set = RrSet::from_records(std::slice::from_ref(&cname)).unwrap();
        cs.backend
            .insert_record(set, SimTime::ZERO, Credibility::AuthAnswer);
        let alias_q = Question::new("alias.test".parse().unwrap(), RecordType::A);
        let link = cs
            .backend
            .record_expiry(&alias_q.name, RecordType::Cname, SimTime::ZERO)
            .expect("cname link inserted");
        assert_eq!(
            cs.answer_expiry(&alias_q, SimTime::ZERO),
            Some(direct.min(link))
        );

        // At the expiry instant the entry is gone (exclusive expiry), so
        // the hook reports absence — never a stale bound.
        assert_eq!(cs.answer_expiry(&q, direct), None);
    }

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Fail.is_failure());
        assert!(!Outcome::Fail.is_success());
        assert!(!Outcome::Fail.from_cache());
        let a = Outcome::Answer {
            records: vec![],
            from_cache: true,
        };
        assert!(a.is_success());
        assert!(a.from_cache());
        assert!(Outcome::NxDomain { from_cache: false }.is_success());
    }

    #[test]
    fn group_rrsets_merges_by_key() {
        let n: Name = "x.com".parse().unwrap();
        let recs = vec![
            Record::new(
                n.clone(),
                Ttl::from_hours(1),
                RData::Ns("a.x.com".parse().unwrap()),
            ),
            Record::new(
                n.clone(),
                Ttl::from_hours(1),
                RData::Ns("b.x.com".parse().unwrap()),
            ),
            Record::new(n, Ttl::from_hours(1), RData::A(Ipv4Addr::LOCALHOST)),
        ];
        let sets = group_rrsets(&recs);
        assert_eq!(sets.len(), 2);
        let ns = sets.iter().find(|s| s.rtype() == RecordType::Ns).unwrap();
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn referral_child_picks_deepest_enclosing_owner() {
        let mut resp = Message::default();
        let add_ns = |resp: &mut Message, owner: &str| {
            resp.authorities.push(Record::new(
                owner.parse().unwrap(),
                Ttl::from_hours(1),
                RData::Ns("ns.x".parse().unwrap()),
            ));
        };
        add_ns(&mut resp, "edu");
        add_ns(&mut resp, "ucla.edu");
        let zone = Name::root();
        let qname: Name = "www.ucla.edu".parse().unwrap();
        assert_eq!(
            referral_child(&resp, &zone, &qname),
            Some("ucla.edu".parse().unwrap())
        );
        // Sideways referral (owner not enclosing qname) is rejected.
        let other: Name = "www.mit.edu".parse().unwrap();
        let child = referral_child(&resp, &zone, &other);
        assert_eq!(child, Some("edu".parse().unwrap()));
        // Referral not below the answering zone is rejected.
        let deep_zone: Name = "ucla.edu".parse().unwrap();
        assert_eq!(referral_child(&resp, &deep_zone, &qname), None);
    }
}
